//! The device driver facade (§3.3).
//!
//! "Once the device driver is installed, the command space is allocated
//! in the physical space, and then it is mapped to the virtual space via
//! the `mmap` system call. … The data space is also allocated/freed
//! through the device driver." This module implements both spaces over
//! the contiguous allocator, keeps a byte-accurate backing store so
//! functional kernels can run on buffer contents, and tracks named
//! buffers for TDL resolution.

use std::collections::BTreeMap;
use std::fmt;

use mealib_types::{AddrRange, Bytes, PhysAddr, VirtAddr};

use crate::physmem::{AllocError, PhysicalSpace};
use crate::sanitizer::Sanitizer;
use crate::vmap::{AddressSpaceMap, MapError};

/// Identifies one memory stack in a multi-stack system (§3.3): stack 0
/// is the accelerators' Local Memory Stack (LMS); higher ids are Remote
/// Memory Stacks (RMS) reached over the inter-stack links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StackId(pub usize);

impl StackId {
    /// The accelerators' local stack.
    pub const LOCAL: StackId = StackId(0);

    /// Returns `true` for the local stack.
    pub fn is_local(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_local() {
            f.write_str("LMS")
        } else {
            write!(f, "RMS{}", self.0)
        }
    }
}

/// A named, mapped, physically contiguous buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferHandle {
    /// The TDL-visible buffer name.
    pub name: String,
    /// Virtual base address (host view).
    pub va: VirtAddr,
    /// Physical range (accelerator view).
    pub pa: AddrRange,
    /// Which memory stack holds the buffer.
    pub stack: StackId,
}

impl BufferHandle {
    /// Buffer length.
    pub fn len(&self) -> Bytes {
        self.pa.len()
    }

    /// Returns `true` for an empty buffer (cannot happen via `alloc`).
    pub fn is_empty(&self) -> bool {
        self.pa.is_empty()
    }
}

/// Driver operation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// Underlying allocator failure.
    Alloc(AllocError),
    /// Underlying mapping failure.
    Map(MapError),
    /// A buffer name was reused while still live.
    DuplicateName {
        /// The conflicting name.
        name: String,
    },
    /// An allocation named a stack the system does not have.
    NoSuchStack {
        /// The requested stack.
        stack: StackId,
        /// Stacks available.
        available: usize,
    },
    /// A named buffer does not exist.
    UnknownBuffer {
        /// The missing name.
        name: String,
    },
    /// A read/write fell outside the buffer.
    OutOfBounds {
        /// The buffer name.
        name: String,
        /// Requested end offset.
        end: u64,
        /// Buffer length.
        len: u64,
    },
    /// The descriptor image exceeds the command space.
    DescriptorTooLarge {
        /// Image size.
        size: Bytes,
        /// Command space capacity.
        capacity: Bytes,
    },
    /// Driver installation was given no memory stacks.
    NoStacks,
    /// The command space does not leave room for a data space in the
    /// first stack.
    CommandSpaceTooLarge {
        /// Requested command space size.
        command: Bytes,
        /// Size of the first stack's region.
        region: Bytes,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Alloc(e) => e.fmt(f),
            DriverError::Map(e) => e.fmt(f),
            DriverError::DuplicateName { name } => {
                write!(f, "buffer `{name}` already exists")
            }
            DriverError::NoSuchStack { stack, available } => {
                write!(f, "no stack {stack}; system has {available} stack(s)")
            }
            DriverError::UnknownBuffer { name } => write!(f, "no buffer named `{name}`"),
            DriverError::OutOfBounds { name, end, len } => {
                write!(
                    f,
                    "access to `{name}` ends at {end} but buffer is {len} bytes"
                )
            }
            DriverError::DescriptorTooLarge { size, capacity } => {
                write!(
                    f,
                    "descriptor of {size} exceeds command space of {capacity}"
                )
            }
            DriverError::NoStacks => f.write_str("at least one memory stack required"),
            DriverError::CommandSpaceTooLarge { command, region } => write!(
                f,
                "command space of {command} leaves no data space in a {region} stack"
            ),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<AllocError> for DriverError {
    fn from(e: AllocError) -> Self {
        DriverError::Alloc(e)
    }
}

impl From<MapError> for DriverError {
    fn from(e: MapError) -> Self {
        DriverError::Map(e)
    }
}

/// The simulated MEALib device driver.
#[derive(Debug, Clone)]
pub struct MealibDriver {
    command_space: AddrRange,
    command_image: Vec<u8>,
    /// One data-space allocator per memory stack; index 0 is the LMS.
    stacks: Vec<PhysicalSpace>,
    vmap: AddressSpaceMap,
    store: BTreeMap<u64, Vec<u8>>,
    buffers: BTreeMap<String, BufferHandle>,
    san: Sanitizer,
}

impl MealibDriver {
    /// Default allocation alignment (one small page).
    pub const ALIGN: u64 = 4096;

    /// Installs the driver over a reserved stack region: the first
    /// `command_bytes` become the command space, the rest the data space.
    ///
    /// # Panics
    ///
    /// Panics if the command space does not fit in the region or the
    /// base is unaligned.
    pub fn new(region: AddrRange, command_bytes: Bytes) -> Self {
        Self::with_stacks(vec![region], command_bytes)
    }

    /// Installs the driver over several memory stacks: stack 0 (the LMS)
    /// carries the command space at its base; every stack gets its own
    /// contiguous data space.
    ///
    /// # Panics
    ///
    /// Panics if no stacks are given, or the command space does not fit
    /// in stack 0. Use [`MealibDriver::try_with_stacks`] to get a typed
    /// error instead.
    pub fn with_stacks(regions: Vec<AddrRange>, command_bytes: Bytes) -> Self {
        Self::try_with_stacks(regions, command_bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Installs the driver over several memory stacks, reporting bad
    /// parameters as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::NoStacks`] for an empty stack list,
    /// [`DriverError::CommandSpaceTooLarge`] if stack 0 cannot hold the
    /// command space plus a data space, or an allocation error for a
    /// misaligned stack region.
    pub fn try_with_stacks(
        regions: Vec<AddrRange>,
        command_bytes: Bytes,
    ) -> Result<Self, DriverError> {
        let first = *regions.first().ok_or(DriverError::NoStacks)?;
        if command_bytes >= first.len() {
            return Err(DriverError::CommandSpaceTooLarge {
                command: command_bytes,
                region: first.len(),
            });
        }
        let command_space = AddrRange::new(first.start(), command_bytes);
        let mut stacks = Vec::with_capacity(regions.len());
        for (i, region) in regions.iter().enumerate() {
            let data_region = if i == 0 {
                AddrRange::new(
                    (region.start() + command_bytes).align_up(Self::ALIGN),
                    region.len() - command_bytes.align_up(Self::ALIGN),
                )
            } else {
                *region
            };
            stacks.push(PhysicalSpace::try_new(data_region, Self::ALIGN)?);
        }
        Ok(Self {
            command_space,
            command_image: Vec::new(),
            stacks,
            vmap: AddressSpaceMap::new(),
            store: BTreeMap::new(),
            buffers: BTreeMap::new(),
            san: Sanitizer::off(),
        })
    }

    /// Number of memory stacks.
    pub fn stack_count(&self) -> usize {
        self.stacks.len()
    }

    /// The per-stack data-space allocators (index 0 is the LMS).
    pub fn stacks(&self) -> &[PhysicalSpace] {
        &self.stacks
    }

    /// The virtual address map.
    pub fn vmap(&self) -> &AddressSpaceMap {
        &self.vmap
    }

    /// A driver over the default 2 GiB Local Memory Stack window with a
    /// 1 MiB command space (the §4.2 DIMM3 set-up).
    pub fn with_default_stack() -> Self {
        Self::new(
            AddrRange::new(PhysAddr::new(8 << 30), Bytes::from_gib(2)),
            Bytes::from_mib(1),
        )
    }

    /// The command space range.
    pub fn command_space(&self) -> AddrRange {
        self.command_space
    }

    /// Allocates and maps a named buffer (`mealib_mem_alloc`).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::DuplicateName`] or an allocation error.
    pub fn alloc(&mut self, name: &str, bytes: Bytes) -> Result<BufferHandle, DriverError> {
        self.alloc_on(name, bytes, StackId::LOCAL)
    }

    /// Allocates a named buffer on an explicit stack (§3.5: "The memory
    /// stack used for allocation can also be explicitly specified").
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::NoSuchStack`], [`DriverError::DuplicateName`],
    /// or an allocation error.
    pub fn alloc_on(
        &mut self,
        name: &str,
        bytes: Bytes,
        stack: StackId,
    ) -> Result<BufferHandle, DriverError> {
        if self.buffers.contains_key(name) {
            return Err(DriverError::DuplicateName {
                name: name.to_string(),
            });
        }
        let available = self.stacks.len();
        let space = self
            .stacks
            .get_mut(stack.0)
            .ok_or(DriverError::NoSuchStack { stack, available })?;
        let pa = space.alloc(bytes)?;
        let va = self.vmap.map(pa);
        self.store
            .insert(pa.start().get(), vec![0u8; pa.len().get() as usize]);
        let handle = BufferHandle {
            name: name.to_string(),
            va,
            pa,
            stack,
        };
        self.buffers.insert(name.to_string(), handle.clone());
        self.san
            .set_extents(std::iter::once((name.to_string(), pa)).collect());
        Ok(handle)
    }

    /// Frees a named buffer (`mealib_mem_free`).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::UnknownBuffer`] if the name is not live.
    pub fn release(&mut self, name: &str) -> Result<(), DriverError> {
        let handle = self
            .buffers
            .remove(name)
            .ok_or_else(|| DriverError::UnknownBuffer {
                name: name.to_string(),
            })?;
        self.vmap.unmap(handle.va)?;
        self.stacks[handle.stack.0].free(handle.pa.start())?;
        self.store.remove(&handle.pa.start().get());
        Ok(())
    }

    /// Looks up a live buffer by name.
    pub fn buffer(&self, name: &str) -> Option<&BufferHandle> {
        self.buffers.get(name)
    }

    /// The name→physical-base table used to encode descriptors.
    pub fn buffer_table(&self) -> BTreeMap<String, u64> {
        self.buffers
            .iter()
            .map(|(name, h)| (name.clone(), h.pa.start().get()))
            .collect()
    }

    /// The name→physical-extent table of every live buffer, feeding the
    /// dataflow analysis' alias/overlap oracle with real allocations.
    pub fn extent_table(&self) -> BTreeMap<String, AddrRange> {
        self.buffers
            .iter()
            .map(|(name, h)| (name.clone(), h.pa))
            .collect()
    }

    /// Installs (or clears) the shadow-memory sanitizer host accesses
    /// are recorded through.
    pub fn set_sanitizer(&mut self, san: Sanitizer) {
        self.san = san;
    }

    /// The current sanitizer handle.
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.san
    }

    /// Writes bytes into a buffer at an offset (host-side initialization,
    /// Step 1 of Figure 7).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::UnknownBuffer`] or
    /// [`DriverError::OutOfBounds`].
    pub fn write(&mut self, name: &str, offset: u64, bytes: &[u8]) -> Result<(), DriverError> {
        let handle = self
            .buffers
            .get(name)
            .ok_or_else(|| DriverError::UnknownBuffer {
                name: name.to_string(),
            })?;
        let len = handle.pa.len().get();
        let end = offset + bytes.len() as u64;
        if end > len {
            return Err(DriverError::OutOfBounds {
                name: name.to_string(),
                end,
                len,
            });
        }
        let backing = self
            .store
            .get_mut(&handle.pa.start().get())
            .expect("live buffer has backing store");
        backing[offset as usize..end as usize].copy_from_slice(bytes);
        self.san.host_write(name);
        Ok(())
    }

    /// Reads bytes from a buffer at an offset.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::UnknownBuffer`] or
    /// [`DriverError::OutOfBounds`].
    pub fn read(&self, name: &str, offset: u64, len: u64) -> Result<&[u8], DriverError> {
        let handle = self
            .buffers
            .get(name)
            .ok_or_else(|| DriverError::UnknownBuffer {
                name: name.to_string(),
            })?;
        let blen = handle.pa.len().get();
        let end = offset + len;
        if end > blen {
            return Err(DriverError::OutOfBounds {
                name: name.to_string(),
                end,
                len: blen,
            });
        }
        let backing = self
            .store
            .get(&handle.pa.start().get())
            .expect("live buffer has backing store");
        self.san.host_read(name);
        Ok(&backing[offset as usize..end as usize])
    }

    /// Translates a host virtual address (for code that holds raw
    /// pointers rather than names).
    ///
    /// # Errors
    ///
    /// Returns a mapping error for unmapped addresses.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, DriverError> {
        Ok(self.vmap.translate(va)?)
    }

    /// Stores a descriptor image into the command space (Step 2 of
    /// Figure 7).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::DescriptorTooLarge`] if it does not fit.
    pub fn write_descriptor(&mut self, image: &[u8]) -> Result<(), DriverError> {
        if image.len() as u64 > self.command_space.len().get() {
            return Err(DriverError::DescriptorTooLarge {
                size: Bytes::new(image.len() as u64),
                capacity: self.command_space.len(),
            });
        }
        self.command_image = image.to_vec();
        Ok(())
    }

    /// The descriptor image currently in the command space.
    pub fn command_image(&self) -> &[u8] {
        &self.command_image
    }

    /// Total bytes allocated across all stacks' data spaces.
    pub fn allocated_bytes(&self) -> Bytes {
        self.stacks.iter().map(PhysicalSpace::allocated_bytes).sum()
    }

    /// The stack a live buffer resides on.
    pub fn stack_of(&self, name: &str) -> Option<StackId> {
        self.buffers.get(name).map(|h| h.stack)
    }

    /// Returns `true` if every listed buffer lives on the local stack
    /// (the condition for full-bandwidth accelerator access, §3.3).
    pub fn all_local(&self, names: impl IntoIterator<Item = impl AsRef<str>>) -> bool {
        names
            .into_iter()
            .all(|n| self.stack_of(n.as_ref()).is_some_and(StackId::is_local))
    }

    /// A point-in-time snapshot of the driver's physical-memory
    /// bookkeeping, for the `mealib-verify` physmem pass.
    pub fn snapshot(&self) -> mealib_verify::MemSnapshot {
        mealib_verify::MemSnapshot {
            command_space: self.command_space,
            stacks: self
                .stacks
                .iter()
                .map(|s| mealib_verify::StackSnapshot {
                    region: s.region(),
                    align: s.align(),
                    free: s.free_blocks().to_vec(),
                    live: s.live_blocks().to_vec(),
                })
                .collect(),
            vmap: self.vmap.mappings().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> MealibDriver {
        MealibDriver::new(
            AddrRange::new(PhysAddr::new(1 << 30), Bytes::from_mib(64)),
            Bytes::from_mib(1),
        )
    }

    #[test]
    fn alloc_maps_and_zeroes() {
        let mut d = driver();
        let h = d.alloc("datacube", Bytes::from_kib(64)).unwrap();
        assert_eq!(h.len(), Bytes::from_kib(64));
        assert!(!d.command_space().overlaps(&h.pa), "data space is disjoint");
        assert_eq!(d.read("datacube", 0, 16).unwrap(), &[0u8; 16]);
        assert_eq!(d.translate(h.va).unwrap(), h.pa.start());
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = driver();
        d.alloc("buf", Bytes::from_kib(4)).unwrap();
        d.write("buf", 100, &[1, 2, 3, 4]).unwrap();
        assert_eq!(d.read("buf", 100, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(d.read("buf", 99, 1).unwrap(), &[0]);
    }

    #[test]
    fn duplicate_names_rejected_until_freed() {
        let mut d = driver();
        d.alloc("x", Bytes::from_kib(4)).unwrap();
        assert!(matches!(
            d.alloc("x", Bytes::from_kib(4)),
            Err(DriverError::DuplicateName { .. })
        ));
        d.release("x").unwrap();
        assert!(d.alloc("x", Bytes::from_kib(4)).is_ok());
    }

    #[test]
    fn release_returns_memory() {
        let mut d = driver();
        let before = d.allocated_bytes();
        d.alloc("x", Bytes::from_mib(2)).unwrap();
        assert_eq!(d.allocated_bytes(), before + Bytes::from_mib(2));
        d.release("x").unwrap();
        assert_eq!(d.allocated_bytes(), before);
        assert!(d.buffer("x").is_none());
        assert!(matches!(
            d.release("x"),
            Err(DriverError::UnknownBuffer { .. })
        ));
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut d = driver();
        d.alloc("x", Bytes::from_kib(4)).unwrap();
        assert!(matches!(
            d.write("x", 4096 - 2, &[0; 4]),
            Err(DriverError::OutOfBounds { .. })
        ));
        assert!(matches!(
            d.read("x", 4096, 1),
            Err(DriverError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn buffer_table_maps_names_to_physical_bases() {
        let mut d = driver();
        let a = d.alloc("a", Bytes::from_kib(4)).unwrap();
        let b = d.alloc("b", Bytes::from_kib(4)).unwrap();
        let table = d.buffer_table();
        assert_eq!(table["a"], a.pa.start().get());
        assert_eq!(table["b"], b.pa.start().get());
    }

    #[test]
    fn descriptor_write_respects_command_space() {
        let mut d = driver();
        d.write_descriptor(&[0xAB; 128]).unwrap();
        assert_eq!(d.command_image().len(), 128);
        let too_big = vec![0u8; 2 << 20];
        assert!(matches!(
            d.write_descriptor(&too_big),
            Err(DriverError::DescriptorTooLarge { .. })
        ));
    }

    #[test]
    fn try_with_stacks_reports_typed_errors() {
        assert!(matches!(
            MealibDriver::try_with_stacks(vec![], Bytes::from_mib(1)),
            Err(DriverError::NoStacks)
        ));
        let small = AddrRange::new(PhysAddr::new(1 << 30), Bytes::from_kib(512));
        assert!(matches!(
            MealibDriver::try_with_stacks(vec![small], Bytes::from_mib(1)),
            Err(DriverError::CommandSpaceTooLarge { .. })
        ));
        let region = AddrRange::new(PhysAddr::new(1 << 30), Bytes::from_mib(64));
        assert!(MealibDriver::try_with_stacks(vec![region], Bytes::from_mib(1)).is_ok());
    }

    #[test]
    fn allocations_are_physically_contiguous_and_disjoint() {
        let mut d = driver();
        let handles: Vec<BufferHandle> = (0..8)
            .map(|i| d.alloc(&format!("b{i}"), Bytes::from_kib(100)).unwrap())
            .collect();
        for (i, a) in handles.iter().enumerate() {
            for b in handles.iter().skip(i + 1) {
                assert!(!a.pa.overlaps(&b.pa), "{} overlaps {}", a.name, b.name);
            }
        }
    }
}
