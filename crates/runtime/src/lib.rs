//! The MEALib runtime (§3.3, §3.5): shared memory management and
//! accelerator control.
//!
//! The accelerators have no MMU and require physically contiguous
//! buffers; legacy code uses virtual addresses and `malloc`. The runtime
//! bridges the two:
//!
//! * [`physmem::PhysicalSpace`] — a first-fit allocator over the reserved
//!   contiguous region of the Local Memory Stack;
//! * [`vmap::AddressSpaceMap`] — the device driver's `mmap` emulation,
//!   mapping allocated physical ranges into the host's virtual space;
//! * [`driver::MealibDriver`] — the ioctl-style facade: command space,
//!   data space, and a byte-accurate backing store so functional kernels
//!   can run on buffer contents;
//! * [`cache::CacheModel`] — the `wbinvd` write-back cost charged before
//!   every accelerator invocation (the paper keeps normal cache
//!   coherence and flushes dirty lines instead of using uncachable
//!   regions);
//! * [`control::Runtime`] — `mealib_mem_alloc`/`free`,
//!   `mealib_acc_plan`/`execute`/`destroy` (Listing 2), wired to the
//!   Configuration Unit model in `mealib-accel`;
//! * [`sanitizer::Sanitizer`] — the shadow-memory recorder that mirrors
//!   the static MEA1xx dataflow analysis at runtime, shadowing every
//!   host access, flush, and descriptor execution with per-buffer
//!   epoch + dirty-bit state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod control;
pub mod driver;
pub mod physmem;
pub mod sanitizer;
pub mod vmap;

pub use cache::CacheModel;
pub use control::{
    AccPlan, RunReport, Runtime, RuntimeError, VerifyMode, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use driver::{BufferHandle, MealibDriver, StackId};
pub use physmem::PhysicalSpace;
pub use sanitizer::Sanitizer;
pub use vmap::AddressSpaceMap;
