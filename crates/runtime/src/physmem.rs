//! First-fit physically contiguous allocator.
//!
//! Manages the reserved region of the Local Memory Stack. Every
//! allocation is contiguous by construction (the accelerators' hard
//! requirement) and aligned; frees coalesce with free neighbours.

use core::fmt;

use mealib_types::{AddrRange, Bytes, PhysAddr};

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No free block large enough.
    OutOfMemory {
        /// Bytes requested.
        requested: Bytes,
        /// Largest free block currently available.
        largest_free: Bytes,
    },
    /// Zero-byte allocation requested.
    ZeroSize,
    /// The freed address does not match a live allocation.
    BadFree {
        /// The offending address.
        addr: PhysAddr,
    },
    /// The requested allocation alignment is not a power of two.
    BadAlign {
        /// The offending alignment.
        align: u64,
    },
    /// The region base is not aligned to the allocation alignment.
    MisalignedBase {
        /// The region base.
        base: PhysAddr,
        /// The required alignment.
        align: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of contiguous memory: requested {requested}, largest free block {largest_free}"
            ),
            AllocError::ZeroSize => f.write_str("zero-byte allocation"),
            AllocError::BadFree { addr } => write!(f, "free of unallocated address {addr}"),
            AllocError::BadAlign { align } => {
                write!(f, "alignment {align} is not a power of two")
            }
            AllocError::MisalignedBase { base, align } => {
                write!(f, "region base {base} is not aligned to {align}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A first-fit allocator over one contiguous physical region.
#[derive(Debug, Clone)]
pub struct PhysicalSpace {
    region: AddrRange,
    align: u64,
    /// Sorted, disjoint free blocks.
    free: Vec<AddrRange>,
    /// Live allocations (sorted by start).
    live: Vec<AddrRange>,
}

impl PhysicalSpace {
    /// Creates an allocator over `region` with every allocation aligned
    /// to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the region base is not
    /// aligned. Use [`PhysicalSpace::try_new`] to get a typed error
    /// instead.
    pub fn new(region: AddrRange, align: u64) -> Self {
        Self::try_new(region, align).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an allocator over `region`, reporting bad parameters as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::BadAlign`] if `align` is not a power of two,
    /// or [`AllocError::MisalignedBase`] if the region base is not
    /// aligned to it.
    pub fn try_new(region: AddrRange, align: u64) -> Result<Self, AllocError> {
        if !align.is_power_of_two() {
            return Err(AllocError::BadAlign { align });
        }
        if !region.start().is_aligned(align) {
            return Err(AllocError::MisalignedBase {
                base: region.start(),
                align,
            });
        }
        Ok(Self {
            region,
            align,
            free: vec![region],
            live: Vec::new(),
        })
    }

    /// The managed region.
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// The allocation alignment.
    pub fn align(&self) -> u64 {
        self.align
    }

    /// The free blocks, sorted by start address.
    pub fn free_blocks(&self) -> &[AddrRange] {
        &self.free
    }

    /// The live allocations, sorted by start address.
    pub fn live_blocks(&self) -> &[AddrRange] {
        &self.live
    }

    /// Total bytes currently allocated.
    pub fn allocated_bytes(&self) -> Bytes {
        self.live.iter().map(|r| r.len()).sum()
    }

    /// Total free bytes (may be fragmented).
    pub fn free_bytes(&self) -> Bytes {
        self.free.iter().map(|r| r.len()).sum()
    }

    /// Size of the largest free block.
    pub fn largest_free_block(&self) -> Bytes {
        self.free
            .iter()
            .map(|r| r.len())
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates `bytes` of physically contiguous memory (first fit).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::ZeroSize`] or [`AllocError::OutOfMemory`].
    pub fn alloc(&mut self, bytes: Bytes) -> Result<AddrRange, AllocError> {
        if bytes == Bytes::ZERO {
            return Err(AllocError::ZeroSize);
        }
        let need = bytes.align_up(self.align);
        let slot =
            self.free
                .iter()
                .position(|r| r.len() >= need)
                .ok_or(AllocError::OutOfMemory {
                    requested: need,
                    largest_free: self.largest_free_block(),
                })?;
        let block = self.free[slot];
        let taken = AddrRange::new(block.start(), need);
        if block.len() == need {
            self.free.remove(slot);
        } else {
            self.free[slot] = AddrRange::new(block.start() + need, block.len() - need);
        }
        let pos = self
            .live
            .binary_search_by_key(&taken.start(), |r| r.start())
            .expect_err("allocation cannot collide with a live block");
        self.live.insert(pos, taken);
        Ok(taken)
    }

    /// Frees an allocation by its base address, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::BadFree`] if `addr` is not the base of a
    /// live allocation.
    pub fn free(&mut self, addr: PhysAddr) -> Result<(), AllocError> {
        let pos = self
            .live
            .binary_search_by_key(&addr, |r| r.start())
            .map_err(|_| AllocError::BadFree { addr })?;
        let freed = self.live.remove(pos);
        // Insert into the sorted free list and coalesce.
        let ins = self
            .free
            .binary_search_by_key(&freed.start(), |r| r.start())
            .expect_err("freed block cannot collide with a free block");
        self.free.insert(ins, freed);
        self.coalesce_around(ins);
        Ok(())
    }

    /// Looks up the live allocation containing `addr`, if any.
    pub fn find(&self, addr: PhysAddr) -> Option<AddrRange> {
        self.live.iter().copied().find(|r| r.contains(addr))
    }

    fn coalesce_around(&mut self, idx: usize) {
        // Merge with successor first, then predecessor.
        if idx + 1 < self.free.len() && self.free[idx].end() == self.free[idx + 1].start() {
            let merged = AddrRange::new(
                self.free[idx].start(),
                self.free[idx].len() + self.free[idx + 1].len(),
            );
            self.free[idx] = merged;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].end() == self.free[idx].start() {
            let merged = AddrRange::new(
                self.free[idx - 1].start(),
                self.free[idx - 1].len() + self.free[idx].len(),
            );
            self.free[idx - 1] = merged;
            self.free.remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(mib: u64) -> PhysicalSpace {
        PhysicalSpace::new(
            AddrRange::new(PhysAddr::new(0x1000_0000), Bytes::from_mib(mib)),
            4096,
        )
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut s = space(16);
        let a = s.alloc(Bytes::new(100)).unwrap();
        let b = s.alloc(Bytes::new(5000)).unwrap();
        assert!(a.start().is_aligned(4096));
        assert!(b.start().is_aligned(4096));
        assert!(!a.overlaps(&b));
        assert_eq!(a.len(), Bytes::new(4096));
        assert_eq!(b.len(), Bytes::new(8192));
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    fn free_coalesces_and_allows_reuse() {
        let mut s = space(1);
        let total = s.free_bytes();
        let a = s.alloc(Bytes::from_kib(256)).unwrap();
        let b = s.alloc(Bytes::from_kib(256)).unwrap();
        let c = s.alloc(Bytes::from_kib(256)).unwrap();
        s.free(b.start()).unwrap();
        s.free(a.start()).unwrap();
        s.free(c.start()).unwrap();
        assert_eq!(s.free_bytes(), total);
        assert_eq!(s.largest_free_block(), total, "blocks must coalesce fully");
        // The whole region is allocatable again.
        let big = s.alloc(total).unwrap();
        assert_eq!(big.len(), total);
    }

    #[test]
    fn first_fit_reuses_freed_hole() {
        let mut s = space(1);
        let a = s.alloc(Bytes::from_kib(64)).unwrap();
        let _b = s.alloc(Bytes::from_kib(64)).unwrap();
        s.free(a.start()).unwrap();
        let c = s.alloc(Bytes::from_kib(32)).unwrap();
        assert_eq!(
            c.start(),
            a.start(),
            "first fit must take the earliest hole"
        );
    }

    #[test]
    fn out_of_memory_reports_largest_block() {
        let mut s = space(1);
        let err = s.alloc(Bytes::from_mib(2)).unwrap_err();
        match err {
            AllocError::OutOfMemory { largest_free, .. } => {
                assert_eq!(largest_free, Bytes::from_mib(1));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn fragmentation_can_fail_despite_total_space() {
        let mut s = space(1);
        let a = s.alloc(Bytes::from_kib(256)).unwrap();
        let _b = s.alloc(Bytes::from_kib(256)).unwrap();
        let c = s.alloc(Bytes::from_kib(256)).unwrap();
        let _d = s.alloc(Bytes::from_kib(256)).unwrap();
        s.free(a.start()).unwrap();
        s.free(c.start()).unwrap();
        // 512 KiB free but fragmented into two 256 KiB holes.
        assert_eq!(s.free_bytes(), Bytes::from_kib(512));
        assert!(s.alloc(Bytes::from_kib(512)).is_err());
    }

    #[test]
    fn bad_frees_are_rejected() {
        let mut s = space(1);
        let a = s.alloc(Bytes::from_kib(4)).unwrap();
        // Not a base address.
        assert!(matches!(
            s.free(a.start() + Bytes::new(4096).align_up(1)),
            Err(AllocError::BadFree { .. })
        ));
        // Double free.
        s.free(a.start()).unwrap();
        assert!(matches!(s.free(a.start()), Err(AllocError::BadFree { .. })));
    }

    #[test]
    fn zero_size_rejected() {
        let mut s = space(1);
        assert_eq!(s.alloc(Bytes::ZERO), Err(AllocError::ZeroSize));
    }

    #[test]
    fn try_new_reports_bad_parameters_as_typed_errors() {
        let region = AddrRange::new(PhysAddr::new(0x1000), Bytes::from_kib(64));
        assert_eq!(
            PhysicalSpace::try_new(region, 3).unwrap_err(),
            AllocError::BadAlign { align: 3 }
        );
        let odd = AddrRange::new(PhysAddr::new(0x1010), Bytes::from_kib(64));
        assert_eq!(
            PhysicalSpace::try_new(odd, 4096).unwrap_err(),
            AllocError::MisalignedBase {
                base: PhysAddr::new(0x1010),
                align: 4096
            }
        );
        assert!(PhysicalSpace::try_new(region, 4096).is_ok());
    }

    #[test]
    fn block_accessors_expose_allocator_state() {
        let mut s = space(1);
        let a = s.alloc(Bytes::from_kib(4)).unwrap();
        assert_eq!(s.live_blocks(), &[a]);
        assert_eq!(s.free_blocks().len(), 1);
        assert_eq!(s.align(), 4096);
    }

    #[test]
    fn find_locates_containing_allocation() {
        let mut s = space(1);
        let a = s.alloc(Bytes::from_kib(8)).unwrap();
        assert_eq!(s.find(a.start() + Bytes::new(100)), Some(a));
        assert_eq!(s.find(a.end()), None);
    }
}
