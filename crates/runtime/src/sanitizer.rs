//! Runtime shadow-memory sanitizer: the dynamic half of the MEA1xx
//! dataflow & coherence analysis.
//!
//! The static pass in `mealib_verify::dataflow` *predicts* what a TDL
//! program will do to memory; this recorder *watches* what actually
//! happens during simulation.  Every host access through the driver
//! ([`crate::MealibDriver::write`] / `read`), every flush, and every
//! descriptor execution is shadowed with per-buffer epoch + dirty-bit
//! state — the very same [`CoherenceMachine`] the static analysis
//! elaborates into, so both layers raise identical MEA1xx codes and the
//! differential tests can demand verdict-for-verdict agreement.
//!
//! The sanitizer is nullable in the style of the observability layer: a
//! [`Sanitizer::off`] handle is a `None` behind the facade and every
//! hook is a branch-on-None no-op, keeping the disabled-path overhead
//! unmeasurable.  Cloning shares the recording (the driver and runtime
//! each hold a handle onto one shadow state).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use mealib_tdl::{TdlItem, TdlProgram};
use mealib_types::{AddrRange, Diagnostic, ErrorCode, Report};
use mealib_verify::dataflow::{self, CoherenceMachine, DataflowEnv};

#[derive(Debug, Default)]
struct SanState {
    machine: CoherenceMachine,
    structural: Report,
    /// Dedup for structural findings: plans are reusable, and executing
    /// the same plan twice re-observes the same defect, not a new one.
    reported: BTreeSet<(ErrorCode, String)>,
    extents: BTreeMap<String, AddrRange>,
}

impl SanState {
    fn push_structural(&mut self, d: Diagnostic) {
        let key = (d.code, d.message.clone());
        if self.reported.insert(key) {
            self.structural.push(d);
        }
    }

    fn observe_program(&mut self, program: &TdlProgram) {
        // Structural passes (MEA102 overlap, MEA104 capacity) over the
        // program shape, with whatever extents we have been told about.
        let env = DataflowEnv {
            extents: self.extents.clone(),
            ..DataflowEnv::default()
        };
        for d in dataflow::verify_program(program, None, &env).diagnostics() {
            self.push_structural(d.clone());
        }

        // Elaborate the device accesses through the shared machine, in
        // execution order.  Loops unroll to min(count, 2) trips exactly
        // like the static elaboration: the epoch state repeats after
        // two, and two is enough to observe loop-carried hazards.
        for item in &program.items {
            match item {
                TdlItem::Pass(p) => {
                    self.machine.dev_read(&p.input, None, None);
                    self.machine.dev_write(&p.output, None);
                }
                TdlItem::Loop(l) => {
                    // MEA105 progress check at loop entry: a dependence
                    // cycle is fine only if something already defined
                    // one of its buffers.
                    if let Some(cycle) = dataflow::loop_cycle(&l.body) {
                        if !cycle.iter().any(|b| self.machine.has_definition(b)) {
                            self.push_structural(Diagnostic::error(
                                ErrorCode::DfCyclicDependence,
                                format!(
                                    "loop body forms a dependence cycle over {} with no \
                                     definition reaching the loop: no iteration ever has \
                                     valid input and the chain can never drain",
                                    cycle
                                        .iter()
                                        .map(|b| format!("`{b}`"))
                                        .collect::<Vec<_>>()
                                        .join(" -> "),
                                ),
                            ));
                        }
                    }
                    for iter in 0..l.count.min(2) {
                        for p in &l.body {
                            self.machine.dev_read(&p.input, None, Some(iter));
                            self.machine.dev_write(&p.output, None);
                        }
                    }
                }
            }
        }
    }

    fn report(&self) -> Report {
        let mut out = self.structural.clone();
        out.merge(self.machine.report().clone());
        out
    }

    fn final_report(&self) -> Report {
        let mut out = self.structural.clone();
        out.merge(self.machine.clone().finish());
        out
    }
}

/// Nullable handle onto the shadow-memory recorder.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    inner: Option<Arc<Mutex<SanState>>>,
}

impl Sanitizer {
    /// A disabled sanitizer: every hook is a no-op (the default).
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An active sanitizer with empty shadow state.
    pub fn active() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(SanState::default()))),
        }
    }

    /// `true` when recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut SanState) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|state| f(&mut state.lock().expect("sanitizer state poisoned")))
    }

    /// Declares (or updates) buffer extents, enabling the MEA102
    /// overlap pass on subsequently observed programs.  The runtime
    /// feeds the driver's real allocation table through here.
    pub fn set_extents(&self, extents: BTreeMap<String, AddrRange>) {
        self.with(|st| st.extents.extend(extents));
    }

    /// Records a host write of `buf` (driver `write`): the host's cache
    /// lines for the buffer are now dirty.
    pub fn host_write(&self, buf: &str) {
        self.with(|st| st.machine.host_write(buf, None));
    }

    /// Records a host read of `buf` (driver `read`).
    pub fn host_read(&self, buf: &str) {
        self.with(|st| st.machine.host_read(buf, None));
    }

    /// Records a `wbinvd` (cache write-back + invalidate).
    pub fn flush(&self) {
        self.with(|st| st.machine.flush());
    }

    /// Records one descriptor execution: structural checks on the
    /// program shape plus the elaborated device access stream.
    pub fn observe_program(&self, program: &TdlProgram) {
        self.with(|st| st.observe_program(program));
    }

    /// Findings so far, without the end-of-session dead-buffer scan.
    /// Empty when the sanitizer is off.
    pub fn report(&self) -> Report {
        self.with(|st| st.report()).unwrap_or_default()
    }

    /// Findings including the dead-buffer scan (`MEA101`): call once
    /// the workload is finished.  The shadow state itself is left
    /// untouched, so the session can continue if needed.
    pub fn final_report(&self) -> Report {
        self.with(|st| st.final_report()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_tdl::parse;

    #[test]
    fn off_handle_records_nothing() {
        let san = Sanitizer::off();
        assert!(!san.is_active());
        san.host_write("x");
        san.flush();
        san.observe_program(&parse("PASS in=ghost out=y { COMP FFT params=\"f\" }").unwrap());
        assert!(san.report().is_clean());
        assert!(san.final_report().is_clean());
    }

    #[test]
    fn clean_protocol_stays_clean() {
        let san = Sanitizer::active();
        san.host_write("x");
        san.flush();
        san.observe_program(&parse("PASS in=x out=y { COMP FFT params=\"f\" }").unwrap());
        san.flush();
        san.host_read("y");
        assert!(
            san.final_report().is_clean(),
            "{}",
            san.final_report().render()
        );
    }

    #[test]
    fn missing_flush_raises_stale_read() {
        let san = Sanitizer::active();
        san.host_write("x");
        san.observe_program(&parse("PASS in=x out=y { COMP FFT params=\"f\" }").unwrap());
        assert!(san.report().has_code(ErrorCode::DfStaleRead));
    }

    #[test]
    fn uninitialized_read_raises_mea100() {
        let san = Sanitizer::active();
        san.flush();
        san.observe_program(&parse("PASS in=ghost out=y { COMP FFT params=\"f\" }").unwrap());
        assert!(san.report().has_code(ErrorCode::DfUninitRead));
    }

    #[test]
    fn repeated_observation_does_not_duplicate_structural_findings() {
        let san = Sanitizer::active();
        let program = parse(
            "PASS in=a out=b { COMP RESMP params=\"r\" COMP FFT params=\"f\" \
             COMP GEMV params=\"g\" COMP AXPY params=\"x\" COMP RESHP params=\"t\" }",
        )
        .unwrap();
        san.host_write("a");
        san.flush();
        san.observe_program(&program);
        san.observe_program(&program);
        let capacity_findings = san
            .report()
            .diagnostics()
            .iter()
            .filter(|d| d.code == ErrorCode::DfChainOverCapacity)
            .count();
        assert_eq!(capacity_findings, 1);
    }

    #[test]
    fn unseeded_cycle_raises_mea105() {
        let san = Sanitizer::active();
        san.flush();
        san.observe_program(
            &parse(
                "LOOP 4 { PASS in=p out=q { COMP AXPY params=\"a\" } \
                 PASS in=q out=p { COMP AXPY params=\"b\" } }",
            )
            .unwrap(),
        );
        assert!(san.report().has_code(ErrorCode::DfCyclicDependence));
        // Seeding the cycle first keeps the same shape clean.
        let seeded = Sanitizer::active();
        seeded.host_write("p");
        seeded.flush();
        seeded.observe_program(
            &parse(
                "LOOP 4 { PASS in=p out=q { COMP AXPY params=\"a\" } \
                 PASS in=q out=p { COMP AXPY params=\"b\" } }",
            )
            .unwrap(),
        );
        assert!(!seeded.report().has_code(ErrorCode::DfCyclicDependence));
    }

    #[test]
    fn clones_share_the_shadow_state() {
        let san = Sanitizer::active();
        let other = san.clone();
        other.host_write("x");
        san.observe_program(&parse("PASS in=x out=y { COMP FFT params=\"f\" }").unwrap());
        // `x` was written but never flushed: visible through either handle.
        assert!(other.report().has_code(ErrorCode::DfStaleRead));
    }
}
