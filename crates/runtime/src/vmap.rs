//! Virtual↔physical mapping: the device driver's customized `mmap`.
//!
//! "The memory region can be either accessed by the accelerators via
//! physical addressing or by the processor via virtual addressing"
//! (§3.3). Each allocated physical range is mapped at a fresh virtual
//! address; translation is exact and bidirectional within mapped ranges.

use core::fmt;

use mealib_types::{AddrRange, Bytes, PhysAddr, VirtAddr};

/// Translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The virtual address is not mapped.
    NotMapped {
        /// The unmapped address.
        va: VirtAddr,
    },
    /// The physical address belongs to no mapping.
    NoReverseMapping {
        /// The unmapped address.
        pa: PhysAddr,
    },
    /// Unmap of an address that is not a mapping base.
    BadUnmap {
        /// The offending address.
        va: VirtAddr,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NotMapped { va } => write!(f, "virtual address {va} is not mapped"),
            MapError::NoReverseMapping { pa } => {
                write!(f, "physical address {pa} belongs to no mapping")
            }
            MapError::BadUnmap { va } => write!(f, "{va} is not the base of a mapping"),
        }
    }
}

impl std::error::Error for MapError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mapping {
    va: VirtAddr,
    pa: AddrRange,
}

/// The process's view of the reserved region: a bump-allocated virtual
/// window with exact per-range translations.
#[derive(Debug, Clone)]
pub struct AddressSpaceMap {
    next_va: VirtAddr,
    maps: Vec<Mapping>,
}

impl AddressSpaceMap {
    /// Conventional base of the mapped window (an arbitrary userspace
    /// address well away from zero).
    pub const DEFAULT_BASE: VirtAddr = VirtAddr::new(0x7f00_0000_0000);

    /// Creates an empty map starting at [`Self::DEFAULT_BASE`].
    pub fn new() -> Self {
        Self {
            next_va: Self::DEFAULT_BASE,
            maps: Vec::new(),
        }
    }

    /// Maps a physical range at a fresh virtual address, returning the
    /// virtual base.
    pub fn map(&mut self, pa: AddrRange) -> VirtAddr {
        let va = self.next_va;
        // Keep a guard page between mappings so off-by-one accesses fault.
        self.next_va = (va + pa.len() + Bytes::new(4096)).align_up(4096);
        self.maps.push(Mapping { va, pa });
        va
    }

    /// Removes the mapping based at `va`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::BadUnmap`] if `va` is not a mapping base.
    pub fn unmap(&mut self, va: VirtAddr) -> Result<(), MapError> {
        let pos = self
            .maps
            .iter()
            .position(|m| m.va == va)
            .ok_or(MapError::BadUnmap { va })?;
        self.maps.remove(pos);
        Ok(())
    }

    /// Translates a virtual address to its physical address.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NotMapped`] for unmapped addresses.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, MapError> {
        for m in &self.maps {
            let end = m.va + m.pa.len();
            if va >= m.va && va < end {
                return Ok(m.pa.start() + va.offset_from(m.va));
            }
        }
        Err(MapError::NotMapped { va })
    }

    /// Reverse-translates a physical address into the virtual space.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NoReverseMapping`] for unmapped addresses.
    pub fn reverse(&self, pa: PhysAddr) -> Result<VirtAddr, MapError> {
        for m in &self.maps {
            if m.pa.contains(pa) {
                return Ok(m.va + pa.offset_from(m.pa.start()));
            }
        }
        Err(MapError::NoReverseMapping { pa })
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Every live mapping as a `(virtual base, physical range)` pair, in
    /// mapping order.
    pub fn mappings(&self) -> impl Iterator<Item = (VirtAddr, AddrRange)> + '_ {
        self.maps.iter().map(|m| (m.va, m.pa))
    }

    /// Returns `true` when nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }
}

impl Default for AddressSpaceMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(base: u64, len: u64) -> AddrRange {
        AddrRange::new(PhysAddr::new(base), Bytes::new(len))
    }

    #[test]
    fn translation_round_trips() {
        let mut m = AddressSpaceMap::new();
        let pa = range(0x10_0000, 8192);
        let va = m.map(pa);
        let probe = va + Bytes::new(1234);
        let got_pa = m.translate(probe).unwrap();
        assert_eq!(got_pa, PhysAddr::new(0x10_0000 + 1234));
        assert_eq!(m.reverse(got_pa).unwrap(), probe);
    }

    #[test]
    fn mappings_do_not_overlap_virtually() {
        let mut m = AddressSpaceMap::new();
        let va1 = m.map(range(0x10_0000, 4096));
        let va2 = m.map(range(0x20_0000, 4096));
        assert!(va2.get() >= va1.get() + 4096 + 4096, "guard page expected");
    }

    #[test]
    fn end_of_mapping_is_exclusive() {
        let mut m = AddressSpaceMap::new();
        let va = m.map(range(0x10_0000, 4096));
        assert!(m.translate(va + Bytes::new(4095)).is_ok());
        assert!(m.translate(va + Bytes::new(4096)).is_err());
    }

    #[test]
    fn unmap_removes_translation() {
        let mut m = AddressSpaceMap::new();
        let va = m.map(range(0x10_0000, 4096));
        assert_eq!(m.len(), 1);
        m.unmap(va).unwrap();
        assert!(m.is_empty());
        assert!(matches!(m.translate(va), Err(MapError::NotMapped { .. })));
        assert!(matches!(m.unmap(va), Err(MapError::BadUnmap { .. })));
    }

    #[test]
    fn reverse_of_unmapped_physical_fails() {
        let m = AddressSpaceMap::new();
        assert!(matches!(
            m.reverse(PhysAddr::new(0xdead_0000)),
            Err(MapError::NoReverseMapping { .. })
        ));
    }

    #[test]
    fn distinct_physical_ranges_keep_distinct_views() {
        let mut m = AddressSpaceMap::new();
        let va1 = m.map(range(0x10_0000, 4096));
        let va2 = m.map(range(0x10_0000, 4096)); // aliasing the same PA is allowed
        assert_ne!(va1, va2);
        assert_eq!(m.translate(va1).unwrap(), m.translate(va2).unwrap());
    }
}
