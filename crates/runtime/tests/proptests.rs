//! Property tests for the physical allocator and address-space map.

use mealib_runtime::{AddressSpaceMap, PhysicalSpace};
use mealib_types::{AddrRange, Bytes, PhysAddr};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Alloc(u64),
    FreeIdx(usize),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..512 * 1024).prop_map(Action::Alloc),
        (0usize..64).prop_map(Action::FreeIdx),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any alloc/free interleaving: live allocations never overlap,
    /// accounting stays exact, and a drained allocator is fully coalesced.
    #[test]
    fn allocator_invariants(actions in proptest::collection::vec(action_strategy(), 0..60)) {
        let region = AddrRange::new(PhysAddr::new(0x4000_0000), Bytes::from_mib(8));
        let mut space = PhysicalSpace::new(region, 4096);
        let total = space.free_bytes();
        let mut live: Vec<AddrRange> = Vec::new();

        for action in actions {
            match action {
                Action::Alloc(bytes) => {
                    if let Ok(r) = space.alloc(Bytes::new(bytes)) {
                        // Inside the region and aligned.
                        prop_assert!(region.contains_range(&r));
                        prop_assert!(r.start().is_aligned(4096));
                        // Disjoint from every live allocation.
                        for other in &live {
                            prop_assert!(!r.overlaps(other), "{r} overlaps {other}");
                        }
                        live.push(r);
                    }
                }
                Action::FreeIdx(i) => {
                    if !live.is_empty() {
                        let r = live.swap_remove(i % live.len());
                        prop_assert!(space.free(r.start()).is_ok());
                    }
                }
            }
            // Conservation: free + allocated == total.
            prop_assert_eq!(space.free_bytes() + space.allocated_bytes(), total);
            prop_assert_eq!(space.live_count(), live.len());
        }

        // Drain and verify full coalescing.
        for r in live {
            prop_assert!(space.free(r.start()).is_ok());
        }
        prop_assert_eq!(space.free_bytes(), total);
        prop_assert_eq!(space.largest_free_block(), total);
    }

    /// Every mapped byte translates forward and backward consistently.
    #[test]
    fn vmap_round_trips(lens in proptest::collection::vec(1u64..65536, 1..10)) {
        let mut map = AddressSpaceMap::new();
        let mut pa_base = 0x1_0000_0000u64;
        let mut pairs = Vec::new();
        for len in lens {
            let pa = AddrRange::new(PhysAddr::new(pa_base), Bytes::new(len));
            pa_base += len + 0x10000;
            let va = map.map(pa);
            pairs.push((va, pa));
        }
        for (va, pa) in pairs {
            // Probe the first, middle, and last byte.
            for off in [0, pa.len().get() / 2, pa.len().get() - 1] {
                let v = va + Bytes::new(off);
                let p = map.translate(v).unwrap();
                prop_assert_eq!(p, pa.start() + Bytes::new(off));
                prop_assert_eq!(map.reverse(p).unwrap(), v);
            }
            // One past the end is unmapped (guard page).
            prop_assert!(map.translate(va + pa.len()).is_err());
        }
    }
}
