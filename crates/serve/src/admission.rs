//! The admission gate: manifest rendering and `certify_set` as the
//! scheduler's only door.
//!
//! Every epoch the scheduler proposes a batch of resident candidates;
//! the gate renders them as a PR-8 session-set manifest (one `TENANT`
//! section per candidate: its partition, its arrival stagger, its
//! declared `BUDGET TIME`, and its class body rebased into the slot)
//! and asks [`certify_set`] for a verdict. The scheduler never admits
//! on its own authority: ADMIT means the certifier *proved* isolation
//! and every declared ceiling, REJECT comes with the MEA3xx proof
//! attached, and UNKNOWN is handled by a configurable — but always
//! conservative — policy: retry later or shed, never admit.

use mealib_verify::interference::{certify_set, parse_session_set, Certification, SessionSet};
use mealib_verify::BoundsEnv;
use mealib_workloads::sessions::rebase_session;

use mealib_types::AddrRange;

use crate::session::SessionRequest;

/// What to do with a candidate the certifier cannot decide on.
/// Both options are conservative: UNKNOWN never admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownPolicy {
    /// Re-queue with backoff; the candidate may certify in a later,
    /// smaller batch (the default).
    #[default]
    Retry,
    /// Shed immediately with
    /// [`ShedReason::Undecidable`](crate::ShedReason::Undecidable).
    Shed,
}

/// One candidate (or already-accepted member) of an epoch batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Resident {
    /// The session being placed.
    pub request: SessionRequest,
    /// The partition slot offered to it.
    pub partition: AddrRange,
    /// Request-slot arrival offset inside the epoch's merged replay.
    pub arrival_slot: u64,
    /// The class body rebased into the partition slot.
    pub body: String,
}

impl Resident {
    /// Places `request` into `partition` with the given stagger,
    /// rebasing `canonical_body` to the slot base.
    pub fn place(
        request: SessionRequest,
        canonical_body: &str,
        partition: AddrRange,
        arrival_slot: u64,
    ) -> Self {
        let body = rebase_session(canonical_body, partition.start().get());
        Self {
            request,
            partition,
            arrival_slot,
            body,
        }
    }

    /// The manifest tenant name: stable, unique per session id.
    pub fn tenant_name(&self) -> String {
        format!("s{}", self.request.id)
    }
}

/// The admission gate: environment plus the optional §4.2 asymmetric
/// boundary every manifest shares.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    env: BoundsEnv,
    /// When set, every manifest opens with `MEM ASYM <split>`: the
    /// shared layer carves a dedicated high region at `split`, so
    /// tenants placed above it own their unit outright.
    asym_split: Option<u64>,
}

impl AdmissionGate {
    /// A gate over `env` with the interleaved shared layer.
    pub fn new(env: BoundsEnv) -> Self {
        Self {
            env,
            asym_split: None,
        }
    }

    /// Switches every manifest to the asymmetric layer split at
    /// `split` (callers should pick a power of two at least as large
    /// as the biggest partition slot, so no slot straddles the
    /// boundary — buddy slots are self-aligned).
    pub fn with_asym_split(mut self, split: u64) -> Self {
        self.asym_split = Some(split);
        self
    }

    /// The environment verdicts are judged against.
    pub fn env(&self) -> &BoundsEnv {
        &self.env
    }

    /// Renders the session-set manifest for `batch`. Float budgets
    /// round-trip exactly (Rust float formatting is shortest-exact).
    pub fn manifest(&self, batch: &[Resident]) -> String {
        let mut src = String::new();
        if let Some(split) = self.asym_split {
            src.push_str(&format!("MEM ASYM 0x{split:x}\n"));
        }
        for r in batch {
            src.push_str(&format!("TENANT {}\n", r.tenant_name()));
            src.push_str(&format!(
                "PARTITION 0x{:x} 0x{:x}\n",
                r.partition.start().get(),
                r.partition.len().get()
            ));
            if r.arrival_slot > 0 {
                src.push_str(&format!("ARRIVAL {}\n", r.arrival_slot));
            }
            if let Some(b) = r.request.time_budget_s {
                src.push_str(&format!("BUDGET TIME {b}\n"));
            }
            src.push_str(&r.body);
        }
        src
    }

    /// Certifies `batch`, returning the parsed set (the replay input)
    /// and the certification (verdict + proof + bounds).
    ///
    /// # Panics
    ///
    /// Panics if the rendered manifest fails to parse or the preset
    /// environment fails validation — both are scheduler bugs, not
    /// input conditions.
    pub fn certify(&self, batch: &[Resident]) -> (SessionSet, Certification) {
        let src = self.manifest(batch);
        let set = parse_session_set(&src).expect("rendered manifests parse");
        let cert = certify_set(&set, &self.env).expect("preset env validates");
        (set, cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Catalogue;
    use mealib_types::{Bytes, PhysAddr};
    use mealib_verify::Verdict;

    fn place(cat: &Catalogue, id: u64, class: &str, base: u64, budget: Option<f64>) -> Resident {
        let c = cat.get(class).unwrap();
        Resident::place(
            SessionRequest {
                id,
                class: class.into(),
                arrival_epoch: 0,
                time_budget_s: budget,
            },
            &c.body,
            AddrRange::new(PhysAddr::new(base), Bytes::new(c.slot)),
            id * 64,
        )
    }

    #[test]
    fn disjoint_generous_batch_admits() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let gate = AdmissionGate::new(BoundsEnv::default());
        let slot = cat.get("stap-tiny").unwrap().slot;
        let hi = cat.get("stap-tiny").unwrap().solo_elapsed.1;
        let batch = vec![
            place(&cat, 0, "stap-tiny", 0, Some(hi * 100.0)),
            place(&cat, 1, "stap-tiny", slot, None),
        ];
        let (set, cert) = gate.certify(&batch);
        assert_eq!(cert.verdict, Verdict::Admit, "{}", cert.report.render());
        assert_eq!(set.tenants.len(), 2);
        assert_eq!(set.tenants[0].name, "s0");
        assert_eq!(set.tenants[1].arrival, 64);
        assert!(cert.codes().is_empty());
    }

    #[test]
    fn impossible_budget_rejects_with_a_proof() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let gate = AdmissionGate::new(BoundsEnv::default());
        let lo = cat.get("stap-tiny").unwrap().solo_elapsed.0;
        let batch = vec![place(&cat, 0, "stap-tiny", 0, Some(lo * 0.5))];
        let (_, cert) = gate.certify(&batch);
        assert_eq!(cert.verdict, Verdict::Reject);
        let codes = cert.codes();
        assert!(!codes.is_empty(), "a REJECT always carries its proof");
        assert!(codes.contains(&mealib_types::ErrorCode::InterfereLatencyBudget));
    }

    #[test]
    fn budget_text_round_trips_exactly() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let gate = AdmissionGate::new(BoundsEnv::default());
        // An awkward, non-terminating mantissa: exercises the full
        // float-to-text-to-float path, not a round decimal.
        let budget = std::f64::consts::FRAC_PI_3 * 1e-3;
        let batch = vec![place(&cat, 7, "sar-chain-256", 0, Some(budget))];
        let (set, _) = gate.certify(&batch);
        assert_eq!(set.tenants[0].session.budgets.time_s, Some(budget));
    }

    #[test]
    fn asym_split_selects_the_shared_asymmetric_layer() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let split = 1u64 << 29;
        let gate = AdmissionGate::new(BoundsEnv::default()).with_asym_split(split);
        let batch = vec![place(&cat, 0, "stap-tiny", 0, None)];
        let src = gate.manifest(&batch);
        assert!(src.starts_with(&format!("MEM ASYM 0x{split:x}\n")));
        let (set, cert) = gate.certify(&batch);
        assert!(set.mem_layer.is_some());
        // Isolation still provable under the asymmetric layer.
        assert_ne!(cert.verdict, Verdict::Reject, "{}", cert.report.render());
    }
}
