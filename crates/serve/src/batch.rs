//! Descriptor batching through the runtime's compiler path.
//!
//! Admitted sessions do not bypass the library: each batch member's
//! TDL items are planned through [`Runtime::acc_plan_cached`], so
//! repeated classes reuse compiled descriptor chains instead of
//! re-planning. Partition rebasing only moves `BUF` directives — the
//! TDL text itself is canonical per class — so the plan cache hits on
//! every repeat admission of a class, which is exactly the batching
//! economy the serving layer claims. The scheduler reads the hit/build
//! counters back out of here for the report.

use std::collections::BTreeSet;

use mealib_runtime::{Runtime, VerifyMode};
use mealib_sim::plausible_params;
use mealib_tdl::{ParamBag, TdlItem, TdlProgram};
use mealib_types::Bytes;
use mealib_verify::dataflow::{parse_session, HostOp};

use crate::session::Catalogue;

/// Plans admitted sessions' descriptors through a shared [`Runtime`],
/// batching repeats via the plan cache.
pub struct DescriptorBatcher {
    rt: Runtime,
    planned: u64,
}

impl DescriptorBatcher {
    /// A batcher with every catalogue buffer pre-allocated (token
    /// sizes: planning checks the descriptor path, not the dataset).
    ///
    /// # Panics
    ///
    /// Panics if a catalogue session fails to parse or a buffer fails
    /// to allocate — both in-tree invariants.
    pub fn new(catalogue: &Catalogue) -> Self {
        let mut rt = Runtime::new();
        // Admission already certified the batch; static re-verification
        // of each descriptor would double-charge the gate.
        rt.set_verify_mode(VerifyMode::Off);
        let mut names: BTreeSet<String> = BTreeSet::new();
        for class in catalogue.classes() {
            let session = parse_session(&class.body).expect("catalogue sessions parse");
            for pass in session.program.passes() {
                names.insert(pass.input.clone());
                names.insert(pass.output.clone());
            }
            for (_, op) in &session.host_ops {
                if let HostOp::Write(b) | HostOp::Read(b) = op {
                    names.insert(b.clone());
                }
            }
        }
        for name in &names {
            rt.mem_alloc(name, Bytes::from_mib(1))
                .expect("batcher buffers fit the default stack");
        }
        Self { rt, planned: 0 }
    }

    /// Plans every top-level TDL item of `canonical_body` through the
    /// cached compiler path. Returns the number of items planned.
    ///
    /// # Panics
    ///
    /// Panics if planning a catalogue session fails — the bodies are
    /// in-tree and the buffers pre-allocated, so that is a bug.
    pub fn plan_class(&mut self, canonical_body: &str) -> usize {
        let session = parse_session(canonical_body).expect("catalogue sessions parse");
        for item in &session.program.items {
            let program = TdlProgram::new(vec![item.clone()]);
            let mut bag = ParamBag::new();
            let comps: Vec<_> = match item {
                TdlItem::Pass(p) => p.comps.clone(),
                TdlItem::Loop(l) => l.body.iter().flat_map(|p| p.comps.clone()).collect(),
            };
            for comp in comps {
                bag.insert(comp.params.clone(), plausible_params(comp.accel).to_bytes());
            }
            self.rt
                .acc_plan_cached(&program.to_string(), &bag)
                .expect("catalogue sessions plan");
            self.planned += 1;
        }
        session.program.items.len()
    }

    /// Total top-level items planned (cached or not).
    pub fn planned(&self) -> u64 {
        self.planned
    }

    /// Plans served straight from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.rt.counters().plan_cache_hits
    }

    /// Distinct descriptor chains resident in the cache.
    pub fn cached_plans(&self) -> usize {
        self.rt.plan_cache_len()
    }

    /// Exports the runtime's cumulative counters (plans, executions,
    /// cache hits) plus the resident-cache size into `reg` — the
    /// telemetry surface for the batching economy.
    pub fn export_metrics(&self, reg: &mut mealib_obs::MetricsRegistry) {
        self.rt.counters().export_into(reg);
        reg.describe("serve_plans_planned_total", "Top-level TDL items planned");
        reg.store("serve_plans_planned_total", &[], self.planned);
        reg.describe(
            "runtime_plan_cache_len",
            "Descriptor chains resident in the plan cache",
        );
        reg.store(
            "runtime_plan_cache_len",
            &[],
            self.rt.plan_cache_len() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_verify::BoundsEnv;

    #[test]
    fn repeat_classes_hit_the_plan_cache() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let mut b = DescriptorBatcher::new(&cat);
        let body = cat.get("sar-chain-256").unwrap().body.clone();
        let items = b.plan_class(&body);
        assert!(items > 0);
        assert_eq!(b.cache_hits(), 0, "first plan builds");
        b.plan_class(&body);
        assert_eq!(b.cache_hits(), items as u64, "second plan is all hits");
        assert_eq!(b.planned(), 2 * items as u64);
        assert_eq!(b.cached_plans(), items);
    }

    #[test]
    fn every_catalogue_class_plans_cleanly() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let mut b = DescriptorBatcher::new(&cat);
        for class in cat.classes() {
            assert!(b.plan_class(&class.body) > 0, "{}", class.name);
        }
        // All four stap scales share one canonical TDL shape, so the
        // cache holds fewer chains than the catalogue has classes.
        assert!(b.cached_plans() <= b.planned() as usize);
        assert!(b.cache_hits() > 0, "stap scales share descriptor chains");
    }
}
