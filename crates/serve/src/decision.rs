//! Typed scheduler decisions.
//!
//! [`DecisionEvent`] replaces the report's old free-form
//! `Vec<String>` decision log with one variant per decision site in
//! the epoch loop. The `Display` impl reproduces the legacy log lines
//! byte for byte — `ServeReport::fingerprint` and every text consumer
//! see exactly the strings they always did — while
//! [`DecisionEvent::to_json`] gives the telemetry layer a structured
//! serialization through `mealib-obs::json` (REJECT events carry
//! their proved MEA3xx codes as a real array, not a substring).

use std::fmt;

use mealib_obs::json::{array, Object};
use mealib_types::ErrorCode;

use crate::session::ShedReason;

/// One scheduler decision, in epoch-loop order.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEvent {
    /// The certifier proved the batch and the session was placed.
    Admit {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
        /// Session class.
        class: String,
        /// Partition slot base address.
        part_start: u64,
        /// Partition slot length, bytes.
        part_len: u64,
        /// 1-based admission attempt that succeeded.
        attempt: u32,
    },
    /// Terminal REJECT carrying the MEA3xx proof.
    Reject {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
        /// The proof: every violated-bound code the certifier emitted.
        codes: Vec<ErrorCode>,
        /// Total admission attempts spent.
        attempts: u32,
    },
    /// Non-terminal REJECT: parked with exponential backoff.
    Backoff {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
        /// Epoch the session becomes eligible again.
        until_epoch: u64,
        /// 1-based attempt that failed.
        attempt: u32,
    },
    /// UNKNOWN verdict under the retry policy: parked for a smaller
    /// batch later.
    UnknownRetry {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
        /// Epoch the session becomes eligible again.
        retry_epoch: u64,
        /// 1-based attempt that was undecidable.
        attempt: u32,
    },
    /// Policy shed after one or more admission attempts
    /// (undecidable under the shed policy, or retries exhausted).
    ShedPolicy {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
        /// Why the session was shed.
        reason: ShedReason,
        /// Total admission attempts spent.
        attempts: u32,
    },
    /// Arrival shed: the class slot exceeds device capacity, so the
    /// session can never be placed.
    ShedSlot {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
    },
    /// Arrival shed: the wait queue was full (tail drop).
    ShedQueueFull {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
    },
    /// Drain-deadline shed: the run hit `max_epochs` with the session
    /// still unserved.
    ShedDrain {
        /// Epoch of the decision.
        epoch: u64,
        /// Session id.
        id: u64,
    },
}

impl DecisionEvent {
    /// The epoch the decision was made in.
    pub fn epoch(&self) -> u64 {
        match *self {
            DecisionEvent::Admit { epoch, .. }
            | DecisionEvent::Reject { epoch, .. }
            | DecisionEvent::Backoff { epoch, .. }
            | DecisionEvent::UnknownRetry { epoch, .. }
            | DecisionEvent::ShedPolicy { epoch, .. }
            | DecisionEvent::ShedSlot { epoch, .. }
            | DecisionEvent::ShedQueueFull { epoch, .. }
            | DecisionEvent::ShedDrain { epoch, .. } => epoch,
        }
    }

    /// The session the decision concerns.
    pub fn id(&self) -> u64 {
        match *self {
            DecisionEvent::Admit { id, .. }
            | DecisionEvent::Reject { id, .. }
            | DecisionEvent::Backoff { id, .. }
            | DecisionEvent::UnknownRetry { id, .. }
            | DecisionEvent::ShedPolicy { id, .. }
            | DecisionEvent::ShedSlot { id, .. }
            | DecisionEvent::ShedQueueFull { id, .. }
            | DecisionEvent::ShedDrain { id, .. } => id,
        }
    }

    /// Stable snake_case kind tag used in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionEvent::Admit { .. } => "admit",
            DecisionEvent::Reject { .. } => "reject",
            DecisionEvent::Backoff { .. } => "backoff",
            DecisionEvent::UnknownRetry { .. } => "unknown_retry",
            DecisionEvent::ShedPolicy { .. } => "shed_policy",
            DecisionEvent::ShedSlot { .. } => "shed_slot",
            DecisionEvent::ShedQueueFull { .. } => "shed_queue_full",
            DecisionEvent::ShedDrain { .. } => "shed_drain",
        }
    }

    /// `true` for the three variants that dispose a session as shed.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            DecisionEvent::ShedPolicy { .. }
                | DecisionEvent::ShedSlot { .. }
                | DecisionEvent::ShedQueueFull { .. }
                | DecisionEvent::ShedDrain { .. }
        )
    }

    /// Renders the decision as one JSON object via `mealib-obs::json`.
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.str("event", self.kind());
        o.int("epoch", self.epoch());
        o.int("id", self.id());
        match self {
            DecisionEvent::Admit {
                class,
                part_start,
                part_len,
                attempt,
                ..
            } => {
                o.str("class", class);
                o.str("part_start", &format!("0x{part_start:x}"));
                o.str("part_len", &format!("0x{part_len:x}"));
                o.int("attempt", u64::from(*attempt));
            }
            DecisionEvent::Reject {
                codes, attempts, ..
            } => {
                // `json::array` takes pre-rendered JSON values; code
                // names are plain identifiers, so quoting suffices.
                let rendered: Vec<String> = codes.iter().map(|c| format!("\"{c:?}\"")).collect();
                o.raw("codes", array(&rendered));
                o.int("attempts", u64::from(*attempts));
            }
            DecisionEvent::Backoff {
                until_epoch,
                attempt,
                ..
            } => {
                o.int("until_epoch", *until_epoch);
                o.int("attempt", u64::from(*attempt));
            }
            DecisionEvent::UnknownRetry {
                retry_epoch,
                attempt,
                ..
            } => {
                o.int("retry_epoch", *retry_epoch);
                o.int("attempt", u64::from(*attempt));
            }
            DecisionEvent::ShedPolicy {
                reason, attempts, ..
            } => {
                o.str("reason", reason.label());
                o.int("attempts", u64::from(*attempts));
            }
            DecisionEvent::ShedSlot { .. } => {
                o.str("reason", "undecidable_slot");
            }
            DecisionEvent::ShedQueueFull { .. } => {
                o.str("reason", "queue_full");
            }
            DecisionEvent::ShedDrain { .. } => {
                o.str("reason", "drain_deadline");
            }
        }
        o.render()
    }
}

impl fmt::Display for DecisionEvent {
    /// The legacy decision-log line, byte for byte.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionEvent::Admit {
                epoch,
                id,
                class,
                part_start,
                part_len,
                attempt,
            } => write!(
                f,
                "e{epoch} admit s{id} class={class} part=0x{part_start:x}+0x{part_len:x} \
                 attempt={attempt}"
            ),
            DecisionEvent::Reject {
                epoch,
                id,
                codes,
                attempts,
            } => {
                let rendered: Vec<String> = codes.iter().map(|c| format!("{c:?}")).collect();
                write!(
                    f,
                    "e{epoch} reject s{id} codes=[{}] attempts={attempts}",
                    rendered.join(",")
                )
            }
            DecisionEvent::Backoff {
                epoch,
                id,
                until_epoch,
                attempt,
            } => write!(
                f,
                "e{epoch} backoff s{id} until e{until_epoch} attempt={attempt}"
            ),
            DecisionEvent::UnknownRetry {
                epoch,
                id,
                retry_epoch,
                attempt,
            } => write!(
                f,
                "e{epoch} unknown s{id} retry at e{retry_epoch} attempt={attempt}"
            ),
            DecisionEvent::ShedPolicy {
                epoch,
                id,
                reason,
                attempts,
            } => write!(
                f,
                "e{epoch} shed s{id} reason={} attempts={attempts}",
                reason.label()
            ),
            DecisionEvent::ShedSlot { epoch, id } => {
                write!(f, "e{epoch} shed s{id} reason=undecidable (slot)")
            }
            DecisionEvent::ShedQueueFull { epoch, id } => {
                write!(f, "e{epoch} shed s{id} reason=queue_full")
            }
            DecisionEvent::ShedDrain { epoch, id } => {
                write!(f, "e{epoch} shed s{id} reason=drain_deadline")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_obs::json;

    #[test]
    fn display_reproduces_the_legacy_log_lines() {
        let cases: Vec<(DecisionEvent, &str)> = vec![
            (
                DecisionEvent::Admit {
                    epoch: 3,
                    id: 17,
                    class: "stap-tiny".into(),
                    part_start: 0x400000,
                    part_len: 0x400000,
                    attempt: 2,
                },
                "e3 admit s17 class=stap-tiny part=0x400000+0x400000 attempt=2",
            ),
            (
                DecisionEvent::Reject {
                    epoch: 5,
                    id: 9,
                    codes: vec![ErrorCode::InterfereLatencyBudget],
                    attempts: 4,
                },
                "e5 reject s9 codes=[InterfereLatencyBudget] attempts=4",
            ),
            (
                DecisionEvent::Backoff {
                    epoch: 1,
                    id: 2,
                    until_epoch: 4,
                    attempt: 1,
                },
                "e1 backoff s2 until e4 attempt=1",
            ),
            (
                DecisionEvent::UnknownRetry {
                    epoch: 2,
                    id: 8,
                    retry_epoch: 5,
                    attempt: 1,
                },
                "e2 unknown s8 retry at e5 attempt=1",
            ),
            (
                DecisionEvent::ShedPolicy {
                    epoch: 7,
                    id: 3,
                    reason: ShedReason::RetriesExhausted,
                    attempts: 4,
                },
                "e7 shed s3 reason=retries_exhausted attempts=4",
            ),
            (
                DecisionEvent::ShedSlot { epoch: 0, id: 1 },
                "e0 shed s1 reason=undecidable (slot)",
            ),
            (
                DecisionEvent::ShedQueueFull { epoch: 4, id: 6 },
                "e4 shed s6 reason=queue_full",
            ),
            (
                DecisionEvent::ShedDrain { epoch: 9, id: 5 },
                "e9 shed s5 reason=drain_deadline",
            ),
        ];
        for (ev, expected) in cases {
            assert_eq!(ev.to_string(), expected);
        }
    }

    #[test]
    fn json_serialization_parses_and_carries_the_codes() {
        let ev = DecisionEvent::Reject {
            epoch: 5,
            id: 9,
            codes: vec![ErrorCode::InterfereLatencyBudget],
            attempts: 4,
        };
        let v = json::parse(&ev.to_json()).expect("decision json parses");
        assert_eq!(v.get("event").and_then(|x| x.as_str()), Some("reject"));
        assert_eq!(v.get("epoch").and_then(|x| x.as_f64()), Some(5.0));
        let codes = v.get("codes").and_then(|x| x.as_array()).unwrap();
        assert_eq!(codes.len(), 1);
        assert_eq!(codes[0].as_str(), Some("InterfereLatencyBudget"));
    }

    #[test]
    fn accessors_agree_with_the_variants() {
        let ev = DecisionEvent::ShedQueueFull { epoch: 4, id: 6 };
        assert_eq!(ev.epoch(), 4);
        assert_eq!(ev.id(), 6);
        assert_eq!(ev.kind(), "shed_queue_full");
        assert!(ev.is_shed());
        let adm = DecisionEvent::Admit {
            epoch: 0,
            id: 0,
            class: "c".into(),
            part_start: 0,
            part_len: 0,
            attempt: 1,
        };
        assert!(!adm.is_shed());
    }
}
