//! `mealib-serve`: a certified-admission multi-tenant session
//! scheduler over the MEALib stack.
//!
//! The serving layer closes the loop the interference certifier
//! (`mealib-verify::interference`) opened: instead of certifying
//! hand-built tenant mixes, it runs a discrete-event scheduler whose
//! *only* admission authority is [`certify_set`]'s verdict. Arriving
//! TDL sessions ([`traffic`]) are placed into buddy-allocated vault
//! partitions ([`partition`]), rendered as session-set manifests and
//! certified against the currently-forming batch ([`admission`]),
//! planned through the runtime's cached compiler path ([`batch`]),
//! and replayed through the tagged interleaved engine for exact
//! per-tenant attribution ([`scheduler`]). REJECT verdicts retry with
//! exponential backoff until their MEA3xx proof terminalizes them;
//! UNKNOWN verdicts follow a configurable conservative policy and are
//! never admitted.
//!
//! Everything is a pure function of (catalogue, traffic spec, config,
//! environment): the same seed reproduces the same admission
//! decisions, queue orders, and per-tenant latency histograms to the
//! bit, at any worker count — the property the determinism and QoS
//! test harnesses pin down.
//!
//! [`certify_set`]: mealib_verify::interference::certify_set

#![forbid(unsafe_code)]

pub mod admission;
pub mod batch;
pub mod decision;
pub mod metrics;
pub mod partition;
pub mod scheduler;
pub mod session;
pub mod telemetry;
pub mod traffic;

pub use admission::{AdmissionGate, Resident, UnknownPolicy};
pub use batch::DescriptorBatcher;
pub use decision::DecisionEvent;
pub use metrics::{ClassStats, EpochStats, ServeReport};
pub use partition::PartitionTable;
pub use scheduler::{serve, serve_observed, serve_with_telemetry, ServeConfig};
pub use session::{
    Catalogue, CompletedSession, RejectedSession, SessionClass, SessionRequest, ShedReason,
    ShedSession, MIN_SLOT,
};
pub use telemetry::{Telemetry, TelemetryConfig, TelemetryReport};
pub use traffic::{generate, ArrivalMix, ClassShare, Traffic, TrafficSpec};
