//! The serve report: per-session dispositions, per-class percentiles,
//! conservation reconciliation, and the determinism fingerprint.

use std::collections::BTreeMap;

use mealib_obs::quantiles::p50_p95_p99;
use mealib_obs::{Breakdown, Phase};

use crate::decision::DecisionEvent;
use crate::session::{CompletedSession, RejectedSession, ShedSession};
use crate::traffic::Traffic;
use crate::Catalogue;

/// One scheduling epoch's ledger line.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch number.
    pub epoch: u64,
    /// Fresh arrivals this epoch (before any tail drop).
    pub arrivals: usize,
    /// Sessions admitted and replayed this epoch.
    pub admitted: usize,
    /// Terminal rejections this epoch.
    pub rejected: usize,
    /// Sessions shed this epoch.
    pub shed: usize,
    /// Queue depth after the epoch's batch was taken.
    pub queue_depth_end: usize,
    /// Modeled elapsed seconds of this epoch's merged replay.
    pub replay_elapsed_s: f64,
    /// Modeled clock at the end of the epoch (monotone non-decreasing
    /// across the run).
    pub clock_s: f64,
}

/// Aggregates for one class of completed sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Completed sessions of this class.
    pub count: usize,
    /// Service-time percentiles (nearest-rank, seconds).
    pub p50_s: f64,
    /// 95th percentile service time.
    pub p95_s: f64,
    /// 99th percentile service time.
    pub p99_s: f64,
    /// Worst queueing delay any completion of the class saw.
    pub max_queue_delay_s: f64,
    /// Exact bytes the class's completions moved.
    pub bytes: u64,
    /// Attributed DRAM energy over the class's completions, joules.
    pub energy_j: f64,
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Sessions that ran, with exact attribution.
    pub completed: Vec<CompletedSession>,
    /// Sessions the certifier proved inadmissible.
    pub rejected: Vec<RejectedSession>,
    /// Sessions dropped by policy.
    pub shed: Vec<ShedSession>,
    /// Per-epoch ledger, in order.
    pub epochs: Vec<EpochStats>,
    /// Typed admission decisions, in order (deterministic). The
    /// `Display` impl of each event reproduces the legacy text line,
    /// so `fingerprint()` and text consumers are unchanged;
    /// [`DecisionEvent::to_json`] serializes the structured form.
    pub decision_log: Vec<DecisionEvent>,
    /// Final modeled clock: the sum of every epoch replay's elapsed.
    pub modeled_s: f64,
    /// Phase breakdown (admission under `Verify`, replays under
    /// `Compute`); modeled-only, so `total_time == modeled_s` exactly.
    pub breakdown: Breakdown,
    /// Deepest the wait queue ever got.
    pub peak_queue_depth: usize,
    /// Top-level TDL items planned through the compiler path.
    pub plans_planned: u64,
    /// Plans served from the descriptor cache (batching economy).
    pub plan_cache_hits: u64,
    /// Distinct descriptor chains resident at the end.
    pub plan_cache_len: usize,
}

impl ServeReport {
    /// Every generated session has exactly one terminal disposition.
    pub fn total_sessions(&self) -> usize {
        self.completed.len() + self.rejected.len() + self.shed.len()
    }

    /// Fraction of completions whose measured service time stayed
    /// inside the elapsed ceiling their admission certified. The
    /// serving layer's core soundness claim is that this is `1.0` by
    /// construction.
    pub fn admission_soundness(&self) -> f64 {
        if self.completed.is_empty() {
            return 1.0;
        }
        let sound = self
            .completed
            .iter()
            .filter(|c| c.service_s <= c.certified_elapsed_hi)
            .count();
        sound as f64 / self.completed.len() as f64
    }

    /// Per-class percentiles and attribution over the completions.
    pub fn class_stats(&self) -> BTreeMap<String, ClassStats> {
        let mut by_class: BTreeMap<String, Vec<&CompletedSession>> = BTreeMap::new();
        for c in &self.completed {
            by_class.entry(c.class.clone()).or_default().push(c);
        }
        by_class
            .into_iter()
            .map(|(class, sessions)| {
                let service: Vec<f64> = sessions.iter().map(|c| c.service_s).collect();
                let (p50_s, p95_s, p99_s) =
                    p50_p95_p99(&service).expect("non-empty class has percentiles");
                let stats = ClassStats {
                    count: sessions.len(),
                    p50_s,
                    p95_s,
                    p99_s,
                    max_queue_delay_s: sessions.iter().map(|c| c.queue_delay_s).fold(0.0, f64::max),
                    bytes: sessions.iter().map(|c| c.bytes).sum(),
                    energy_j: sessions.iter().map(|c| c.energy_j).sum(),
                };
                (class, stats)
            })
            .collect()
    }

    /// Reconciles the run against the traffic generator's emitted-byte
    /// ledger: every session has exactly one disposition, ids cover
    /// the stream exactly, and per-class bytes balance — completions
    /// moved their class's exact trace bytes, rejected/shed sessions
    /// moved none.
    ///
    /// # Errors
    ///
    /// Returns the first violated clause, rendered.
    pub fn check_conservation(
        &self,
        traffic: &Traffic,
        catalogue: &Catalogue,
    ) -> Result<(), String> {
        if self.total_sessions() != traffic.sessions.len() {
            return Err(format!(
                "disposition count {} != generated {}",
                self.total_sessions(),
                traffic.sessions.len()
            ));
        }
        let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
        for id in self
            .completed
            .iter()
            .map(|c| c.id)
            .chain(self.rejected.iter().map(|r| r.id))
            .chain(self.shed.iter().map(|s| s.id))
        {
            *seen.entry(id).or_default() += 1;
        }
        for s in &traffic.sessions {
            match seen.get(&s.id) {
                Some(1) => {}
                Some(n) => return Err(format!("session {} has {n} dispositions", s.id)),
                None => return Err(format!("session {} has no disposition", s.id)),
            }
        }
        // Per-class byte balance: served bytes must equal emitted bytes
        // minus the unserved sessions' (exact) trace bytes.
        let mut served: BTreeMap<String, u64> = BTreeMap::new();
        for c in &self.completed {
            *served.entry(c.class.clone()).or_default() += c.bytes;
        }
        let mut unserved: BTreeMap<String, u64> = BTreeMap::new();
        for class in self
            .rejected
            .iter()
            .map(|r| r.class.clone())
            .chain(self.shed.iter().map(|s| s.class.clone()))
        {
            let t = catalogue
                .get(&class)
                .ok_or_else(|| format!("unknown class {class}"))?
                .trace_bytes;
            *unserved.entry(class).or_default() += t;
        }
        for (class, &emitted) in &traffic.emitted_bytes {
            let got =
                served.get(class).copied().unwrap_or(0) + unserved.get(class).copied().unwrap_or(0);
            if got != emitted {
                return Err(format!(
                    "{class}: served {} + unserved {} != emitted {emitted}",
                    served.get(class).copied().unwrap_or(0),
                    unserved.get(class).copied().unwrap_or(0),
                ));
            }
        }
        Ok(())
    }

    /// A stable, bit-exact digest of everything observable about the
    /// run. Two runs are *the same run* iff their fingerprints match:
    /// floats go in via [`f64::to_bits`], so equality is exact, not
    /// approximate.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.completed {
            let _ = writeln!(
                out,
                "C {} {} e{} q{:016x} s{:016x} b{} j{:016x} p{:x}+{:x} l{:016x} h{:016x} r{}",
                c.id,
                c.class,
                c.admitted_epoch,
                c.queue_delay_s.to_bits(),
                c.service_s.to_bits(),
                c.bytes,
                c.energy_j.to_bits(),
                c.partition.start().get(),
                c.partition.len().get(),
                c.certified_elapsed_lo.to_bits(),
                c.certified_elapsed_hi.to_bits(),
                c.retries,
            );
        }
        for r in &self.rejected {
            let codes: Vec<String> = r.codes.iter().map(|c| format!("{c:?}")).collect();
            let _ = writeln!(
                out,
                "R {} {} e{} [{}] r{}",
                r.id,
                r.class,
                r.epoch,
                codes.join(","),
                r.retries
            );
        }
        for s in &self.shed {
            let _ = writeln!(
                out,
                "S {} {} e{} {}",
                s.id,
                s.class,
                s.epoch,
                s.reason.label()
            );
        }
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "E {} a{} +{} -{} x{} d{} t{:016x} k{:016x}",
                e.epoch,
                e.arrivals,
                e.admitted,
                e.rejected,
                e.shed,
                e.queue_depth_end,
                e.replay_elapsed_s.to_bits(),
                e.clock_s.to_bits(),
            );
        }
        for line in &self.decision_log {
            let _ = writeln!(out, "D {line}");
        }
        let _ = writeln!(
            out,
            "T {:016x} q{} p{} h{} l{}",
            self.modeled_s.to_bits(),
            self.peak_queue_depth,
            self.plans_planned,
            self.plan_cache_hits,
            self.plan_cache_len,
        );
        out
    }

    /// The modeled time the breakdown attributes to epoch replays.
    /// Equal to [`ServeReport::modeled_s`] exactly — the breakdown is
    /// modeled-only, so reconciliation has zero drift by construction.
    pub fn breakdown_compute_s(&self) -> f64 {
        self.breakdown.phase(Phase::Compute).time.get()
    }
}
