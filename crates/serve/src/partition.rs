//! Deterministic buddy allocation of vault partitions.
//!
//! The scheduler carves the modeled device capacity into
//! power-of-two partition slots, one per resident tenant. A buddy
//! allocator keeps the arithmetic exact and the behavior a pure
//! function of the request sequence: blocks split top-down from the
//! lowest-addressed free block of the smallest sufficient order, and
//! freed blocks re-merge with their buddy eagerly. Power-of-two slots
//! aligned to their own size also guarantee that a slot never
//! straddles the §4.2 asymmetric interleaving split when the split
//! itself is slot-aligned — the property the QoS isolation test
//! leans on.

use std::collections::{BTreeMap, BTreeSet};

use mealib_types::{AddrRange, Bytes, PhysAddr};

use crate::session::MIN_SLOT;

/// A buddy allocator over `[0, capacity)` device bytes.
#[derive(Debug, Clone)]
pub struct PartitionTable {
    capacity: u64,
    /// Free blocks: order (log2 of byte size) -> bases, both ordered.
    free: BTreeMap<u32, BTreeSet<u64>>,
    /// Live allocations by base, with their order.
    live: BTreeMap<u64, u32>,
}

impl PartitionTable {
    /// A table over `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a power of two no smaller than
    /// [`MIN_SLOT`].
    pub fn new(capacity: u64) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= MIN_SLOT,
            "capacity must be a power of two >= MIN_SLOT, got {capacity}"
        );
        let top = capacity.trailing_zeros();
        let mut free = BTreeMap::new();
        free.insert(top, BTreeSet::from([0u64]));
        Self {
            capacity,
            free,
            live: BTreeMap::new(),
        }
    }

    /// The table's total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn resident_bytes(&self) -> u64 {
        self.live.values().map(|&o| 1u64 << o).sum()
    }

    /// Live partition count.
    pub fn resident_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates the smallest power-of-two slot of at least `bytes`
    /// (and at least [`MIN_SLOT`]), or `None` when no block fits.
    /// Deterministic: always the lowest-addressed free block of the
    /// smallest sufficient order, split down as needed.
    pub fn alloc(&mut self, bytes: u64) -> Option<AddrRange> {
        let want = bytes.max(MIN_SLOT).next_power_of_two();
        if want > self.capacity {
            return None;
        }
        let order = want.trailing_zeros();
        // Smallest order with a free block that covers the request.
        let (&have, _) = self.free.range(order..).find(|(_, s)| !s.is_empty())?;
        let base = *self.free.get_mut(&have)?.iter().next()?;
        self.free.get_mut(&have)?.remove(&base);
        // Split down to the requested order, freeing the upper halves.
        let mut o = have;
        while o > order {
            o -= 1;
            self.free.entry(o).or_default().insert(base + (1u64 << o));
        }
        self.live.insert(base, order);
        Some(AddrRange::new(PhysAddr::new(base), Bytes::new(want)))
    }

    /// Returns a previously-allocated slot and merges buddies eagerly.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not a live allocation of this table
    /// (double free or foreign range — a scheduler bug either way).
    pub fn free(&mut self, range: AddrRange) {
        let base = range.start().get();
        let order = self
            .live
            .remove(&base)
            .unwrap_or_else(|| panic!("freeing unallocated partition at 0x{base:x}"));
        assert_eq!(
            1u64 << order,
            range.len().get(),
            "partition length mismatch on free"
        );
        let mut base = base;
        let mut order = order;
        let top = self.capacity.trailing_zeros();
        while order < top {
            let buddy = base ^ (1u64 << order);
            let merged = self
                .free
                .get_mut(&order)
                .is_some_and(|set| set.remove(&buddy));
            if !merged {
                break;
            }
            base &= !(1u64 << order);
            order += 1;
        }
        self.free.entry(order).or_default().insert(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_aligned_and_deterministic() {
        let mut t = PartitionTable::new(1 << 28);
        let a = t.alloc(1).unwrap();
        let b = t.alloc(MIN_SLOT + 1).unwrap();
        let c = t.alloc(3 * MIN_SLOT).unwrap();
        assert_eq!(a.len().get(), MIN_SLOT);
        assert_eq!(b.len().get(), 2 * MIN_SLOT);
        assert_eq!(c.len().get(), 4 * MIN_SLOT);
        for r in [&a, &b, &c] {
            assert_eq!(r.start().get() % r.len().get(), 0, "self-aligned");
        }
        // Pairwise disjoint.
        let ranges = [&a, &b, &c];
        for (i, x) in ranges.iter().enumerate() {
            for y in &ranges[i + 1..] {
                assert!(
                    x.end().get() <= y.start().get() || y.end().get() <= x.start().get(),
                    "{x:?} overlaps {y:?}"
                );
            }
        }
        assert_eq!(t.resident_bytes(), 7 * MIN_SLOT);
        assert_eq!(t.resident_count(), 3);
        // The same request sequence on a fresh table places blocks
        // identically.
        let mut u = PartitionTable::new(1 << 28);
        assert_eq!(u.alloc(1), Some(a));
        assert_eq!(u.alloc(MIN_SLOT + 1), Some(b));
        assert_eq!(u.alloc(3 * MIN_SLOT), Some(c));
    }

    #[test]
    fn free_merges_buddies_back_to_one_block() {
        let cap = 1 << 26;
        let mut t = PartitionTable::new(cap);
        let slots: Vec<AddrRange> = (0..(cap / MIN_SLOT)).map(|_| t.alloc(1).unwrap()).collect();
        assert_eq!(t.resident_bytes(), cap);
        assert!(t.alloc(1).is_none(), "full table refuses");
        for s in slots {
            t.free(s);
        }
        assert_eq!(t.resident_bytes(), 0);
        // Fully merged: a capacity-sized allocation succeeds again.
        assert_eq!(t.alloc(cap).unwrap().len().get(), cap);
    }

    #[test]
    fn oversized_requests_are_refused_without_state_damage() {
        let mut t = PartitionTable::new(1 << 24);
        assert!(t.alloc(1 << 25).is_none());
        let a = t.alloc(1 << 24).unwrap();
        assert_eq!(a.start().get(), 0);
        t.free(a);
        assert_eq!(t.resident_count(), 0);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut t = PartitionTable::new(1 << 24);
        let a = t.alloc(1).unwrap();
        t.free(a);
        t.free(a);
    }
}
