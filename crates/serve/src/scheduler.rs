//! The discrete-event serving loop: arrivals → certified admission →
//! partitioned batch replay → exact attribution.
//!
//! Time advances in *epochs*. Each epoch the scheduler
//!
//! 1. promotes due retries to the front of the wait queue (respecting
//!    the queue bound — overflow retries stay parked, delayed but
//!    never dropped) and takes fresh arrivals at the back
//!    (tail-dropping at `queue_cap`);
//! 2. fills a batch from the queue front: each candidate gets a buddy
//!    partition slot and the grown batch is re-certified through
//!    [`AdmissionGate::certify`] — ADMIT joins, REJECT frees the slot
//!    and retries with exponential backoff until the retry budget
//!    terminalizes it (carrying the MEA3xx proof), UNKNOWN follows the
//!    configured conservative policy;
//! 3. plans the batch's descriptors through the runtime compiler path
//!    (repeat classes batch via the plan cache) and replays the merged
//!    set through the tagged interleaved engine, crediting each tenant
//!    its exact modeled service time, bytes, and energy;
//! 4. advances the modeled clock by the replay's elapsed time and
//!    frees every partition (residency is one epoch).
//!
//! The loop is a pure function of (catalogue, traffic, config,
//! environment): no wall-clock, no ambient randomness, `BTreeMap`
//! ordering throughout — the property the determinism harness pins
//! down to the bit.

use std::collections::{BTreeMap, VecDeque};

use mealib_memsim::{simulate_tenants, SimOptions};
use mealib_obs::{Breakdown, Obs, Phase};
use mealib_types::{Joules, Seconds};
use mealib_verify::interference::{resolved_set_config, tenant_streams};
use mealib_verify::{BoundsEnv, Verdict};

use crate::admission::{AdmissionGate, Resident, UnknownPolicy};
use crate::batch::DescriptorBatcher;
use crate::decision::DecisionEvent;
use crate::metrics::{EpochStats, ServeReport};
use crate::partition::PartitionTable;
use crate::session::{
    Catalogue, CompletedSession, RejectedSession, SessionRequest, ShedReason, ShedSession,
};
use crate::telemetry::{Telemetry, TelemetryConfig, TelemetryReport};
use crate::traffic::Traffic;

/// Scheduler knobs. The defaults serve the standard catalogue.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Partitionable device bytes (power of two; sessions whose slot
    /// exceeds this are shed on arrival — they can never be placed).
    pub capacity: u64,
    /// Most tenants resident (replayed together) per epoch.
    pub max_resident: usize,
    /// Wait-queue depth; arrivals beyond it are tail-dropped.
    pub queue_cap: usize,
    /// Admission attempts before a REJECT terminalizes (or an UNKNOWN
    /// under the retry policy is shed).
    pub max_retries: u32,
    /// Backoff after the first failed attempt, in epochs; doubles per
    /// attempt.
    pub backoff_base: u64,
    /// What to do with UNKNOWN verdicts (never admit).
    pub unknown_policy: UnknownPolicy,
    /// Worker threads for the epoch replay (bit-exact at any value).
    pub jobs: usize,
    /// Request-slot arrival stagger between batch positions.
    pub stagger_slots: u64,
    /// Drain deadline: at this epoch everything still unserved is shed
    /// with [`ShedReason::DrainDeadline`]. `u64::MAX` disables it.
    pub max_epochs: u64,
    /// When set, admission certifies against the §4.2 asymmetric
    /// layer split at this (slot-aligned) boundary.
    pub asym_split: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            capacity: 1 << 31,
            max_resident: 4,
            queue_cap: 64,
            max_retries: 3,
            backoff_base: 1,
            unknown_policy: UnknownPolicy::Retry,
            jobs: 1,
            stagger_slots: 64,
            max_epochs: u64::MAX,
            asym_split: None,
        }
    }
}

/// A queued session awaiting admission.
#[derive(Debug, Clone)]
struct Pending {
    req: SessionRequest,
    attempts: u32,
    arrival_clock_s: f64,
}

/// Runs the serving loop without observability.
pub fn serve(
    catalogue: &Catalogue,
    traffic: &Traffic,
    config: &ServeConfig,
    env: &BoundsEnv,
) -> ServeReport {
    serve_observed(catalogue, traffic, config, env, &Obs::off())
}

/// Runs the serving loop, emitting admission (`Verify`) and replay
/// (`Compute`) spans into `obs`.
///
/// # Panics
///
/// Panics if `traffic` names a class the catalogue does not carry, or
/// on internal invariant violations (certified batches that fail to
/// replay).
pub fn serve_observed(
    catalogue: &Catalogue,
    traffic: &Traffic,
    config: &ServeConfig,
    env: &BoundsEnv,
    obs: &Obs,
) -> ServeReport {
    serve_core(catalogue, traffic, config, env, obs, None)
}

/// Runs the serving loop with live telemetry: streaming metric
/// sketches, the per-session lifecycle trace, and the SLO /
/// certified-bounds engines, all driven by the modeled clock.
///
/// With [`TelemetryConfig::stream_only`] the report's per-session
/// vectors and decision log come back empty — the telemetry registry
/// is the record and run memory stays `O(classes × buckets + epochs)`.
///
/// # Panics
///
/// Panics as [`serve_observed`] does.
pub fn serve_with_telemetry(
    catalogue: &Catalogue,
    traffic: &Traffic,
    config: &ServeConfig,
    env: &BoundsEnv,
    obs: &Obs,
    telemetry: &TelemetryConfig,
) -> (ServeReport, TelemetryReport) {
    let mut tele = Telemetry::new(telemetry);
    let report = serve_core(catalogue, traffic, config, env, obs, Some(&mut tele));
    let tele_report = tele.finish(report.modeled_s, report.peak_queue_depth);
    (report, tele_report)
}

/// The epoch loop shared by every entry point. `tele` costs one
/// `Option` discriminant check per event when telemetry is off — the
/// bench's <2% untelemetered wall criterion rides on that.
fn serve_core(
    catalogue: &Catalogue,
    traffic: &Traffic,
    config: &ServeConfig,
    env: &BoundsEnv,
    obs: &Obs,
    mut tele: Option<&mut Telemetry>,
) -> ServeReport {
    let mut gate = AdmissionGate::new(env.clone());
    if let Some(split) = config.asym_split {
        gate = gate.with_asym_split(split);
    }
    let mut table = PartitionTable::new(config.capacity);
    let mut batcher = DescriptorBatcher::new(catalogue);

    let mut queue: VecDeque<Pending> = VecDeque::new();
    // Backoff parking: keyed (eligible epoch, id) so promotion order is
    // deterministic and oldest-first.
    let mut parked: BTreeMap<(u64, u64), Pending> = BTreeMap::new();

    let mut completed: Vec<CompletedSession> = Vec::new();
    let mut rejected: Vec<RejectedSession> = Vec::new();
    let mut shed: Vec<ShedSession> = Vec::new();
    let mut epochs: Vec<EpochStats> = Vec::new();
    let mut log: Vec<DecisionEvent> = Vec::new();
    let mut breakdown = Breakdown::new();
    // Streaming mode trades the per-session ledger for the bounded
    // registry; everything else (epochs, clock, fingerprintable
    // counters) is identical either way.
    let retain = tele.as_ref().is_none_or(|t| !t.stream_only());

    let sessions = &traffic.sessions;
    let mut arr_idx = 0usize;
    let mut clock_s = 0.0f64;
    let mut peak_queue = 0usize;

    let mut epoch = 0u64;
    loop {
        if arr_idx >= sessions.len() && queue.is_empty() && parked.is_empty() {
            break;
        }
        if epoch >= config.max_epochs {
            // Drain deadline: everything unserved is shed, so every
            // generated session still gets exactly one disposition.
            for p in queue
                .drain(..)
                .chain(std::mem::take(&mut parked).into_values())
            {
                let ev = DecisionEvent::ShedDrain {
                    epoch,
                    id: p.req.id,
                };
                if let Some(t) = tele.as_deref_mut() {
                    t.on_decision(&ev, &p.req.class, clock_s);
                }
                if retain {
                    log.push(ev);
                    shed.push(ShedSession {
                        id: p.req.id,
                        class: p.req.class,
                        epoch,
                        reason: ShedReason::DrainDeadline,
                    });
                }
            }
            while arr_idx < sessions.len() {
                let req = &sessions[arr_idx];
                let ev = DecisionEvent::ShedDrain { epoch, id: req.id };
                if let Some(t) = tele.as_deref_mut() {
                    t.on_decision(&ev, &req.class, clock_s);
                }
                if retain {
                    log.push(ev);
                    shed.push(ShedSession {
                        id: req.id,
                        class: req.class.clone(),
                        epoch,
                        reason: ShedReason::DrainDeadline,
                    });
                }
                arr_idx += 1;
            }
            break;
        }

        let mut st = EpochStats {
            epoch,
            arrivals: 0,
            admitted: 0,
            rejected: 0,
            shed: 0,
            queue_depth_end: 0,
            replay_elapsed_s: 0.0,
            clock_s,
        };

        // (1a) Promote due retries to the queue front, oldest first.
        // Promotion respects the queue bound: retries past it stay
        // parked (delayed one epoch, never dropped), so the queue
        // never exceeds `queue_cap` — the hard bound the shed policy
        // promises.
        let room = config.queue_cap.saturating_sub(queue.len());
        let due: Vec<(u64, u64)> = parked
            .range(..=(epoch, u64::MAX))
            .map(|(k, _)| *k)
            .take(room)
            .collect();
        for key in due.into_iter().rev() {
            let p = parked.remove(&key).expect("key just listed");
            queue.push_front(p);
        }

        // (1b) Fresh arrivals at the back, tail-dropping at capacity.
        while arr_idx < sessions.len() && sessions[arr_idx].arrival_epoch == epoch {
            let req = sessions[arr_idx].clone();
            arr_idx += 1;
            st.arrivals += 1;
            if let Some(t) = tele.as_deref_mut() {
                t.on_arrival(&req, clock_s);
            }
            let class = catalogue
                .get(&req.class)
                .unwrap_or_else(|| panic!("unknown traffic class {}", req.class));
            if class.slot > config.capacity {
                let ev = DecisionEvent::ShedSlot { epoch, id: req.id };
                if let Some(t) = tele.as_deref_mut() {
                    t.on_decision(&ev, &req.class, clock_s);
                }
                if retain {
                    log.push(ev);
                    shed.push(ShedSession {
                        id: req.id,
                        class: req.class,
                        epoch,
                        reason: ShedReason::Undecidable,
                    });
                }
                st.shed += 1;
                continue;
            }
            if queue.len() >= config.queue_cap {
                let ev = DecisionEvent::ShedQueueFull { epoch, id: req.id };
                if let Some(t) = tele.as_deref_mut() {
                    t.on_decision(&ev, &req.class, clock_s);
                }
                if retain {
                    log.push(ev);
                    shed.push(ShedSession {
                        id: req.id,
                        class: req.class,
                        epoch,
                        reason: ShedReason::QueueFull,
                    });
                }
                st.shed += 1;
                continue;
            }
            queue.push_back(Pending {
                req,
                attempts: 0,
                arrival_clock_s: clock_s,
            });
        }
        peak_queue = peak_queue.max(queue.len());

        // (2) Fill the batch from the queue front, certifying each
        // growth step.
        let mut batch: Vec<Resident> = Vec::new();
        let mut batch_meta: Vec<Pending> = Vec::new();
        let mut admitted_cert = None;
        while batch.len() < config.max_resident && !queue.is_empty() {
            let mut p = queue.pop_front().expect("non-empty queue");
            let class = catalogue.get(&p.req.class).expect("checked on arrival");
            let Some(partition) = table.alloc(class.slot) else {
                // Head-of-line waits for space; residency is one epoch,
                // so space returns next epoch.
                queue.push_front(p);
                break;
            };
            let candidate = Resident::place(
                p.req.clone(),
                &class.body,
                partition,
                batch.len() as u64 * config.stagger_slots,
            );
            let mut trial = batch.clone();
            trial.push(candidate.clone());
            let (set, cert) = gate.certify(&trial);
            p.attempts += 1;
            match cert.verdict {
                Verdict::Admit => {
                    let ev = DecisionEvent::Admit {
                        epoch,
                        id: p.req.id,
                        class: p.req.class.clone(),
                        part_start: partition.start().get(),
                        part_len: partition.len().get(),
                        attempt: p.attempts,
                    };
                    if let Some(t) = tele.as_deref_mut() {
                        t.on_decision(&ev, &p.req.class, clock_s);
                    }
                    if retain {
                        log.push(ev);
                    }
                    batch.push(candidate);
                    batch_meta.push(p);
                    admitted_cert = Some((set, cert));
                }
                Verdict::Reject => {
                    table.free(partition);
                    if p.attempts > config.max_retries {
                        let codes = cert.codes();
                        debug_assert!(!codes.is_empty(), "REJECT always carries its proof");
                        let ev = DecisionEvent::Reject {
                            epoch,
                            id: p.req.id,
                            codes: codes.clone(),
                            attempts: p.attempts,
                        };
                        if let Some(t) = tele.as_deref_mut() {
                            t.on_decision(&ev, &p.req.class, clock_s);
                        }
                        if retain {
                            log.push(ev);
                            rejected.push(RejectedSession {
                                id: p.req.id,
                                class: p.req.class.clone(),
                                epoch,
                                codes,
                                retries: p.attempts,
                            });
                        }
                        st.rejected += 1;
                    } else {
                        let eligible = epoch + 1 + (config.backoff_base << (p.attempts - 1));
                        let ev = DecisionEvent::Backoff {
                            epoch,
                            id: p.req.id,
                            until_epoch: eligible,
                            attempt: p.attempts,
                        };
                        if let Some(t) = tele.as_deref_mut() {
                            t.on_decision(&ev, &p.req.class, clock_s);
                        }
                        if retain {
                            log.push(ev);
                        }
                        parked.insert((eligible, p.req.id), p);
                    }
                }
                Verdict::Unknown => {
                    table.free(partition);
                    let terminal = config.unknown_policy == UnknownPolicy::Shed
                        || p.attempts > config.max_retries;
                    if terminal {
                        let reason = if config.unknown_policy == UnknownPolicy::Shed {
                            ShedReason::Undecidable
                        } else {
                            ShedReason::RetriesExhausted
                        };
                        let ev = DecisionEvent::ShedPolicy {
                            epoch,
                            id: p.req.id,
                            reason,
                            attempts: p.attempts,
                        };
                        if let Some(t) = tele.as_deref_mut() {
                            t.on_decision(&ev, &p.req.class, clock_s);
                        }
                        if retain {
                            log.push(ev);
                            shed.push(ShedSession {
                                id: p.req.id,
                                class: p.req.class.clone(),
                                epoch,
                                reason,
                            });
                        }
                        st.shed += 1;
                    } else {
                        let eligible = epoch + 1 + (config.backoff_base << (p.attempts - 1));
                        let ev = DecisionEvent::UnknownRetry {
                            epoch,
                            id: p.req.id,
                            retry_epoch: eligible,
                            attempt: p.attempts,
                        };
                        if let Some(t) = tele.as_deref_mut() {
                            t.on_decision(&ev, &p.req.class, clock_s);
                        }
                        if retain {
                            log.push(ev);
                        }
                        parked.insert((eligible, p.req.id), p);
                    }
                }
            }
        }

        // (3) Plan descriptors and replay the admitted batch.
        if let Some((set, cert)) = admitted_cert {
            for r in &batch {
                let class = catalogue.get(&r.request.class).expect("admitted class");
                batcher.plan_class(&class.body);
            }
            let cfg = resolved_set_config(&set, gate.env());
            let streams = tenant_streams(&set);
            let opts = SimOptions {
                jobs: config.jobs,
                ..SimOptions::default()
            };
            let run = simulate_tenants(&cfg, &streams, &opts).expect("certified batches replay");
            obs.span(
                Phase::Verify,
                &format!("admit-e{epoch}"),
                Seconds::ZERO,
                Joules::ZERO,
            );
            obs.span(
                Phase::Compute,
                &format!("replay-e{epoch}"),
                run.stats.elapsed,
                run.stats.energy,
            );
            breakdown.add_phase(Phase::Compute, run.stats.elapsed, run.stats.energy);
            if let Some(t) = tele.as_deref_mut() {
                t.on_replay(run.stats.elapsed.get(), run.stats.energy.get());
            }
            for (i, (r, p)) in batch.iter().zip(&batch_meta).enumerate() {
                let t = &run.tenants[i];
                let tb = &cert.bounds.tenants[i];
                let done = CompletedSession {
                    id: r.request.id,
                    class: r.request.class.clone(),
                    admitted_epoch: epoch,
                    queue_delay_s: clock_s - p.arrival_clock_s,
                    service_s: t.elapsed.get(),
                    bytes: t.bytes_read.get() + t.bytes_written.get(),
                    energy_j: t.energy.get(),
                    partition: r.partition,
                    certified_elapsed_lo: tb.elapsed.lo,
                    certified_elapsed_hi: tb.elapsed.hi,
                    retries: p.attempts - 1,
                };
                if let Some(tl) = tele.as_deref_mut() {
                    // The epoch's service spans share the pre-advance
                    // clock, so one batch's spans nest in the trace.
                    tl.on_completion(clock_s, &done, tb, t.first_elapsed.get());
                }
                if retain {
                    completed.push(done);
                }
                st.admitted += 1;
            }
            st.replay_elapsed_s = run.stats.elapsed.get();
            clock_s += run.stats.elapsed.get();
            // (4) Residency is one epoch: return every slot.
            for r in &batch {
                table.free(r.partition);
            }
        }

        st.queue_depth_end = queue.len();
        st.clock_s = clock_s;
        if let Some(t) = tele.as_deref_mut() {
            t.on_epoch_end(&st);
        }
        epochs.push(st);
        epoch += 1;
    }

    if let Some(t) = tele {
        batcher.export_metrics(t.registry_mut());
    }

    ServeReport {
        completed,
        rejected,
        shed,
        epochs,
        decision_log: log,
        modeled_s: clock_s,
        breakdown,
        peak_queue_depth: peak_queue,
        plans_planned: batcher.planned(),
        plan_cache_hits: batcher.cache_hits(),
        plan_cache_len: batcher.cached_plans(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, TrafficSpec};

    fn small_spec(cat: &Catalogue, seed: u64) -> TrafficSpec {
        let mut spec = TrafficSpec::poisson(cat, seed, 6, 2.0);
        // Small classes keep the unit tests quick; the big scales are
        // exercised by the bench and the soak test. A fat impossible
        // tier makes a proved rejection all but certain per stream.
        spec.classes.retain(|c| {
            matches!(
                c.class.as_str(),
                "stap-tiny" | "sar-chain-256" | "sar-loop-256"
            )
        });
        spec.p_impossible = 0.3;
        spec
    }

    #[test]
    fn serve_disposes_every_session_and_reconciles() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let traffic = generate(&cat, &small_spec(&cat, 5));
        assert!(!traffic.sessions.is_empty());
        let report = serve(
            &cat,
            &traffic,
            &ServeConfig::default(),
            &BoundsEnv::default(),
        );
        assert_eq!(report.total_sessions(), traffic.sessions.len());
        report
            .check_conservation(&traffic, &cat)
            .expect("conservation holds");
        assert!((report.admission_soundness() - 1.0).abs() < f64::EPSILON);
        assert!(!report.completed.is_empty(), "generous sessions complete");
        assert!(!report.rejected.is_empty(), "impossible budgets reject");
        for r in &report.rejected {
            assert!(!r.codes.is_empty(), "s{}: rejection without a proof", r.id);
        }
        // Breakdown reconciles with the modeled clock exactly.
        assert_eq!(
            report.breakdown_compute_s().to_bits(),
            report.modeled_s.to_bits()
        );
        // Clock is monotone across epochs.
        for w in report.epochs.windows(2) {
            assert!(w[1].clock_s >= w[0].clock_s);
        }
    }

    #[test]
    fn shed_policy_bounds_the_queue() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let mut spec = small_spec(&cat, 9);
        spec.mix = crate::traffic::ArrivalMix::Poisson {
            mean_per_epoch: 12.0,
        };
        let traffic = generate(&cat, &spec);
        let config = ServeConfig {
            queue_cap: 4,
            max_resident: 2,
            ..ServeConfig::default()
        };
        let report = serve(&cat, &traffic, &config, &BoundsEnv::default());
        assert!(report.peak_queue_depth <= 4);
        assert!(
            report
                .shed
                .iter()
                .any(|s| s.reason == ShedReason::QueueFull),
            "overload must tail-drop"
        );
        report
            .check_conservation(&traffic, &cat)
            .expect("conservation holds under shed");
    }

    #[test]
    fn drain_deadline_sheds_leftovers_with_conservation() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let traffic = generate(&cat, &small_spec(&cat, 3));
        let config = ServeConfig {
            max_epochs: 2,
            ..ServeConfig::default()
        };
        let report = serve(&cat, &traffic, &config, &BoundsEnv::default());
        assert!(report
            .shed
            .iter()
            .any(|s| s.reason == ShedReason::DrainDeadline));
        report
            .check_conservation(&traffic, &cat)
            .expect("deadline preserves conservation");
    }
}
