//! Session requests, their terminal dispositions, and the class
//! catalogue the traffic generator draws from.
//!
//! A *class* is one of the evaluation pipelines
//! ([`mealib_workloads::sessions::pipeline_sessions`]) expressed as a
//! canonical analysis session; a *session request* is one arriving
//! instance of a class with a tenant-visible time budget. The
//! scheduler rebases the class's canonical body into whatever
//! partition slot the candidate is offered
//! ([`rebase_session`](mealib_workloads::sessions::rebase_session)),
//! so the catalogue caches per-class geometry once: the byte span a
//! slot must cover and the exact trace bytes the class emits (the
//! conservation tests reconcile scheduler output against the latter).

use std::collections::BTreeMap;

use mealib_types::{AddrRange, ErrorCode};
use mealib_verify::dataflow::parse_session;
use mealib_verify::interference::compose;
use mealib_verify::BoundsEnv;
use mealib_workloads::sessions::{pipeline_sessions, session_span};

/// Smallest partition slot ever offered: keeps a generous guard band
/// between tenants regardless of session size (same convention as the
/// `tenant_mix` harness).
pub const MIN_SLOT: u64 = 1 << 22;

/// One class of the serving catalogue: a canonical session body plus
/// the geometry the scheduler needs to place and account for it.
#[derive(Debug, Clone)]
pub struct SessionClass {
    /// Class name (the pipeline session's name).
    pub name: String,
    /// Canonical session body (buffers laid out from the exporter's
    /// small base).
    pub body: String,
    /// Power-of-two slot size a partition must provide.
    pub slot: u64,
    /// Exact trace bytes one instance moves (read + write, over
    /// declared extents).
    pub trace_bytes: u64,
    /// Certified solo elapsed interval `[lo, hi]` in seconds: the
    /// class run alone in its slot under the default environment. The
    /// traffic generator prices budgets off these endpoints.
    pub solo_elapsed: (f64, f64),
}

/// The class catalogue: every pipeline session, keyed by name, with
/// cached geometry and solo bounds.
#[derive(Debug, Clone)]
pub struct Catalogue {
    classes: BTreeMap<String, SessionClass>,
}

impl Catalogue {
    /// Builds the catalogue from the evaluation pipelines under `env`.
    ///
    /// # Panics
    ///
    /// Panics if a pipeline session fails to parse or certify — the
    /// exporters and the environment presets are both in-tree, so
    /// that is a bug, not an input condition.
    pub fn standard(env: &BoundsEnv) -> Self {
        let mut classes = BTreeMap::new();
        for (name, body) in pipeline_sessions() {
            let slot = session_span(&body).next_power_of_two().max(MIN_SLOT);
            // Solo bounds: the class as a single-tenant set in a slot
            // at base 0 (the canonical layout already fits it).
            let manifest = format!("TENANT solo\nPARTITION 0x0 0x{slot:x}\n{body}");
            let set = mealib_verify::interference::parse_session_set(&manifest)
                .expect("catalogue sessions parse");
            let bounds = compose(&set, env).expect("preset env validates");
            let t = &bounds.tenants[0];
            let session = parse_session(&body).expect("catalogue sessions parse");
            let e = mealib_verify::bounds::elaborate(&session);
            let trace_bytes = e.trace.total_bytes();
            classes.insert(
                name.clone(),
                SessionClass {
                    name,
                    body,
                    slot,
                    trace_bytes,
                    solo_elapsed: (t.elapsed.lo, t.elapsed.hi),
                },
            );
        }
        Self { classes }
    }

    /// The class named `name`.
    pub fn get(&self, name: &str) -> Option<&SessionClass> {
        self.classes.get(name)
    }

    /// All classes in name order.
    pub fn classes(&self) -> impl Iterator<Item = &SessionClass> {
        self.classes.values()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` when the catalogue is empty (never for
    /// [`Catalogue::standard`]).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// One arriving session: an instance of a class with a declared
/// per-tenant time budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// Unique id, assigned by the traffic generator in arrival order.
    pub id: u64,
    /// Catalogue class this session runs.
    pub class: String,
    /// Scheduling epoch the session arrives in.
    pub arrival_epoch: u64,
    /// Declared per-tenant time budget in seconds (`None` = best
    /// effort; always admitted-if-isolated, never latency-certified).
    pub time_budget_s: Option<f64>,
}

/// Why a session was shed instead of completed or rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The wait queue was at capacity when the session arrived
    /// (tail-drop: the *incoming* session is shed, residents keep
    /// their place).
    QueueFull,
    /// The session exhausted its retry budget without the certifier
    /// ever proving a violation (UNKNOWN verdicts or no partition
    /// space under the retry policy).
    RetriesExhausted,
    /// The configured [`UnknownPolicy`](crate::UnknownPolicy) sheds
    /// undecidable candidates immediately, or the session can never be
    /// placed at all (its slot exceeds the partition table).
    Undecidable,
    /// The run hit its drain deadline (`max_epochs`) with the session
    /// still queued.
    DrainDeadline,
}

impl ShedReason {
    /// Stable lowercase label for logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::RetriesExhausted => "retries_exhausted",
            ShedReason::Undecidable => "undecidable",
            ShedReason::DrainDeadline => "drain_deadline",
        }
    }
}

/// A session that ran to completion, with its exact attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedSession {
    /// The request's id.
    pub id: u64,
    /// The request's class.
    pub class: String,
    /// Epoch the session was admitted (and ran) in.
    pub admitted_epoch: u64,
    /// Modeled queueing delay: clock at admission minus clock at
    /// arrival.
    pub queue_delay_s: f64,
    /// Modeled service time: the tenant's attributed completion in its
    /// epoch replay.
    pub service_s: f64,
    /// Bytes the tenant's own requests moved (exact, from the tagged
    /// engine).
    pub bytes: u64,
    /// DRAM energy attributed to the tenant, in joules.
    pub energy_j: f64,
    /// The partition slot the session ran in.
    pub partition: AddrRange,
    /// The certified elapsed floor the admission proved
    /// (`certified_elapsed_lo <= service_s` always — the telemetry's
    /// certified-bounds monitor checks both ends of the interval).
    pub certified_elapsed_lo: f64,
    /// The certified elapsed ceiling the admission proved
    /// (`service_s <= certified_elapsed_hi` always).
    pub certified_elapsed_hi: f64,
    /// Admission attempts before this one succeeded.
    pub retries: u32,
}

impl CompletedSession {
    /// End-to-end modeled latency: queueing delay plus service.
    pub fn latency_s(&self) -> f64 {
        self.queue_delay_s + self.service_s
    }

    /// Attributed bandwidth over the service interval, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.service_s > 0.0 {
            self.bytes as f64 / self.service_s
        } else {
            0.0
        }
    }
}

/// A session the certifier *proved* could not be admitted.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedSession {
    /// The request's id.
    pub id: u64,
    /// The request's class.
    pub class: String,
    /// Epoch of the final (terminal) rejection.
    pub epoch: u64,
    /// The MEA3xx codes `certify_set` proved on the last attempt —
    /// never empty: a REJECT verdict always carries its proof.
    pub codes: Vec<ErrorCode>,
    /// Admission attempts made (including the terminal one).
    pub retries: u32,
}

/// A session dropped by policy rather than proof.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedSession {
    /// The request's id.
    pub id: u64,
    /// The request's class.
    pub class: String,
    /// Epoch the shed happened in.
    pub epoch: u64,
    /// Which policy shed it.
    pub reason: ShedReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_every_pipeline_with_sane_geometry() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        assert_eq!(cat.len(), pipeline_sessions().len());
        assert!(!cat.is_empty());
        for class in cat.classes() {
            assert!(class.slot.is_power_of_two());
            assert!(class.slot >= MIN_SLOT);
            assert!(class.slot >= session_span(&class.body));
            assert!(class.trace_bytes > 0, "{}", class.name);
            let (lo, hi) = class.solo_elapsed;
            assert!(0.0 < lo && lo <= hi, "{}: [{lo}, {hi}]", class.name);
        }
        assert!(cat.get("stap-tiny").is_some());
        assert!(cat.get("no-such-class").is_none());
    }

    #[test]
    fn completed_session_derives_latency_and_bandwidth() {
        let done = CompletedSession {
            id: 1,
            class: "stap-tiny".into(),
            admitted_epoch: 3,
            queue_delay_s: 0.5,
            service_s: 0.25,
            bytes: 1 << 20,
            energy_j: 0.1,
            partition: AddrRange::new(
                mealib_types::PhysAddr::new(0),
                mealib_types::Bytes::new(MIN_SLOT),
            ),
            certified_elapsed_lo: 0.1,
            certified_elapsed_hi: 0.3,
            retries: 0,
        };
        assert!((done.latency_s() - 0.75).abs() < 1e-12);
        assert!((done.bandwidth() - (1u64 << 20) as f64 / 0.25).abs() < 1e-6);
    }

    #[test]
    fn shed_reason_labels_are_stable() {
        assert_eq!(ShedReason::QueueFull.label(), "queue_full");
        assert_eq!(ShedReason::DrainDeadline.label(), "drain_deadline");
    }
}
