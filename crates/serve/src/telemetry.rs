//! Live serving telemetry: streaming metric sketches, per-session
//! lifecycle traces, and the certified-bounds SLO engine.
//!
//! [`Telemetry`] rides the epoch loop through a handful of hooks the
//! scheduler calls per event (one `Option` check each on the hot
//! path). It maintains:
//!
//! * a [`MetricsRegistry`] of labeled counters, gauges, and
//!   bounded-memory quantile sketches — per-class service times live
//!   in `O(classes × buckets)` regardless of how many sessions flow
//!   through (the soak test pins this down);
//! * a per-session **lifecycle trace**: one causal chain per session
//!   id from arrival through every admission attempt (REJECT markers
//!   carry the proved MEA3xx codes in their label), backoff/park,
//!   placement, replay service span, and completion or shed — one
//!   Perfetto track per tenant class, exported through the Chrome
//!   trace-event writer;
//! * an [`SloEngine`] evaluating per-class objectives over a sliding
//!   window of epochs in **modeled time**, plus the certified-bounds
//!   conformance monitor: every completion's measured service time,
//!   bytes, and energy are checked against the MEA3xx interval its
//!   admission proved, and an escape raises the distinct
//!   [`AlertKind::BoundsEscape`] class — measurement leaving proof is
//!   an anomaly of a different kind than an SLO burn.
//!
//! Everything is deterministic: the only clock is the scheduler's
//! modeled clock, so fingerprinted output (snapshots, exposition,
//! traces, alerts) is bit-identical across repeats and worker counts.
//!
//! Reconciliation is exact, not approximate: counters are `u64`
//! event counts, and the accumulated replay clock/energy repeat the
//! scheduler's own addition order, so [`TelemetryReport::reconcile`]
//! compares them to [`ServeReport`] totals via `to_bits`, not
//! epsilons.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mealib_obs::json::{self, Object};
use mealib_obs::profile::{validate_chrome_trace, IntervalEvent, Profile};
use mealib_obs::{
    Alert, AlertKind, MetricsRegistry, Objective, ObjectiveKind, Phase, SloEngine, WindowObs,
};
use mealib_types::Seconds;
use mealib_verify::interference::TenantBounds;

use crate::decision::DecisionEvent;
use crate::metrics::{EpochStats, ServeReport};
use crate::session::{Catalogue, CompletedSession, SessionRequest};

/// Telemetry knobs. [`TelemetryConfig::standard`] derives safe
/// default objectives from the catalogue's certified solo bounds.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sliding SLO window, in epochs.
    pub window_epochs: usize,
    /// Relative accuracy of the quantile sketches (1% default).
    pub sketch_alpha: f64,
    /// Declared objectives: `(class, objective)` pairs.
    pub slos: Vec<(String, Objective)>,
    /// When `true`, the scheduler drops its per-session vectors and
    /// decision log — the streaming registry *is* the record, and run
    /// memory stays `O(classes × buckets + epochs)`.
    pub stream_only: bool,
    /// Emit the per-session lifecycle trace (disable for soaks:
    /// markers grow `O(sessions)` by design).
    pub trace: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            window_epochs: 8,
            sketch_alpha: 0.01,
            slos: Vec::new(),
            stream_only: false,
            trace: true,
        }
    }
}

impl TelemetryConfig {
    /// Default objectives for every catalogue class: a p99 latency
    /// ceiling at a generous multiple of the certified solo elapsed
    /// ceiling (contention stretches service, but the admission gate
    /// bounds how far), an admission-rate floor of 0.9 with a wide
    /// budget (alerts mean *sustained* overload shedding, not one
    /// tail-drop), and a nominal delivered-bandwidth floor.
    pub fn standard(catalogue: &Catalogue) -> Self {
        let mut slos = Vec::new();
        for class in catalogue.classes() {
            let (_, solo_hi) = class.solo_elapsed;
            slos.push((
                class.name.clone(),
                Objective {
                    kind: ObjectiveKind::LatencyP99,
                    threshold: solo_hi * 256.0,
                    error_budget: 0.05,
                },
            ));
            slos.push((
                class.name.clone(),
                Objective {
                    kind: ObjectiveKind::AdmissionRate,
                    threshold: 0.9,
                    error_budget: 0.5,
                },
            ));
            slos.push((
                class.name.clone(),
                Objective {
                    kind: ObjectiveKind::BandwidthFloor,
                    threshold: 1.0,
                    error_budget: 0.5,
                },
            ));
        }
        Self {
            slos,
            ..Self::default()
        }
    }
}

/// One class's per-epoch aggregate, summed over the sliding window
/// into a [`WindowObs`].
#[derive(Debug, Clone, Copy, Default)]
struct EpochAgg {
    arrivals: u64,
    shed: u64,
    completions: u64,
    latency_violations: u64,
    bytes: u64,
    service_s: f64,
}

/// The live telemetry pipeline the scheduler feeds.
#[derive(Debug)]
pub struct Telemetry {
    window_epochs: usize,
    stream_only: bool,
    trace: bool,
    registry: MetricsRegistry,
    slo: SloEngine,
    latency_thresholds: BTreeMap<String, f64>,
    profile: Profile,
    snapshots: Vec<String>,
    /// Counter values already flushed into a snapshot, per flat key:
    /// the next snapshot carries only the delta.
    flushed: BTreeMap<String, u64>,
    classes_seen: BTreeSet<String>,
    pending: BTreeMap<String, EpochAgg>,
    windows: BTreeMap<String, VecDeque<EpochAgg>>,
    /// Modeled clock at the end of the last `window_epochs + 1`
    /// epochs (front = just before the current window opened).
    clock_marks: VecDeque<f64>,
    /// Replay clock/energy re-accumulated in the scheduler's own
    /// addition order, so the totals reconcile with
    /// `ServeReport::modeled_s` and the breakdown bit for bit.
    replay_total_s: f64,
    energy_total_j: f64,
    bounds_checked: u64,
    bounds_failed: u64,
    last_epoch: u64,
}

impl Telemetry {
    /// Builds the pipeline and declares every configured objective.
    pub fn new(config: &TelemetryConfig) -> Self {
        let mut slo = SloEngine::new();
        for (class, objective) in &config.slos {
            slo.declare(class, *objective);
        }
        let latency_thresholds = slo
            .subjects()
            .map(str::to_string)
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|s| slo.latency_threshold(&s).map(|t| (s, t)))
            .collect();
        let mut registry = MetricsRegistry::with_alpha(config.sketch_alpha);
        describe_metrics(&mut registry);
        Self {
            window_epochs: config.window_epochs.max(1),
            stream_only: config.stream_only,
            trace: config.trace,
            registry,
            slo,
            latency_thresholds,
            profile: Profile::new(),
            snapshots: Vec::new(),
            flushed: BTreeMap::new(),
            classes_seen: BTreeSet::new(),
            pending: BTreeMap::new(),
            windows: BTreeMap::new(),
            clock_marks: VecDeque::new(),
            replay_total_s: 0.0,
            energy_total_j: 0.0,
            bounds_checked: 0,
            bounds_failed: 0,
            last_epoch: 0,
        }
    }

    /// `true` when the scheduler should *not* retain per-session
    /// vectors (streaming mode).
    pub fn stream_only(&self) -> bool {
        self.stream_only
    }

    /// Mutable registry access (the scheduler exports runtime/plan
    /// counters through this at the end of the run).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    fn marker(&mut self, class: &str, phase: Phase, label: String, clock_s: f64) {
        if !self.trace {
            return;
        }
        // `Profile::interval` drops zero-duration spans; lifecycle
        // markers are *meant* to be instants, so push directly.
        self.profile.intervals.push(IntervalEvent {
            track: format!("{class}/lifecycle"),
            phase,
            label,
            start: Seconds::new(clock_s),
            end: Seconds::new(clock_s),
        });
    }

    /// A fresh session arrived (before any shed/queue decision).
    pub fn on_arrival(&mut self, req: &SessionRequest, clock_s: f64) {
        self.classes_seen.insert(req.class.clone());
        self.registry
            .inc("serve_arrivals_total", &[("class", &req.class)]);
        self.pending.entry(req.class.clone()).or_default().arrivals += 1;
        self.marker(
            &req.class,
            Phase::Plan,
            format!("arrive s{}", req.id),
            clock_s,
        );
    }

    /// One scheduler decision (admit / reject / backoff / shed ...).
    pub fn on_decision(&mut self, ev: &DecisionEvent, class: &str, clock_s: f64) {
        self.classes_seen.insert(class.to_string());
        self.last_epoch = self.last_epoch.max(ev.epoch());
        match ev {
            DecisionEvent::Admit { .. } => {
                self.registry
                    .inc("serve_admitted_total", &[("class", class)]);
            }
            DecisionEvent::Reject { .. } => {
                // Proved rejections are client errors — they count
                // nowhere in the availability window (4xx exclusion).
                self.registry
                    .inc("serve_rejected_total", &[("class", class)]);
            }
            DecisionEvent::Backoff { .. } => {
                self.registry
                    .inc("serve_backoff_total", &[("class", class)]);
            }
            DecisionEvent::UnknownRetry { .. } => {
                self.registry
                    .inc("serve_unknown_retry_total", &[("class", class)]);
            }
            DecisionEvent::ShedPolicy { reason, .. } => {
                self.registry.inc(
                    "serve_shed_total",
                    &[("class", class), ("reason", reason.label())],
                );
                self.pending.entry(class.to_string()).or_default().shed += 1;
            }
            DecisionEvent::ShedSlot { .. } => {
                self.registry.inc(
                    "serve_shed_total",
                    &[("class", class), ("reason", "undecidable")],
                );
                self.pending.entry(class.to_string()).or_default().shed += 1;
            }
            DecisionEvent::ShedQueueFull { .. } => {
                self.registry.inc(
                    "serve_shed_total",
                    &[("class", class), ("reason", "queue_full")],
                );
                self.pending.entry(class.to_string()).or_default().shed += 1;
            }
            DecisionEvent::ShedDrain { .. } => {
                self.registry.inc(
                    "serve_shed_total",
                    &[("class", class), ("reason", "drain_deadline")],
                );
                self.pending.entry(class.to_string()).or_default().shed += 1;
            }
        }
        // The marker label *is* the legacy decision line, so a REJECT
        // span carries the proved MEA3xx codes verbatim.
        self.marker(class, Phase::Verify, ev.to_string(), clock_s);
    }

    /// The epoch's merged replay finished: re-accumulate the modeled
    /// clock and energy in the scheduler's own order.
    pub fn on_replay(&mut self, elapsed_s: f64, energy_j: f64) {
        self.replay_total_s += elapsed_s;
        self.energy_total_j += energy_j;
    }

    /// One admitted session completed, with its exact attribution and
    /// the MEA3xx bounds its admission proved. `epoch_clock_s` is the
    /// modeled clock when the epoch's replay *started* (service spans
    /// of one batch share it, so they nest in the trace);
    /// `first_burst_s` is the tenant's time-to-first-burst from the
    /// tagged engine (`0` when the tenant issued no bursts).
    pub fn on_completion(
        &mut self,
        epoch_clock_s: f64,
        done: &CompletedSession,
        certified: &TenantBounds,
        first_burst_s: f64,
    ) {
        let class = done.class.clone();
        self.classes_seen.insert(class.clone());
        self.registry
            .add("serve_bytes_total", &[("class", &class)], done.bytes);
        self.registry.observe(
            "serve_service_seconds",
            &[("class", &class)],
            done.service_s,
        );
        self.registry.observe(
            "serve_queue_delay_seconds",
            &[("class", &class)],
            done.queue_delay_s,
        );
        if first_burst_s > 0.0 {
            self.registry.observe(
                "serve_first_burst_seconds",
                &[("class", &class)],
                first_burst_s,
            );
        }

        let agg = self.pending.entry(class.clone()).or_default();
        agg.completions += 1;
        agg.bytes += done.bytes;
        agg.service_s += done.service_s;
        // Violations are counted exactly, per completion, against the
        // declared threshold — never derived from the sketch.
        if let Some(&threshold) = self.latency_thresholds.get(&class) {
            if done.service_s > threshold {
                agg.latency_violations += 1;
            }
        }

        self.check_certified(done, certified);

        if self.trace {
            self.profile.intervals.push(IntervalEvent {
                track: class.clone(),
                phase: Phase::Compute,
                label: format!("serve s{}", done.id),
                start: Seconds::new(epoch_clock_s),
                end: Seconds::new(epoch_clock_s + done.service_s),
            });
            if first_burst_s > 0.0 {
                self.marker(
                    &class,
                    Phase::Dma,
                    format!("first-burst s{}", done.id),
                    epoch_clock_s + first_burst_s,
                );
            }
            self.marker(
                &class,
                Phase::Drain,
                format!("complete s{}", done.id),
                epoch_clock_s + done.service_s,
            );
        }
    }

    /// The conformance monitor: measured attribution must stay inside
    /// the certified MEA3xx intervals the admission proved. An escape
    /// is a *proved* anomaly and raises [`AlertKind::BoundsEscape`].
    fn check_certified(&mut self, done: &CompletedSession, certified: &TenantBounds) {
        let bytes_lo = certified.bytes_read.lo + certified.bytes_written.lo;
        let bytes_hi = certified.bytes_read.hi + certified.bytes_written.hi;
        let checks = [
            (
                "elapsed",
                done.service_s,
                certified.elapsed.lo,
                certified.elapsed.hi,
            ),
            ("bytes", done.bytes as f64, bytes_lo, bytes_hi),
            (
                "energy",
                done.energy_j,
                certified.energy.lo,
                certified.energy.hi,
            ),
        ];
        for (field, observed, lo, hi) in checks {
            self.bounds_checked += 1;
            if observed < lo || observed > hi {
                self.bounds_failed += 1;
                self.slo.raise(Alert {
                    kind: AlertKind::BoundsEscape,
                    subject: done.class.clone(),
                    objective: field.to_string(),
                    window_index: done.admitted_epoch,
                    observed,
                    threshold: if observed > hi { hi } else { lo },
                    burn_rate: f64::INFINITY,
                    detail: format!(
                        "s{}: measured {field} {observed:e} escaped certified [{:e}, {:e}]",
                        done.id, lo, hi
                    ),
                });
            }
        }
    }

    /// The epoch closed: set gauges, flush the per-epoch snapshot
    /// delta, slide the SLO window, and evaluate every class.
    pub fn on_epoch_end(&mut self, st: &EpochStats) {
        self.last_epoch = self.last_epoch.max(st.epoch);
        self.registry.inc("serve_epochs_total", &[]);
        self.registry
            .set_gauge("serve_queue_depth", &[], st.queue_depth_end as f64);
        self.registry
            .set_gauge("serve_clock_seconds", &[], st.clock_s);
        self.registry
            .set_gauge("serve_replay_seconds_total", &[], self.replay_total_s);
        self.registry
            .set_gauge("serve_energy_joules_total", &[], self.energy_total_j);

        self.flush_snapshot(st.epoch, st.clock_s, st.replay_elapsed_s);

        // Slide the window: every class seen so far advances one
        // epoch (absent classes advance with an empty aggregate, so
        // stale epochs age out on schedule).
        for class in &self.classes_seen {
            let agg = self.pending.remove(class).unwrap_or_default();
            let deque = self.windows.entry(class.clone()).or_default();
            deque.push_back(agg);
            while deque.len() > self.window_epochs {
                deque.pop_front();
            }
        }
        self.pending.clear();
        self.clock_marks.push_back(st.clock_s);
        while self.clock_marks.len() > self.window_epochs + 1 {
            self.clock_marks.pop_front();
        }
        let window_start = if self.clock_marks.len() == self.window_epochs + 1 {
            self.clock_marks.front().copied().unwrap_or(0.0)
        } else {
            0.0
        };
        let classes: Vec<String> = self.windows.keys().cloned().collect();
        for class in classes {
            let deque = &self.windows[&class];
            let mut w = WindowObs {
                window_index: st.epoch,
                duration_s: st.clock_s - window_start,
                ..WindowObs::default()
            };
            for agg in deque {
                w.arrivals += agg.arrivals;
                w.shed += agg.shed;
                w.completions += agg.completions;
                w.latency_violations += agg.latency_violations;
                w.bytes += agg.bytes;
                w.service_s += agg.service_s;
            }
            self.slo.evaluate(&class, &w);
        }
    }

    /// Flushes one JSONL snapshot line carrying this epoch's counter
    /// *deltas* (snapshot sums reconcile exactly with the final
    /// cumulative counters), current gauges, and cumulative sketch
    /// summaries.
    fn flush_snapshot(&mut self, epoch: u64, clock_s: f64, replay_elapsed_s: f64) {
        let mut deltas = Object::new();
        for (key, value) in self.registry.counters() {
            let flat = key.flat();
            let prev = self.flushed.get(&flat).copied().unwrap_or(0);
            if value > prev {
                deltas.int(&flat, value - prev);
                self.flushed.insert(flat, value);
            }
        }
        let mut gauges = Object::new();
        let names = ["serve_queue_depth", "serve_clock_seconds"];
        for name in names {
            if let Some(v) = self.registry.gauge(name, &[]) {
                gauges.num(name, v);
            }
        }
        let mut hists = Object::new();
        for (key, sketch) in self.registry.histograms() {
            hists.raw(&key.flat(), sketch.to_json());
        }
        let mut line = Object::new();
        line.int("epoch", epoch);
        line.num("clock_s", clock_s);
        line.num("replay_elapsed_s", replay_elapsed_s);
        line.int("alerts", self.slo.alerts().len() as u64);
        line.raw("counters", deltas.render());
        line.raw("gauges", gauges.render());
        line.raw("histograms", hists.render());
        self.snapshots.push(line.render());
    }

    /// `true` when some counter moved since the last snapshot
    /// (drain-deadline sheds land after the final epoch line).
    fn dirty(&self) -> bool {
        self.registry
            .counters()
            .any(|(k, v)| v > self.flushed.get(&k.flat()).copied().unwrap_or(0))
    }

    /// Closes the run: flushes any trailing counter deltas (the drain
    /// deadline sheds after the last epoch snapshot) and freezes the
    /// pipeline into a [`TelemetryReport`].
    pub fn finish(mut self, final_clock_s: f64, peak_queue_depth: usize) -> TelemetryReport {
        self.registry
            .set_gauge("serve_clock_seconds", &[], final_clock_s);
        self.registry
            .set_gauge("serve_peak_queue_depth", &[], peak_queue_depth as f64);
        self.registry
            .set_gauge("serve_replay_seconds_total", &[], self.replay_total_s);
        self.registry
            .set_gauge("serve_energy_joules_total", &[], self.energy_total_j);
        if self.dirty() {
            let epoch = self.last_epoch;
            self.flush_snapshot(epoch, final_clock_s, 0.0);
        }
        TelemetryReport {
            registry: self.registry,
            snapshots: self.snapshots,
            alerts: self.slo.alerts().to_vec(),
            slo_evaluations: self.slo.evaluations(),
            slo_conformance: self.slo.conformance(),
            bounds_checks: self.bounds_checked,
            bounds_failures: self.bounds_failed,
            profile: self.profile,
            replay_total_s: self.replay_total_s,
            energy_total_j: self.energy_total_j,
            stream_only: self.stream_only,
        }
    }
}

fn describe_metrics(reg: &mut MetricsRegistry) {
    reg.describe("serve_arrivals_total", "Fresh session arrivals");
    reg.describe(
        "serve_admitted_total",
        "Sessions admitted by certified proof",
    );
    reg.describe(
        "serve_rejected_total",
        "Sessions the certifier proved inadmissible (client errors)",
    );
    reg.describe("serve_shed_total", "Sessions dropped by policy");
    reg.describe(
        "serve_backoff_total",
        "Non-terminal REJECTs parked with backoff",
    );
    reg.describe(
        "serve_unknown_retry_total",
        "UNKNOWN verdicts parked for retry",
    );
    reg.describe("serve_bytes_total", "Exact bytes completed sessions moved");
    reg.describe("serve_epochs_total", "Scheduling epochs run");
    reg.describe("serve_queue_depth", "Wait-queue depth at epoch end");
    reg.describe("serve_clock_seconds", "Modeled clock");
    reg.describe(
        "serve_replay_seconds_total",
        "Accumulated modeled replay time (== modeled clock)",
    );
    reg.describe(
        "serve_energy_joules_total",
        "Accumulated modeled DRAM energy",
    );
    reg.describe("serve_peak_queue_depth", "Deepest the wait queue ever got");
    reg.describe("serve_service_seconds", "Per-class modeled service time");
    reg.describe(
        "serve_queue_delay_seconds",
        "Per-class modeled queueing delay",
    );
    reg.describe(
        "serve_first_burst_seconds",
        "Per-class time to first DRAM burst completion",
    );
}

/// The frozen output of one telemetered run.
#[derive(Debug)]
pub struct TelemetryReport {
    /// Final cumulative registry.
    pub registry: MetricsRegistry,
    /// Per-epoch JSONL snapshot lines, in epoch order.
    pub snapshots: Vec<String>,
    /// Every alert raised, in raise order.
    pub alerts: Vec<Alert>,
    /// Objective-window evaluations performed.
    pub slo_evaluations: u64,
    /// Fraction of evaluations that did not burn their budget.
    pub slo_conformance: f64,
    /// Certified-interval checks performed (3 per completion).
    pub bounds_checks: u64,
    /// Checks where measurement escaped proof.
    pub bounds_failures: u64,
    /// The lifecycle trace (one track per class plus markers).
    pub profile: Profile,
    /// Replay time re-accumulated in scheduler order (bit-equal to
    /// `ServeReport::modeled_s`).
    pub replay_total_s: f64,
    /// Energy re-accumulated in scheduler order.
    pub energy_total_j: f64,
    /// Whether the run streamed (per-session vectors dropped).
    pub stream_only: bool,
}

impl TelemetryReport {
    /// Fraction of certified-interval checks that held; `1.0` when no
    /// sessions completed.
    pub fn certified_bounds_conformance(&self) -> f64 {
        if self.bounds_checks == 0 {
            1.0
        } else {
            1.0 - self.bounds_failures as f64 / self.bounds_checks as f64
        }
    }

    /// Prometheus text exposition of the final registry.
    pub fn prometheus(&self) -> String {
        self.registry.to_prometheus()
    }

    /// All per-epoch snapshots as one JSONL document.
    pub fn snapshots_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.snapshots {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// All alerts as one JSONL document.
    pub fn alerts_jsonl(&self) -> String {
        let mut out = String::new();
        for a in &self.alerts {
            out.push_str(&a.to_json());
            out.push('\n');
        }
        out
    }

    /// The lifecycle trace as a Chrome trace-event document.
    pub fn chrome_trace(&self) -> String {
        self.profile.to_chrome_trace()
    }

    /// Count of alerts of `kind`.
    pub fn alert_count(&self, kind: AlertKind) -> u64 {
        self.alerts.iter().filter(|a| a.kind == kind).count() as u64
    }

    /// Sketch-derived per-class service percentiles, if the class
    /// completed anything.
    pub fn class_percentiles(&self, class: &str) -> Option<(f64, f64, f64)> {
        self.registry
            .histogram("serve_service_seconds", &[("class", class)])?
            .p50_p95_p99()
    }

    /// Cross-checks the streaming telemetry against the report's
    /// exact per-session ledger:
    ///
    /// * every snapshot parses, and per-key snapshot deltas sum to
    ///   the final cumulative counter exactly;
    /// * disposition counters equal the report's vector lengths, per
    ///   class and overall;
    /// * per-class sketch counts/sums equal the exact completions;
    /// * the re-accumulated replay clock is bit-equal to
    ///   `modeled_s` and the `Compute` breakdown;
    /// * the lifecycle trace round-trips through
    ///   [`validate_chrome_trace`].
    ///
    /// # Errors
    ///
    /// Returns the first violated clause, rendered. Only meaningful
    /// for retained (non-streaming) runs — streaming runs have no
    /// per-session ledger to reconcile against.
    pub fn reconcile(&self, report: &ServeReport) -> Result<(), String> {
        if self.stream_only {
            return Err("stream-only runs retain no ledger to reconcile".into());
        }
        // (1) Snapshot deltas sum exactly to the cumulative counters.
        let mut summed: BTreeMap<String, u64> = BTreeMap::new();
        for (i, line) in self.snapshots.iter().enumerate() {
            let v = json::parse(line).map_err(|e| format!("snapshot {i}: {e}"))?;
            let counters = v
                .get("counters")
                .and_then(|c| c.as_object())
                .ok_or_else(|| format!("snapshot {i}: no counters object"))?;
            for (key, value) in counters {
                let n = value
                    .as_f64()
                    .ok_or_else(|| format!("snapshot {i}: {key} not a number"))?;
                *summed.entry(key.clone()).or_default() += n as u64;
            }
        }
        for (key, value) in self.registry.counters() {
            let flat = key.flat();
            let got = summed.get(&flat).copied().unwrap_or(0);
            if got != value {
                return Err(format!(
                    "{flat}: snapshot deltas sum {got} != counter {value}"
                ));
            }
        }
        for (key, got) in &summed {
            if !self
                .registry
                .counters()
                .any(|(k, v)| &k.flat() == key && v == *got)
            {
                return Err(format!("snapshot key {key} missing from final registry"));
            }
        }
        // (2) Dispositions: counters equal vector lengths per class.
        let count = |name: &str, class: &str| self.registry.counter(name, &[("class", class)]);
        let mut by_class: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
        for c in &report.completed {
            by_class.entry(&c.class).or_default().0 += 1;
        }
        for r in &report.rejected {
            by_class.entry(&r.class).or_default().1 += 1;
        }
        for s in &report.shed {
            by_class.entry(&s.class).or_default().2 += 1;
        }
        for c in &report.completed {
            by_class.entry(&c.class).or_default().3 += c.bytes;
        }
        for (class, (done, rej, shed, bytes)) in by_class {
            if count("serve_admitted_total", class) != done {
                return Err(format!(
                    "{class}: admitted counter {} != completions {done}",
                    count("serve_admitted_total", class)
                ));
            }
            if count("serve_rejected_total", class) != rej {
                return Err(format!(
                    "{class}: rejected counter {} != rejections {rej}",
                    count("serve_rejected_total", class)
                ));
            }
            let shed_counter: u64 = self
                .registry
                .counters()
                .filter(|(k, _)| {
                    k.name == "serve_shed_total"
                        && k.labels.iter().any(|(lk, lv)| lk == "class" && lv == class)
                })
                .map(|(_, v)| v)
                .sum();
            if shed_counter != shed {
                return Err(format!(
                    "{class}: shed counter {shed_counter} != sheds {shed}"
                ));
            }
            if count("serve_bytes_total", class) != bytes {
                return Err(format!(
                    "{class}: bytes counter {} != exact bytes {bytes}",
                    count("serve_bytes_total", class)
                ));
            }
            // (3) Sketch totals equal the exact ledger.
            let service: Vec<f64> = report
                .completed
                .iter()
                .filter(|c| c.class == class)
                .map(|c| c.service_s)
                .collect();
            let sketch = self
                .registry
                .histogram("serve_service_seconds", &[("class", class)])
                .ok_or_else(|| format!("{class}: no service sketch"))?;
            if sketch.count() != service.len() as u64 {
                return Err(format!(
                    "{class}: sketch count {} != completions {}",
                    sketch.count(),
                    service.len()
                ));
            }
            let exact_sum: f64 = service.iter().sum();
            if sketch.sum().to_bits() != exact_sum.to_bits() {
                return Err(format!(
                    "{class}: sketch sum {:e} != exact {exact_sum:e}",
                    sketch.sum()
                ));
            }
        }
        // (4) Modeled time and energy, bit for bit.
        if self.replay_total_s.to_bits() != report.modeled_s.to_bits() {
            return Err(format!(
                "replay total {:e} != modeled clock {:e}",
                self.replay_total_s, report.modeled_s
            ));
        }
        if self.replay_total_s.to_bits() != report.breakdown_compute_s().to_bits() {
            return Err("replay total != Compute breakdown".into());
        }
        // (5) The lifecycle trace round-trips.
        if !self.profile.intervals.is_empty() {
            validate_chrome_trace(&self.chrome_trace())
                .map_err(|e| format!("lifecycle trace: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_verify::BoundsEnv;

    #[test]
    fn standard_config_declares_three_objectives_per_class() {
        let cat = Catalogue::standard(&BoundsEnv::default());
        let cfg = TelemetryConfig::standard(&cat);
        assert_eq!(cfg.slos.len(), 3 * cat.len());
        let tele = Telemetry::new(&cfg);
        assert_eq!(
            tele.latency_thresholds.len(),
            cat.len(),
            "every class carries a latency threshold"
        );
        assert!(!tele.stream_only());
    }

    #[test]
    fn empty_run_is_trivially_conformant() {
        let tele = Telemetry::new(&TelemetryConfig::default());
        let report = tele.finish(0.0, 0);
        assert!((report.slo_conformance - 1.0).abs() < f64::EPSILON);
        assert!((report.certified_bounds_conformance() - 1.0).abs() < f64::EPSILON);
        assert!(report.alerts.is_empty());
        assert_eq!(report.snapshots.len(), 0, "nothing moved, nothing flushed");
    }
}
