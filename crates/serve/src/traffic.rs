//! Seeded synthetic traffic: Poisson and diurnal arrival mixes over
//! the class catalogue.
//!
//! The generator is a pure function of its [`TrafficSpec`]: the same
//! seed produces the same session stream byte for byte, which is what
//! lets the replay harness demand bit-identical scheduler output. Per
//! epoch it draws an arrival count (Knuth Poisson sampling under the
//! epoch's rate), then assigns each arrival a class by seeded
//! weighted choice and a time budget by *budget tier*:
//!
//! * **generous** — `solo_hi * slack`: admissible alone, and still
//!   admissible in a batch whenever the composed ceiling fits;
//! * **impossible** — below the class's certified solo *floor*, so
//!   `certify_set` must prove MEA302 and reject it (exercising the
//!   rejection path with a guaranteed proof);
//! * **best effort** — no budget: admitted whenever isolation holds,
//!   never latency-certified.
//!
//! Emitted-byte accounting rides along: every generated session adds
//! its class's exact trace bytes to [`Traffic::emitted_bytes`], the
//! ledger the conservation invariant reconciles against.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::session::{Catalogue, SessionRequest};

/// How the per-epoch arrival rate evolves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMix {
    /// Stationary Poisson arrivals at `mean_per_epoch`.
    Poisson {
        /// Mean arrivals per epoch.
        mean_per_epoch: f64,
    },
    /// Diurnal modulation: the rate swings between `base` and `peak`
    /// on a cosine with the given period (epochs), peaking mid-period.
    Diurnal {
        /// Off-peak mean arrivals per epoch.
        base: f64,
        /// Peak mean arrivals per epoch.
        peak: f64,
        /// Full day length in epochs.
        period_epochs: u64,
    },
}

impl ArrivalMix {
    /// The mean arrival rate in `epoch`.
    pub fn rate(&self, epoch: u64) -> f64 {
        match *self {
            ArrivalMix::Poisson { mean_per_epoch } => mean_per_epoch,
            ArrivalMix::Diurnal {
                base,
                peak,
                period_epochs,
            } => {
                let phase = (epoch % period_epochs.max(1)) as f64 / period_epochs.max(1) as f64;
                // Trough at phase 0, peak at phase 0.5.
                let swing = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
                base + (peak - base) * swing
            }
        }
    }
}

/// One class's share of the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassShare {
    /// Catalogue class name.
    pub class: String,
    /// Relative weight (any positive number).
    pub weight: f64,
}

/// The full, seeded traffic description.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// RNG seed; the generated stream is a pure function of the spec.
    pub seed: u64,
    /// Epochs to generate arrivals for (the scheduler may run longer
    /// to drain).
    pub epochs: u64,
    /// Arrival-rate shape.
    pub mix: ArrivalMix,
    /// Class weights (must be non-empty, all classes in the
    /// catalogue).
    pub classes: Vec<ClassShare>,
    /// Budget slack multiplier for the generous tier (`>= 1` keeps
    /// the tier honest; the composed ceiling still decides admission).
    pub slack: f64,
    /// Probability an arrival lands in the impossible tier (proved
    /// rejection).
    pub p_impossible: f64,
    /// Probability an arrival is best effort (no declared budget).
    pub p_best_effort: f64,
}

impl TrafficSpec {
    /// A small stationary mix over every catalogue class, equal
    /// weights — the spec the tests and the bench's `--small` mode
    /// start from.
    pub fn poisson(catalogue: &Catalogue, seed: u64, epochs: u64, mean_per_epoch: f64) -> Self {
        Self {
            seed,
            epochs,
            mix: ArrivalMix::Poisson { mean_per_epoch },
            classes: catalogue
                .classes()
                .map(|c| ClassShare {
                    class: c.name.clone(),
                    weight: 1.0,
                })
                .collect(),
            slack: 8.0,
            p_impossible: 0.1,
            p_best_effort: 0.2,
        }
    }
}

/// The generated stream plus its conservation ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct Traffic {
    /// Sessions in arrival order (ids are dense from 0).
    pub sessions: Vec<SessionRequest>,
    /// Exact trace bytes emitted per class (count x class trace
    /// bytes).
    pub emitted_bytes: BTreeMap<String, u64>,
}

/// Knuth's Poisson sampler: exact for the modest rates the serving
/// mixes use, and deterministic under [`SmallRng`].
fn poisson_draw(rng: &mut SmallRng, rate: f64) -> u64 {
    if rate <= 0.0 {
        return 0;
    }
    let limit = (-rate).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Generates the session stream for `spec` over `catalogue`.
///
/// # Panics
///
/// Panics if `spec.classes` is empty or names a class the catalogue
/// does not carry.
pub fn generate(catalogue: &Catalogue, spec: &TrafficSpec) -> Traffic {
    assert!(!spec.classes.is_empty(), "traffic needs at least one class");
    let total_weight: f64 = spec.classes.iter().map(|c| c.weight).sum();
    assert!(total_weight > 0.0, "class weights must sum positive");

    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut sessions = Vec::new();
    let mut emitted: BTreeMap<String, u64> = BTreeMap::new();
    let mut id = 0u64;
    for epoch in 0..spec.epochs {
        let n = poisson_draw(&mut rng, spec.mix.rate(epoch));
        for _ in 0..n {
            // Weighted class choice.
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut chosen = &spec.classes[0].class;
            for share in &spec.classes {
                pick -= share.weight;
                if pick <= 0.0 {
                    chosen = &share.class;
                    break;
                }
            }
            let class = catalogue
                .get(chosen)
                .unwrap_or_else(|| panic!("unknown traffic class {chosen}"));
            let (solo_lo, solo_hi) = class.solo_elapsed;
            let tier = rng.gen::<f64>();
            let time_budget_s = if tier < spec.p_impossible {
                // Provably violated: below the certified solo floor.
                Some(solo_lo * 0.5)
            } else if tier < spec.p_impossible + spec.p_best_effort {
                None
            } else {
                Some(solo_hi * spec.slack)
            };
            sessions.push(SessionRequest {
                id,
                class: class.name.clone(),
                arrival_epoch: epoch,
                time_budget_s,
            });
            *emitted.entry(class.name.clone()).or_default() += class.trace_bytes;
            id += 1;
        }
    }
    Traffic {
        sessions,
        emitted_bytes: emitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_verify::BoundsEnv;

    fn catalogue() -> Catalogue {
        Catalogue::standard(&BoundsEnv::default())
    }

    #[test]
    fn same_seed_same_stream() {
        let cat = catalogue();
        let spec = TrafficSpec::poisson(&cat, 42, 20, 3.0);
        let a = generate(&cat, &spec);
        let b = generate(&cat, &spec);
        assert_eq!(a, b);
        assert!(!a.sessions.is_empty());
        // Dense ids in arrival order.
        for (i, s) in a.sessions.iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
        // A different seed moves the stream.
        let other = generate(&cat, &TrafficSpec::poisson(&cat, 43, 20, 3.0));
        assert_ne!(a, other);
    }

    #[test]
    fn emitted_bytes_ledger_matches_the_stream() {
        let cat = catalogue();
        let t = generate(&cat, &TrafficSpec::poisson(&cat, 7, 15, 2.5));
        let mut recount: BTreeMap<String, u64> = BTreeMap::new();
        for s in &t.sessions {
            *recount.entry(s.class.clone()).or_default() += cat.get(&s.class).unwrap().trace_bytes;
        }
        assert_eq!(t.emitted_bytes, recount);
    }

    #[test]
    fn diurnal_rate_swings_between_base_and_peak() {
        let mix = ArrivalMix::Diurnal {
            base: 1.0,
            peak: 9.0,
            period_epochs: 24,
        };
        assert!((mix.rate(0) - 1.0).abs() < 1e-12);
        assert!((mix.rate(12) - 9.0).abs() < 1e-12);
        for e in 0..48 {
            let r = mix.rate(e);
            assert!((1.0..=9.0).contains(&r), "epoch {e}: {r}");
        }
        // Periodic.
        assert!((mix.rate(5) - mix.rate(29)).abs() < 1e-12);
    }

    #[test]
    fn budget_tiers_cover_all_three_shapes() {
        let cat = catalogue();
        let spec = TrafficSpec {
            p_impossible: 0.3,
            p_best_effort: 0.3,
            ..TrafficSpec::poisson(&cat, 11, 40, 4.0)
        };
        let t = generate(&cat, &spec);
        let impossible = t
            .sessions
            .iter()
            .filter(|s| {
                s.time_budget_s
                    .is_some_and(|b| b < cat.get(&s.class).unwrap().solo_elapsed.0)
            })
            .count();
        let best_effort = t
            .sessions
            .iter()
            .filter(|s| s.time_budget_s.is_none())
            .count();
        let generous = t.sessions.len() - impossible - best_effort;
        assert!(impossible > 0 && best_effort > 0 && generous > 0);
    }
}
