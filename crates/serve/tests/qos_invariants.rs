//! QoS invariants: what an ADMIT verdict actually buys a tenant.
//!
//! * **Budget soundness** — no admitted session's measured service
//!   time (p99 included) ever exceeds its declared budget, because
//!   admission requires the certified ceiling to fit under the budget
//!   and the tagged replay can never exceed the ceiling.
//! * **Partition containment** — no request is simulated outside its
//!   tenant's partition slot, and co-resident partitions are disjoint.
//! * **Noisy neighbor** — a bandwidth-hungry co-tenant cannot push a
//!   victim's attributed bandwidth below the floor its certification
//!   proved (own bytes over the composed elapsed ceiling).
//! * **Asymmetric isolation** — under a §4.2 split, the high tenant's
//!   requests decode to the dedicated unit and nobody else's ever do.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use mealib_memsim::{simulate_tenants, SimOptions};
use mealib_obs::quantiles::p50_p95_p99;
use mealib_serve::{
    generate, serve, AdmissionGate, Catalogue, Resident, ServeConfig, SessionRequest, TrafficSpec,
};
use mealib_types::{AddrRange, Bytes, PhysAddr};
use mealib_verify::interference::{resolved_set_config, tenant_streams};
use mealib_verify::{BoundsEnv, Verdict};

fn catalogue() -> &'static Catalogue {
    static CAT: OnceLock<Catalogue> = OnceLock::new();
    CAT.get_or_init(|| Catalogue::standard(&BoundsEnv::default()))
}

fn place(id: u64, class: &str, base: u64, budget: Option<f64>) -> Resident {
    let c = catalogue().get(class).unwrap();
    Resident::place(
        SessionRequest {
            id,
            class: class.into(),
            arrival_epoch: 0,
            time_budget_s: budget,
        },
        &c.body,
        AddrRange::new(PhysAddr::new(base), Bytes::new(c.slot)),
        id * 64,
    )
}

#[test]
fn admitted_sessions_never_exceed_their_declared_budget() {
    let cat = catalogue();
    let mut spec = TrafficSpec::poisson(cat, 314, 5, 2.0);
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    spec.p_impossible = 0.2;
    let traffic = generate(cat, &spec);
    let report = serve(
        cat,
        &traffic,
        &ServeConfig::default(),
        &BoundsEnv::default(),
    );
    assert!(!report.completed.is_empty());

    let budgets: BTreeMap<u64, Option<f64>> = traffic
        .sessions
        .iter()
        .map(|s| (s.id, s.time_budget_s))
        .collect();
    // Per-session: measured service fits both the certified ceiling
    // and (when declared) the budget the admission proved.
    let mut budgeted: BTreeMap<String, (Vec<f64>, f64)> = BTreeMap::new();
    for c in &report.completed {
        assert!(
            c.service_s <= c.certified_elapsed_hi,
            "s{}: measured {} above certified ceiling {}",
            c.id,
            c.service_s,
            c.certified_elapsed_hi
        );
        if let Some(Some(budget)) = budgets.get(&c.id) {
            assert!(
                c.service_s <= *budget,
                "s{}: measured {} above declared budget {budget}",
                c.id,
                c.service_s
            );
            let slot = budgeted.entry(c.class.clone()).or_insert((Vec::new(), 0.0));
            slot.0.push(c.service_s);
            slot.1 = slot.1.max(*budget);
        }
    }
    // Percentile form of the same promise: per-class p99 of budgeted
    // completions sits under the largest budget in the class.
    for (class, (service, max_budget)) in budgeted {
        let (_, _, p99) = p50_p95_p99(&service).unwrap();
        assert!(
            p99 <= max_budget,
            "{class}: p99 {p99} > budget {max_budget}"
        );
    }
}

#[test]
fn no_request_is_simulated_outside_its_partition() {
    let cat = catalogue();
    let gate = AdmissionGate::new(BoundsEnv::default());
    let a = cat.get("stap-tiny").unwrap().slot;
    let b = cat.get("sar-chain-256").unwrap().slot;
    let batch = vec![
        place(0, "stap-tiny", 0, None),
        place(1, "sar-chain-256", a, None),
        place(2, "stap-tiny", a + b, None),
    ];
    let (set, cert) = gate.certify(&batch);
    assert_eq!(cert.verdict, Verdict::Admit, "{}", cert.report.render());
    for (resident, stream) in batch.iter().zip(tenant_streams(&set)) {
        assert!(!stream.trace.is_empty());
        for req in stream.trace.iter() {
            let start = req.addr.get();
            let end = start + req.bytes;
            assert!(
                resident.partition.start().get() <= start && end <= resident.partition.end().get(),
                "s{}: request [0x{start:x}, 0x{end:x}) escapes partition {:?}",
                resident.request.id,
                resident.partition
            );
        }
    }
    // The scheduler upholds the same property end to end: co-resident
    // partitions are pairwise disjoint and inside the table.
    let mut spec = TrafficSpec::poisson(cat, 99, 4, 2.0);
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    let traffic = generate(cat, &spec);
    let config = ServeConfig::default();
    let report = serve(cat, &traffic, &config, &BoundsEnv::default());
    let mut by_epoch: BTreeMap<u64, Vec<AddrRange>> = BTreeMap::new();
    for c in &report.completed {
        assert!(c.partition.end().get() <= config.capacity);
        by_epoch
            .entry(c.admitted_epoch)
            .or_default()
            .push(c.partition);
    }
    for (epoch, parts) in by_epoch {
        for (i, x) in parts.iter().enumerate() {
            for y in &parts[i + 1..] {
                assert!(
                    x.end().get() <= y.start().get() || y.end().get() <= x.start().get(),
                    "epoch {epoch}: co-resident partitions overlap"
                );
            }
        }
    }
}

#[test]
fn noisy_neighbor_cannot_push_victim_below_certified_floor() {
    let cat = catalogue();
    let gate = AdmissionGate::new(BoundsEnv::default());
    let victim_slot = cat.get("stap-tiny").unwrap().slot;
    // The victim declares nothing; the noisy neighbor is the loop
    // pipeline, the most bandwidth-hungry class in the catalogue.
    let batch = vec![
        place(0, "stap-tiny", 0, None),
        place(1, "sar-loop-256", victim_slot, None),
    ];
    let (set, cert) = gate.certify(&batch);
    assert_eq!(cert.verdict, Verdict::Admit, "{}", cert.report.render());

    let cfg = resolved_set_config(&set, gate.env());
    let run = simulate_tenants(&cfg, &tenant_streams(&set), &SimOptions::default())
        .expect("admitted batch replays");

    let victim = &run.tenants[0];
    let vb = &cert.bounds.tenants[0];
    // Exact own-bytes attribution...
    let own_bytes = victim.bytes_read.get() + victim.bytes_written.get();
    assert_eq!(own_bytes as f64, vb.bytes_read.lo + vb.bytes_written.lo);
    // ...and the measured completion inside the certified interval.
    assert!(
        vb.elapsed.contains(victim.elapsed.get()),
        "victim elapsed {} outside [{}, {}]",
        victim.elapsed.get(),
        vb.elapsed.lo,
        vb.elapsed.hi
    );
    // The certified bandwidth floor: own bytes over the composed
    // elapsed ceiling. Measured bandwidth can only be better.
    let floor = own_bytes as f64 / vb.elapsed.hi;
    let measured = own_bytes as f64 / victim.elapsed.get();
    assert!(
        measured >= floor,
        "noisy neighbor pushed the victim to {measured} B/s, below the certified {floor} B/s"
    );
}

#[test]
fn asym_split_gives_the_high_tenant_a_unit_nobody_else_touches() {
    let cat = catalogue();
    let low_slot = cat.get("sar-chain-256").unwrap().slot;
    // Slot-aligned split right after the low tenant: the high tenant's
    // whole partition lives in the dedicated region.
    let split = low_slot.max(cat.get("stap-tiny").unwrap().slot);
    let gate = AdmissionGate::new(BoundsEnv::default()).with_asym_split(split);
    let batch = vec![
        place(0, "sar-chain-256", 0, None),
        place(1, "stap-tiny", split, None),
    ];
    let (set, cert) = gate.certify(&batch);
    assert_ne!(cert.verdict, Verdict::Reject, "{}", cert.report.render());

    let cfg = resolved_set_config(&set, gate.env());
    let dedicated = cfg.mapping.units() - 1;
    let streams = tenant_streams(&set);
    for req in streams[1].trace.iter() {
        assert_eq!(
            cfg.mapping.decode(req.addr).unit,
            dedicated,
            "high tenant's 0x{:x} left its dedicated unit",
            req.addr.get()
        );
    }
    for req in streams[0].trace.iter() {
        assert_ne!(
            cfg.mapping.decode(req.addr).unit,
            dedicated,
            "low tenant's 0x{:x} intruded on the dedicated unit",
            req.addr.get()
        );
    }
}
