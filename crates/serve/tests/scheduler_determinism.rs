//! Deterministic-replay harness: the serving loop is a pure function
//! of (catalogue, traffic, config, environment).
//!
//! Same seed ⇒ bit-identical admission decisions, queue orders, and
//! per-tenant attribution — across repeated runs AND across replay
//! worker counts (`jobs` shards the engine, never the result). The
//! conservation invariant rides along: every generated session gets
//! exactly one terminal disposition, and per-class served bytes
//! reconcile against the traffic generator's emitted-byte ledger.

use std::sync::OnceLock;

use mealib_obs::Obs;
use mealib_serve::{
    generate, serve, serve_with_telemetry, Catalogue, ServeConfig, TelemetryConfig, TrafficSpec,
};
use mealib_verify::BoundsEnv;
use proptest::prelude::*;

fn catalogue() -> &'static Catalogue {
    static CAT: OnceLock<Catalogue> = OnceLock::new();
    CAT.get_or_init(|| Catalogue::standard(&BoundsEnv::default()))
}

/// A quick mix over the small classes (the big stap scales are the
/// bench's and the soak test's job), with a fat impossible tier so
/// the rejection path is exercised too.
fn small_spec(seed: u64, epochs: u64, mean: f64) -> TrafficSpec {
    let mut spec = TrafficSpec::poisson(catalogue(), seed, epochs, mean);
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    spec.p_impossible = 0.25;
    spec
}

#[test]
fn ten_replays_are_bit_identical() {
    let cat = catalogue();
    let traffic = generate(cat, &small_spec(1234, 4, 1.5));
    assert!(!traffic.sessions.is_empty());
    let config = ServeConfig::default();
    let env = BoundsEnv::default();
    let first = serve(cat, &traffic, &config, &env);
    let fp = first.fingerprint();
    assert!(!fp.is_empty());
    for run in 1..10 {
        let r = serve(cat, &traffic, &config, &env);
        assert_eq!(r.fingerprint(), fp, "replay {run} diverged");
        assert_eq!(r, first, "replay {run}: fingerprint collision");
    }
}

#[test]
fn worker_count_never_changes_the_run() {
    let cat = catalogue();
    let traffic = generate(cat, &small_spec(77, 4, 2.0));
    let env = BoundsEnv::default();
    let baseline = serve(cat, &traffic, &ServeConfig::default(), &env).fingerprint();
    for jobs in [2usize, 4] {
        let config = ServeConfig {
            jobs,
            ..ServeConfig::default()
        };
        let fp = serve(cat, &traffic, &config, &env).fingerprint();
        assert_eq!(fp, baseline, "jobs={jobs} diverged from the serial run");
    }
}

/// The telemetry artifacts inherit the scheduler's determinism: ten
/// repeats and every worker count render byte-identical expositions,
/// snapshot streams, and lifecycle traces (the sketches, windows, and
/// trace events are all fed in scheduler order, which `jobs` never
/// changes).
#[test]
fn telemetry_artifacts_are_bit_identical_across_repeats_and_jobs() {
    let cat = catalogue();
    let traffic = generate(cat, &small_spec(555, 4, 1.5));
    let env = BoundsEnv::default();
    let tcfg = TelemetryConfig::standard(cat);
    let run = |jobs: usize| {
        let config = ServeConfig {
            jobs,
            ..ServeConfig::default()
        };
        let (report, tele) = serve_with_telemetry(cat, &traffic, &config, &env, &Obs::off(), &tcfg);
        tele.reconcile(&report).expect("telemetry reconciles");
        (
            tele.prometheus(),
            tele.snapshots_jsonl(),
            tele.chrome_trace(),
        )
    };
    let baseline = run(1);
    for rep in 1..10 {
        assert_eq!(run(1), baseline, "repeat {rep} diverged");
    }
    for jobs in [2usize, 4] {
        assert_eq!(run(jobs), baseline, "jobs={jobs} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Conservation under arbitrary seeds: exactly one disposition per
    /// session, ids cover the stream, per-class bytes reconcile.
    #[test]
    fn conservation_holds_for_any_seed(seed in 0u64..1_000_000) {
        let cat = catalogue();
        let traffic = generate(cat, &small_spec(seed, 3, 1.5));
        let report = serve(cat, &traffic, &ServeConfig::default(), &BoundsEnv::default());
        prop_assert_eq!(report.total_sessions(), traffic.sessions.len());
        if let Err(e) = report.check_conservation(&traffic, cat) {
            panic!("seed {seed}: conservation violated: {e}");
        }
        // Soundness is structural, not statistical.
        prop_assert!((report.admission_soundness() - 1.0).abs() < f64::EPSILON);
        // Every terminal rejection carries the MEA3xx proof.
        for r in &report.rejected {
            prop_assert!(!r.codes.is_empty());
        }
    }

    /// Two fresh runs of the same seed agree bit-for-bit even when the
    /// seed itself is arbitrary (the fixed-seed test above pins one
    /// stream; this pins the property).
    #[test]
    fn any_seed_replays_identically(seed in 0u64..1_000_000) {
        let cat = catalogue();
        let traffic = generate(cat, &small_spec(seed, 3, 1.2));
        let env = BoundsEnv::default();
        let a = serve(cat, &traffic, &ServeConfig::default(), &env);
        let b = serve(cat, &traffic, &ServeConfig::default(), &env);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
