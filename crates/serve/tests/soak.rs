//! Soak: a full diurnal day-and-nights of traffic, ≥10k sessions,
//! replayed end to end. Run with `cargo test -p mealib-serve -- --ignored`.

use mealib_obs::Obs;
use mealib_serve::{
    generate, serve, serve_with_telemetry, ArrivalMix, Catalogue, ServeConfig, ShedReason,
    TelemetryConfig, TrafficSpec,
};
use mealib_verify::BoundsEnv;

#[test]
#[ignore = "ten-thousand-session diurnal soak; run with --ignored"]
fn diurnal_soak_holds_every_invariant() {
    let cat = Catalogue::standard(&BoundsEnv::default());
    let mut spec = TrafficSpec::poisson(&cat, 2024, 1500, 0.0);
    spec.mix = ArrivalMix::Diurnal {
        base: 4.0,
        peak: 14.0,
        period_epochs: 48,
    };
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    let traffic = generate(&cat, &spec);
    assert!(
        traffic.sessions.len() >= 10_000,
        "soak needs >=10k sessions, got {}",
        traffic.sessions.len()
    );

    let config = ServeConfig {
        max_resident: 6,
        queue_cap: 32,
        jobs: 2,
        ..ServeConfig::default()
    };
    let report = serve(&cat, &traffic, &config, &BoundsEnv::default());

    // Every session disposed exactly once; per-class bytes reconcile.
    report
        .check_conservation(&traffic, &cat)
        .expect("soak conservation");

    // The shed policy keeps the queue bounded through the diurnal peak.
    assert!(report.peak_queue_depth <= config.queue_cap);
    for e in &report.epochs {
        assert!(e.queue_depth_end <= config.queue_cap, "epoch {}", e.epoch);
    }
    assert!(
        report
            .shed
            .iter()
            .any(|s| s.reason == ShedReason::QueueFull),
        "a 14/epoch peak against 6 residents must tail-drop sometime"
    );

    // Zero reconciliation drift: the breakdown's Compute time IS the
    // modeled clock, bit for bit.
    assert_eq!(
        report.breakdown_compute_s().to_bits(),
        report.modeled_s.to_bits()
    );

    // Modeled time is monotone non-decreasing across every epoch.
    for w in report.epochs.windows(2) {
        assert!(
            w[1].clock_s >= w[0].clock_s,
            "clock regressed at epoch {}",
            w[1].epoch
        );
    }

    // Soundness at scale: nothing completed above its certified
    // ceiling; every terminal rejection carries its proof.
    assert!((report.admission_soundness() - 1.0).abs() < f64::EPSILON);
    for r in &report.rejected {
        assert!(!r.codes.is_empty(), "s{} rejected without a proof", r.id);
    }

    // The plan cache is doing the batching: with two classes over
    // thousands of admissions, nearly every plan is a hit.
    assert!(report.plan_cache_hits > report.plans_planned / 2);
}

/// Streaming telemetry over the same ≥10k-session soak: memory stays
/// O(classes × buckets) — the sketches absorb every sample without
/// hoarding them — and the counters still reconcile count-wise with
/// the retained ledger even though the per-session vectors are gone.
#[test]
#[ignore = "ten-thousand-session telemetered soak; run with --ignored"]
fn streaming_telemetry_soak_is_bounded_memory() {
    let cat = Catalogue::standard(&BoundsEnv::default());
    let mut spec = TrafficSpec::poisson(&cat, 2024, 1500, 0.0);
    spec.mix = ArrivalMix::Diurnal {
        base: 4.0,
        peak: 14.0,
        period_epochs: 48,
    };
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    let traffic = generate(&cat, &spec);
    assert!(traffic.sessions.len() >= 10_000);

    let config = ServeConfig {
        max_resident: 6,
        queue_cap: 32,
        jobs: 2,
        ..ServeConfig::default()
    };
    let tcfg = TelemetryConfig {
        stream_only: true,
        trace: false,
        ..TelemetryConfig::standard(&cat)
    };
    let (report, tele) = serve_with_telemetry(
        &cat,
        &traffic,
        &config,
        &BoundsEnv::default(),
        &Obs::off(),
        &tcfg,
    );

    // Streaming mode really streams: no per-session hoarding anywhere.
    assert!(report.completed.is_empty());
    assert!(report.rejected.is_empty());
    assert!(report.shed.is_empty());
    assert!(report.decision_log.is_empty());
    assert!(tele.profile.intervals.is_empty(), "tracing was off");

    // Sketch memory is O(classes × buckets), not O(sessions): for
    // alpha = 1% a three-decade dynamic range occupies ~350 buckets,
    // so 2 classes × 3 histogram families stays far under 600/class
    // even after 10k+ samples.
    let classes = 2;
    assert!(
        tele.registry.total_buckets() < classes * 600,
        "{} buckets is not O(classes x buckets)",
        tele.registry.total_buckets()
    );

    // Count-wise reconciliation against the generator's ledger: every
    // session landed in exactly one terminal counter.
    let count = |name: &str| {
        ["stap-tiny", "sar-chain-256"]
            .iter()
            .map(|c| tele.registry.counter(name, &[("class", c)]))
            .sum::<u64>()
    };
    // Shed counters carry a `reason` label too, so sum them by prefix.
    let shed: u64 = tele
        .registry
        .counters()
        .filter(|(k, _)| k.flat().starts_with("serve_shed_total"))
        .map(|(_, v)| v)
        .sum();
    let disposed = count("serve_admitted_total") + count("serve_rejected_total") + shed;
    assert_eq!(disposed, traffic.sessions.len() as u64);
    assert_eq!(count("serve_arrivals_total"), traffic.sessions.len() as u64);

    // The replay accumulator still equals the modeled clock bit-exactly.
    assert_eq!(tele.replay_total_s.to_bits(), report.modeled_s.to_bits());
    assert!(tele.slo_evaluations > 0);
}
