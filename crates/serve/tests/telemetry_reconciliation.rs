//! Telemetry ↔ ledger reconciliation: the streaming telemetry is a
//! *view* of the exact serving ledger, never a second bookkeeping
//! system. Snapshot counter deltas sum exactly to the `ServeReport`
//! totals and `Breakdown`, the lifecycle trace round-trips through the
//! Chrome trace validator, every terminal REJECT marker carries the
//! same MEA3xx codes as its `RejectedSession`, and attaching telemetry
//! never changes the run it is watching.

use std::collections::BTreeMap;

use mealib_obs::json::{self, Value};
use mealib_obs::{validate_chrome_trace, validate_exposition, Obs, Phase};
use mealib_serve::{
    generate, serve, serve_with_telemetry, Catalogue, DecisionEvent, ServeConfig, ServeReport,
    TelemetryConfig, TelemetryReport, TrafficSpec,
};
use mealib_verify::BoundsEnv;

/// A small mix with a fat impossible tier so the REJECT path (and its
/// lifecycle markers) is exercised.
fn spec(catalogue: &Catalogue, seed: u64) -> TrafficSpec {
    let mut spec = TrafficSpec::poisson(catalogue, seed, 6, 2.0);
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    spec.p_impossible = 0.25;
    spec
}

fn run(seed: u64, tcfg: &TelemetryConfig) -> (ServeReport, TelemetryReport) {
    let env = BoundsEnv::default();
    let catalogue = Catalogue::standard(&env);
    let traffic = generate(&catalogue, &spec(&catalogue, seed));
    serve_with_telemetry(
        &catalogue,
        &traffic,
        &ServeConfig::default(),
        &env,
        &Obs::off(),
        tcfg,
    )
}

/// Sums each flat counter key across every snapshot's delta object.
fn summed_deltas(tele: &TelemetryReport) -> BTreeMap<String, u64> {
    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    for line in &tele.snapshots {
        let v = json::parse(line).expect("snapshot line parses");
        let obj = v
            .get("counters")
            .and_then(Value::as_object)
            .expect("snapshot carries a counters object");
        for (k, val) in obj {
            *summed.entry(k.clone()).or_default() += val.as_f64().expect("numeric") as u64;
        }
    }
    summed
}

fn prefix_total(summed: &BTreeMap<String, u64>, prefix: &str) -> u64 {
    summed
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| v)
        .sum()
}

#[test]
fn telemetry_reconciles_with_the_exact_ledger() {
    let (report, tele) = run(4242, &TelemetryConfig::default());
    tele.reconcile(&report).expect("reconciliation holds");
    validate_exposition(&tele.prometheus()).expect("exposition validates");

    // Snapshot deltas sum exactly to the ledger's terminal tallies.
    let summed = summed_deltas(&tele);
    assert_eq!(
        prefix_total(&summed, "serve_admitted_total"),
        report.completed.len() as u64
    );
    assert_eq!(
        prefix_total(&summed, "serve_rejected_total"),
        report.rejected.len() as u64
    );
    assert_eq!(
        prefix_total(&summed, "serve_shed_total"),
        report.shed.len() as u64
    );
    let ledger_bytes: u64 = report.completed.iter().map(|c| c.bytes).sum();
    assert_eq!(prefix_total(&summed, "serve_bytes_total"), ledger_bytes);

    // Per-class bytes reconcile too, not just the grand total.
    for class in ["stap-tiny", "sar-chain-256"] {
        let key = format!("serve_bytes_total{{class=\"{class}\"}}");
        let class_bytes: u64 = report
            .completed
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.bytes)
            .sum();
        assert_eq!(
            summed.get(&key).copied().unwrap_or(0),
            class_bytes,
            "{class}"
        );
    }

    // The replay accumulator is bit-equal to the modeled clock and to
    // the breakdown's Compute phase — same additions, same order.
    assert_eq!(tele.replay_total_s.to_bits(), report.modeled_s.to_bits());
    assert_eq!(
        tele.replay_total_s.to_bits(),
        report.breakdown.phase(Phase::Compute).time.get().to_bits()
    );

    // The service-time sketch saw exactly the completions, and its sum
    // is the same float the ledger's per-session times add to.
    let sketch_count: u64 = tele
        .registry
        .histograms()
        .filter(|(k, _)| k.flat().starts_with("serve_service_seconds"))
        .map(|(_, s)| s.count())
        .sum();
    assert_eq!(sketch_count, report.completed.len() as u64);
}

#[test]
fn lifecycle_trace_round_trips_and_rejects_carry_their_proofs() {
    let (report, tele) = run(99, &TelemetryConfig::default());
    assert!(
        !report.rejected.is_empty(),
        "seed must exercise the REJECT path"
    );

    let summary = validate_chrome_trace(&tele.chrome_trace()).expect("trace round-trips");
    assert!(summary.spans > 0);

    // Every terminal rejection appears as a lifecycle marker whose
    // label is the decision's Display line — including the exact
    // MEA3xx code list the certifier proved.
    for r in &report.rejected {
        let expected = DecisionEvent::Reject {
            epoch: r.epoch,
            id: r.id,
            codes: r.codes.clone(),
            attempts: r.retries,
        }
        .to_string();
        let track = format!("{}/lifecycle", r.class);
        assert!(
            tele.profile
                .intervals
                .iter()
                .any(|ev| ev.track == track && ev.label == expected),
            "missing REJECT marker {expected:?} on {track}"
        );
    }

    // And every completion got an arrival and a completion marker.
    for c in &report.completed {
        let track = format!("{}/lifecycle", c.class);
        let arrive = format!("arrive s{}", c.id);
        assert!(
            tele.profile
                .intervals
                .iter()
                .any(|ev| ev.track == track && ev.label == arrive),
            "missing {arrive} on {track}"
        );
    }
}

#[test]
fn stream_only_mode_keeps_counters_and_drops_the_vectors() {
    let retained_cfg = TelemetryConfig::default();
    let (retained_report, retained_tele) = run(7, &retained_cfg);

    let stream_cfg = TelemetryConfig {
        stream_only: true,
        trace: false,
        ..TelemetryConfig::default()
    };
    let (stream_report, stream_tele) = run(7, &stream_cfg);

    // The per-session vectors are gone — that is the point of
    // streaming mode.
    assert!(stream_report.completed.is_empty());
    assert!(stream_report.rejected.is_empty());
    assert!(stream_report.shed.is_empty());
    assert!(stream_report.decision_log.is_empty());

    // But the counters are the same stream the retained run saw.
    assert_eq!(
        stream_tele.registry.to_prometheus(),
        retained_tele.registry.to_prometheus()
    );
    assert_eq!(
        stream_tele
            .registry
            .counter("serve_admitted_total", &[("class", "stap-tiny")]),
        retained_report
            .completed
            .iter()
            .filter(|c| c.class == "stap-tiny")
            .count() as u64
    );

    // Reconciliation is impossible without the vectors, and says so.
    assert!(stream_tele.reconcile(&stream_report).is_err());
}

#[test]
fn attaching_telemetry_never_changes_the_run() {
    let env = BoundsEnv::default();
    let catalogue = Catalogue::standard(&env);
    let traffic = generate(&catalogue, &spec(&catalogue, 2024));
    let config = ServeConfig::default();

    let plain = serve(&catalogue, &traffic, &config, &env);
    let (telemetered, tele) = serve_with_telemetry(
        &catalogue,
        &traffic,
        &config,
        &env,
        &Obs::off(),
        &TelemetryConfig::default(),
    );
    assert_eq!(plain.fingerprint(), telemetered.fingerprint());
    assert_eq!(plain, telemetered);
    tele.reconcile(&telemetered).expect("reconciliation holds");
}
