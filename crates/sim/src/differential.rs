//! Differential verification: static MEA1xx verdicts vs. the runtime
//! sanitizer's, on the same session source.
//!
//! [`run_sanitizer_experiment`] takes one session (TDL plus optional
//! `HOST`/`FLUSH`/`BUF` directives, see `mealib_verify::dataflow`),
//! verifies it statically, then *replays* it through a real
//! [`Runtime`] with an active [`Sanitizer`]: host directives become
//! driver writes/reads, `FLUSH` becomes [`Runtime::cache_sync`], and
//! each top-level TDL item is planned and executed (unsynced, so the
//! session's own flush discipline is what the shadow state sees).
//! Because the sanitizer drives the same coherence machine the static
//! analysis elaborates into, the two verdicts can be compared
//! code-for-code — the property the differential test suite pins down.

use std::collections::BTreeSet;

use mealib_accel::AccelParams;
use mealib_runtime::{Runtime, Sanitizer, VerifyMode};
use mealib_tdl::{AcceleratorKind, ParamBag, ParseError, TdlItem, TdlProgram};
use mealib_types::{Bytes, ErrorCode, Report};
use mealib_verify::dataflow::{self, DataflowEnv, HostOp, ProgramSpans, Session};

/// The two verdicts on one session.
#[derive(Debug, Clone)]
pub struct SessionVerdict {
    /// What the static analysis predicted.
    pub static_report: Report,
    /// What the sanitizer observed during the replay.
    pub dynamic_report: Report,
}

impl SessionVerdict {
    /// MEA1xx codes the static analysis raised.
    pub fn static_codes(&self) -> BTreeSet<ErrorCode> {
        dataflow_codes(&self.static_report)
    }

    /// MEA1xx codes the sanitizer raised.
    pub fn dynamic_codes(&self) -> BTreeSet<ErrorCode> {
        dataflow_codes(&self.dynamic_report)
    }

    /// `true` when both layers raised exactly the same MEA1xx codes.
    pub fn agree(&self) -> bool {
        self.static_codes() == self.dynamic_codes()
    }
}

fn dataflow_codes(report: &Report) -> BTreeSet<ErrorCode> {
    report
        .diagnostics()
        .iter()
        .map(|d| d.code)
        .filter(|c| (100..110).contains(&c.number()))
        .collect()
}

/// Statically verifies `src` and replays it through a sanitized
/// runtime, returning both MEA1xx verdicts.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed directives or TDL.
pub fn run_sanitizer_experiment(src: &str) -> Result<SessionVerdict, ParseError> {
    let session = dataflow::parse_session(src)?;
    let static_report = dataflow::verify_session(&session, &DataflowEnv::default());
    let dynamic_report = replay(&session);
    Ok(SessionVerdict {
        static_report,
        dynamic_report,
    })
}

/// Replays the whole session through a sanitized runtime and returns
/// the sanitizer's final report (including the dead-buffer scan).
fn replay(session: &Session) -> Report {
    let san = Sanitizer::active();
    let mut rt = Runtime::new();
    // Static verification is the *other* half of the comparison; the
    // replay must rely on the sanitizer alone.
    rt.set_verify_mode(VerifyMode::Off);
    rt.set_sanitizer(san.clone());

    let mut names: BTreeSet<String> = BTreeSet::new();
    for pass in session.program.passes() {
        names.insert(pass.input.clone());
        names.insert(pass.output.clone());
    }
    for (_, op) in &session.host_ops {
        match op {
            HostOp::Write(b) | HostOp::Read(b) => {
                names.insert(b.clone());
            }
            HostOp::Flush => {}
        }
    }
    for name in &names {
        rt.mem_alloc(name, Bytes::from_mib(1))
            .expect("replay buffer fits the default stack");
    }
    // `BUF` directives override the allocator's (disjoint) layout so
    // declared overlaps reproduce dynamically.
    san.set_extents(session.extents.clone());

    if session.is_explicit() {
        replay_explicit(session, &mut rt, &san);
    } else {
        replay_implicit(session, &mut rt, &san);
    }
    san.final_report()
}

/// Explicit mode: the directives *are* the host protocol — replay them
/// verbatim, interleaved with the TDL items by source position.
fn replay_explicit(session: &Session, rt: &mut Runtime, san: &Sanitizer) {
    enum Ev<'a> {
        Host(&'a HostOp),
        Item(usize),
    }
    let spans = ProgramSpans::new(Some(&session.lines));
    let mut events: Vec<(usize, Ev<'_>)> = session
        .host_ops
        .iter()
        .map(|(line, op)| (*line, Ev::Host(op)))
        .collect();
    for idx in 0..session.program.items.len() {
        events.push((spans.item_header(idx).unwrap_or(usize::MAX), Ev::Item(idx)));
    }
    events.sort_by_key(|(line, _)| *line);
    for (_, ev) in events {
        match ev {
            Ev::Host(HostOp::Write(buf)) => host_write(rt, buf),
            Ev::Host(HostOp::Read(buf)) => host_read(rt, buf),
            Ev::Host(HostOp::Flush) => {
                rt.cache_sync();
            }
            Ev::Item(idx) => run_item(&session.program.items[idx], rt, san),
        }
    }
}

/// Implicit mode: mirror the contract the static analysis assumes —
/// external inputs initialized and flushed before the first descriptor,
/// every output consumed after a final sync — so a statically clean
/// program replays clean too.
fn replay_implicit(session: &Session, rt: &mut Runtime, san: &Sanitizer) {
    let mut defined: BTreeSet<&str> = BTreeSet::new();
    let mut external: Vec<&str> = Vec::new();
    let mut outputs: Vec<&str> = Vec::new();
    for pass in session.program.passes() {
        let input = pass.input.as_str();
        if !defined.contains(input) && !external.contains(&input) {
            external.push(input);
        }
        defined.insert(&pass.output);
        if !outputs.contains(&pass.output.as_str()) {
            outputs.push(&pass.output);
        }
    }
    for buf in external {
        host_write(rt, buf);
    }
    rt.cache_sync();
    for item in &session.program.items {
        run_item(item, rt, san);
    }
    rt.cache_sync();
    for buf in outputs {
        host_read(rt, buf);
    }
}

fn host_write(rt: &mut Runtime, buf: &str) {
    rt.driver_mut()
        .write(buf, 0, &[1u8; 16])
        .expect("replay host write");
}

fn host_read(rt: &mut Runtime, buf: &str) {
    rt.driver().read(buf, 0, 16).expect("replay host read");
}

/// Plans and executes one top-level item. The sanitizer hook sits on
/// the execute path; if planning or the descriptor copy fails, the
/// program is fed to the sanitizer directly so the dynamic verdict
/// still covers everything the runtime was asked to run (re-observing
/// is verdict-idempotent — diagnostics dedup per buffer).
fn run_item(item: &TdlItem, rt: &mut Runtime, san: &Sanitizer) {
    let program = TdlProgram::new(vec![item.clone()]);
    let mut bag = ParamBag::new();
    let comps: Vec<_> = match item {
        TdlItem::Pass(p) => p.comps.clone(),
        TdlItem::Loop(l) => l.body.iter().flat_map(|p| p.comps.clone()).collect(),
    };
    for comp in comps {
        bag.insert(comp.params.clone(), plausible_params(comp.accel).to_bytes());
    }
    match rt.acc_plan(&program.to_string(), &bag) {
        Ok(plan) => {
            if rt.acc_execute_unsynced(&plan).is_err() {
                san.observe_program(&program);
            }
        }
        Err(_) => san.observe_program(&program),
    }
}

/// Token-sized parameters for each accelerator: the replay checks the
/// access protocol, not the dataset, so any well-formed payload works.
/// Public because every harness that drives a [`Runtime`] from session
/// text (the serving layer's descriptor batcher included) needs the
/// same well-formed stand-in payloads.
pub fn plausible_params(kind: AcceleratorKind) -> AccelParams {
    match kind {
        AcceleratorKind::Axpy => AccelParams::Axpy {
            n: 1024,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        },
        AcceleratorKind::Dot => AccelParams::Dot {
            n: 1024,
            incx: 1,
            incy: 1,
            complex: false,
        },
        AcceleratorKind::Gemv => AccelParams::Gemv { m: 64, n: 64 },
        AcceleratorKind::Spmv => AccelParams::Spmv {
            rows: 64,
            cols: 64,
            nnz: 256,
        },
        AcceleratorKind::Resmp => AccelParams::Resmp {
            blocks: 4,
            in_per_block: 64,
            out_per_block: 64,
        },
        AcceleratorKind::Fft => AccelParams::Fft { n: 64, batch: 4 },
        AcceleratorKind::Reshp => AccelParams::Reshp {
            rows: 16,
            cols: 16,
            elem_bytes: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_explicit_session_agrees_clean() {
        let v = run_sanitizer_experiment(
            "HOST WRITE x\nFLUSH\nPASS in=x out=y {\n  COMP AXPY params=\"a\"\n}\nFLUSH\nHOST READ y\n",
        )
        .unwrap();
        assert!(v.static_report.is_clean(), "{}", v.static_report.render());
        assert!(v.dynamic_report.is_clean(), "{}", v.dynamic_report.render());
        assert!(v.agree());
    }

    #[test]
    fn missing_flush_agrees_stale() {
        let v = run_sanitizer_experiment(
            "HOST WRITE x\nPASS in=x out=y {\n  COMP AXPY params=\"a\"\n}\nFLUSH\nHOST READ y\n",
        )
        .unwrap();
        assert!(v.static_codes().contains(&ErrorCode::DfStaleRead));
        assert!(
            v.agree(),
            "static {:?} vs dynamic {:?}",
            v.static_codes(),
            v.dynamic_codes()
        );
    }

    #[test]
    fn implicit_program_agrees_clean() {
        let v = run_sanitizer_experiment(
            "PASS in=a out=b {\n  COMP RESMP params=\"r\"\n}\nPASS in=b out=c {\n  COMP FFT params=\"f\"\n}\n",
        )
        .unwrap();
        assert!(v.static_report.is_clean(), "{}", v.static_report.render());
        assert!(v.dynamic_report.is_clean(), "{}", v.dynamic_report.render());
    }

    #[test]
    fn malformed_session_is_a_parse_error() {
        assert!(run_sanitizer_experiment("HOST SCRIBBLE x\n").is_err());
    }
}
