//! The Figure 9/10 cross-platform comparison.
//!
//! For each Table 1 operation on its Table 2 dataset, run the same
//! "library call" on all five platforms — Haswell (MKL), Xeon Phi (MKL),
//! PSAS, MSAS, MEALib — and report performance and energy efficiency
//! normalized to Haswell, exactly as the paper's figures do.

use std::sync::Arc;

use mealib_accel::AccelParams;
use mealib_host::{run_op, CodeFlavor, Platform};
use mealib_obs::{Breakdown, Obs, Phase, Recorder, TraceRecorder};
use mealib_runtime::{Runtime, Sanitizer, VerifyMode};
use mealib_tdl::ParamBag;
use mealib_types::{Bytes, Joules, Seconds, Watts};

use crate::platforms::AcceleratedPlatform;

/// One platform's result for one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformResult {
    /// Platform name.
    pub name: String,
    /// Execution time.
    pub time: Seconds,
    /// Energy consumed.
    pub energy: Joules,
    /// FLOPs (zero for RESHP).
    pub flops: u64,
    /// Bytes moved (the RESHP throughput basis).
    pub bytes: u64,
}

impl PlatformResult {
    /// Throughput metric: GFLOPS, or GB/s for FLOP-free operations
    /// (the paper's footnote 3).
    pub fn throughput(&self) -> f64 {
        if self.flops > 0 {
            self.flops as f64 / self.time.get() * 1e-9
        } else {
            self.bytes as f64 / self.time.get() * 1e-9
        }
    }

    /// Average power.
    pub fn power(&self) -> Watts {
        self.energy.over(self.time)
    }

    /// Energy-efficiency metric: GFLOPS/W (or GB/s/W for RESHP).
    pub fn efficiency(&self) -> f64 {
        let p = self.power().get();
        if p > 0.0 {
            self.throughput() / p
        } else {
            0.0
        }
    }
}

/// All five platforms' results for one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpComparison {
    /// The operation and its dataset.
    pub op: AccelParams,
    /// Results in platform order: Haswell, Xeon Phi, PSAS, MSAS, MEALib.
    pub rows: Vec<PlatformResult>,
}

impl OpComparison {
    /// The Haswell baseline row.
    ///
    /// # Panics
    ///
    /// Panics if the comparison is empty (cannot happen via
    /// [`run_experiment`]).
    pub fn baseline(&self) -> &PlatformResult {
        &self.rows[0]
    }

    /// Performance of each platform normalized to Haswell (Figure 9's
    /// y-axis).
    pub fn speedups(&self) -> Vec<(String, f64)> {
        let base = self.baseline().throughput();
        self.rows
            .iter()
            .map(|r| (r.name.clone(), r.throughput() / base))
            .collect()
    }

    /// Energy efficiency normalized to Haswell (Figure 10's y-axis).
    pub fn efficiency_gains(&self) -> Vec<(String, f64)> {
        let base = self.baseline().efficiency();
        self.rows
            .iter()
            .map(|r| (r.name.clone(), r.efficiency() / base))
            .collect()
    }

    /// The MEALib row's speedup over Haswell.
    pub fn mealib_speedup(&self) -> f64 {
        self.speedups().last().expect("five rows").1
    }

    /// The MEALib row's efficiency gain over Haswell.
    pub fn mealib_efficiency_gain(&self) -> f64 {
        self.efficiency_gains().last().expect("five rows").1
    }
}

/// Options for [`run_experiment`]: what to verify before running and
/// where to send instrumentation.
///
/// The struct is plain data with public fields so callers can use
/// `ExperimentOptions { verify: VerifyMode::Off, ..Default::default() }`;
/// the builder-style helpers cover the common cases.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOptions {
    /// Static-verification policy for the process-wide preflight
    /// ([`crate::preflight`]). `Enforce` (the default) fails the
    /// experiment on coded errors; `Warn` records the report in
    /// [`ExperimentReport::verify`] and continues; `Off` skips the
    /// preflight entirely.
    pub verify: VerifyMode,
    /// Instrumentation sink. [`Obs::off`] (the default) costs one
    /// branch; an enabled recorder sees the per-platform breakdowns
    /// and memory-system counters.
    pub obs: Obs,
    /// Shadow-memory sanitizer. [`Sanitizer::off`] (the default) is a
    /// branch-on-None no-op; an active handle additionally drives the
    /// operation through a sanitized [`Runtime`] and records the MEA1xx
    /// coherence verdict in [`ExperimentReport::sanitizer`].
    pub sanitizer: Sanitizer,
    /// Modeled energy envelope for the MEALib row. When set (and
    /// verification is not [`VerifyMode::Off`]), a run whose modeled
    /// MEALib energy exceeds the budget draws an MEA203
    /// ([`mealib_types::ErrorCode::BoundsEnergyBudget`]) diagnostic:
    /// `Enforce` fails the experiment, `Warn` records it in
    /// [`ExperimentReport::verify`].
    pub energy_budget: Option<mealib_types::Joules>,
}

impl ExperimentOptions {
    /// Sets the verification policy.
    pub fn verify(mut self, mode: VerifyMode) -> Self {
        self.verify = mode;
        self
    }

    /// Sets the instrumentation sink.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Installs a recorder (shorthand for `obs(Obs::new(recorder))`).
    pub fn recorder(self, recorder: Arc<dyn Recorder + Send + Sync>) -> Self {
        self.obs(Obs::new(recorder))
    }

    /// Installs a shadow-memory sanitizer ([`Sanitizer::active`]).
    pub fn sanitizer(mut self, san: Sanitizer) -> Self {
        self.sanitizer = san;
        self
    }

    /// Declares a modeled energy envelope for the MEALib row.
    pub fn energy_budget(mut self, budget: mealib_types::Joules) -> Self {
        self.energy_budget = Some(budget);
        self
    }
}

/// The result of [`run_experiment`]: the five-platform comparison plus
/// the MEALib phase/counter breakdown and, under
/// [`VerifyMode::Warn`], the preflight report.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Results in platform order: Haswell, Xeon Phi, PSAS, MSAS, MEALib.
    pub comparison: OpComparison,
    /// Phase itemization of the MEALib row (DMA vs. compute, with the
    /// DRAM command counters). Its time and energy totals equal the
    /// MEALib row's `time`/`energy` exactly.
    pub breakdown: Breakdown,
    /// The preflight report when `verify` was [`VerifyMode::Warn`];
    /// `None` under `Enforce` (errors become `Err`) and `Off`.
    pub verify: Option<mealib_types::Report>,
    /// The sanitizer's final MEA1xx report when an active
    /// [`Sanitizer`] was installed; `None` otherwise.
    pub sanitizer: Option<mealib_types::Report>,
}

/// Runs `op` on all five platforms — Haswell (MKL), Xeon Phi (MKL),
/// PSAS, MSAS, MEALib — per the policy in `opts`.
///
/// Under [`VerifyMode::Enforce`] the first call in a process runs the
/// static-verification preflight ([`crate::preflight`]): TDL semantics,
/// descriptor image, memory-config validation (with the interleaving
/// bijectivity proof), physical-memory consistency, and the dataflow &
/// coherence analysis. Subsequent calls reuse the cached verdict.
///
/// # Errors
///
/// Returns the diagnostic report if the preflight finds coded errors
/// under `Enforce`. `Warn` and `Off` never fail.
pub fn run_experiment(
    op: &AccelParams,
    opts: &ExperimentOptions,
) -> Result<ExperimentReport, mealib_types::Report> {
    let verify = match opts.verify {
        VerifyMode::Enforce => {
            crate::preflight::preflight_checked()?;
            None
        }
        VerifyMode::Warn => Some(crate::preflight::preflight()),
        VerifyMode::Off => None,
    };

    let mut rows = Vec::with_capacity(5);
    for platform in [Platform::haswell(), Platform::xeon_phi()] {
        let r = run_op(&platform, op, CodeFlavor::Library);
        r.record_into(&opts.obs);
        rows.push(PlatformResult {
            name: platform.name.clone(),
            time: r.time,
            energy: r.energy,
            flops: r.flops,
            bytes: r.bytes,
        });
    }
    let mut breakdown = Breakdown::new();
    for accel in [
        AcceleratedPlatform::psas(),
        AcceleratedPlatform::msas(),
        AcceleratedPlatform::mealib(),
    ] {
        let r = accel.run(op);
        if accel.name == "MEALib" {
            breakdown.add_phase(Phase::Compute, r.compute_time, r.energy - r.mem_energy);
            breakdown.add_phase(Phase::Dma, r.time - r.compute_time, r.mem_energy);
            let rec = TraceRecorder::shared();
            r.mem.record_into(&Obs::new(rec.clone()));
            breakdown.merge(&rec.breakdown());
            opts.obs.record_breakdown(&breakdown, &accel.name);
        }
        rows.push(PlatformResult {
            name: accel.name.clone(),
            time: r.time,
            energy: r.energy,
            flops: r.flops,
            bytes: r.mem.bytes_moved().get(),
        });
    }
    // MEA203-style energy-envelope check over the modeled MEALib row,
    // honoring the verification policy.
    let mut verify = verify;
    if let Some(budget) = opts.energy_budget {
        let modeled = rows.last().expect("five rows").energy;
        if modeled.get() > budget.get() && !matches!(opts.verify, VerifyMode::Off) {
            let mut r = mealib_types::Report::new();
            r.push(mealib_types::Diagnostic::error(
                mealib_types::ErrorCode::BoundsEnergyBudget,
                format!(
                    "modeled MEALib energy {:.3e} J exceeds the declared budget {:.3e} J",
                    modeled.get(),
                    budget.get()
                ),
            ));
            match opts.verify {
                VerifyMode::Enforce => return Err(r),
                _ => match verify.as_mut() {
                    Some(v) => v.merge(r),
                    None => verify = Some(r),
                },
            }
        }
    }
    let sanitizer = if opts.sanitizer.is_active() {
        drive_sanitized(op, &opts.sanitizer);
        Some(opts.sanitizer.final_report())
    } else {
        None
    };
    Ok(ExperimentReport {
        comparison: OpComparison { op: *op, rows },
        breakdown,
        verify,
        sanitizer,
    })
}

/// Replays `op` as one MEALib library call through a sanitized
/// [`Runtime`], following the canonical coherence protocol: host
/// initialization, implicit `wbinvd` at invocation, `wbinvd` again
/// before the host reads the result back. Buffer sizes are token-sized
/// — the sanitizer checks the access *protocol*, not the dataset.
fn drive_sanitized(op: &AccelParams, san: &Sanitizer) {
    let mut rt = Runtime::new();
    rt.set_sanitizer(san.clone());
    rt.mem_alloc("san.in", Bytes::from_mib(1))
        .expect("sanitizer buffer fits the default stack");
    rt.mem_alloc("san.out", Bytes::from_mib(1))
        .expect("sanitizer buffer fits the default stack");
    rt.driver_mut()
        .write("san.in", 0, &[0u8; 64])
        .expect("sanitizer input initializes");
    let mut bag = ParamBag::new();
    bag.insert("op.para".into(), op.to_bytes());
    let tdl = format!(
        "PASS in=san.in out=san.out {{ COMP {} params=\"op.para\" }}",
        op.kind().keyword()
    );
    let plan = rt.acc_plan(&tdl, &bag).expect("sanitizer descriptor plans");
    rt.acc_execute(&plan)
        .expect("sanitizer descriptor executes");
    rt.cache_sync();
    let _ = rt
        .driver()
        .read("san.out", 0, 16)
        .expect("sanitizer output reads back");
}

/// The Table 2 datasets, one per accelerated operation.
pub fn table2_workloads() -> Vec<AccelParams> {
    vec![
        // 256M-element vectors (1 GB).
        AccelParams::Axpy {
            n: 256 << 20,
            alpha: 2.0,
            incx: 1,
            incy: 1,
        },
        AccelParams::Dot {
            n: 256 << 20,
            incx: 1,
            incy: 1,
            complex: false,
        },
        // 16384 x 16384 matrix (1 GB).
        AccelParams::Gemv { m: 16384, n: 16384 },
        // rgg_n_2_20-class sparse matrix.
        AccelParams::Spmv {
            rows: 1 << 20,
            cols: 1 << 20,
            nnz: 13 * (1 << 20),
        },
        // 16384 resampling blocks.
        AccelParams::Resmp {
            blocks: 16384,
            in_per_block: 8192,
            out_per_block: 8192,
        },
        // 8192 x 8192 complex FFT batch (512 MB).
        AccelParams::Fft {
            n: 8192,
            batch: 8192,
        },
        // 16384 x 16384 transpose (1 GB).
        AccelParams::Reshp {
            rows: 16384,
            cols: 16384,
            elem_bytes: 4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_types::stats::geometric_mean;

    /// Default-options experiment, unwrapped to the comparison.
    fn compare(op: &AccelParams) -> OpComparison {
        run_experiment(op, &ExperimentOptions::default())
            .expect("preflight clean")
            .comparison
    }

    #[test]
    fn energy_budget_enforcement_draws_mea203() {
        let op = AccelParams::Axpy {
            n: 1 << 20,
            alpha: 2.0,
            incx: 1,
            incy: 1,
        };
        // An impossibly tight envelope fails under Enforce with the
        // bounds code...
        let err = run_experiment(
            &op,
            &ExperimentOptions::default().energy_budget(mealib_types::Joules::from_picos(1.0)),
        )
        .expect_err("picjoule budget must fail");
        assert!(
            err.has_code(mealib_types::ErrorCode::BoundsEnergyBudget),
            "{err}"
        );
        // ...is only recorded under Warn...
        let warned = run_experiment(
            &op,
            &ExperimentOptions::default()
                .verify(VerifyMode::Warn)
                .energy_budget(mealib_types::Joules::from_picos(1.0)),
        )
        .expect("Warn never fails");
        assert!(warned
            .verify
            .is_some_and(|r| r.has_code(mealib_types::ErrorCode::BoundsEnergyBudget)));
        // ...and a generous envelope passes untouched.
        let ok = run_experiment(
            &op,
            &ExperimentOptions::default().energy_budget(mealib_types::Joules::from_millis(1e6)),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn mealib_wins_every_operation() {
        for op in table2_workloads() {
            let cmp = compare(&op);
            let speedups = cmp.speedups();
            let mealib = cmp.mealib_speedup();
            for (name, s) in &speedups {
                assert!(
                    mealib >= *s,
                    "{:?}: MEALib ({mealib:.1}x) must win, {name} has {s:.1}x",
                    op.kind()
                );
            }
        }
    }

    #[test]
    fn fig9_shape_reshp_max_spmv_min() {
        let results: Vec<(mealib_tdl::AcceleratorKind, f64)> = table2_workloads()
            .iter()
            .map(|op| (op.kind(), compare(op).mealib_speedup()))
            .collect();
        let reshp = results
            .iter()
            .find(|(k, _)| *k == mealib_tdl::AcceleratorKind::Reshp)
            .expect("reshp present")
            .1;
        let spmv = results
            .iter()
            .find(|(k, _)| *k == mealib_tdl::AcceleratorKind::Spmv)
            .expect("spmv present")
            .1;
        for (kind, s) in &results {
            assert!(
                *s <= reshp * 1.01,
                "{kind}: {s:.1}x exceeds RESHP {reshp:.1}x"
            );
            assert!(
                *s >= spmv * 0.6,
                "{kind}: {s:.1}x far below SPMV {spmv:.1}x"
            );
        }
        // Paper: 11x (SPMV) to 88x (RESHP).
        assert!((4.0..30.0).contains(&spmv), "SPMV gain {spmv:.1}x");
        assert!((40.0..160.0).contains(&reshp), "RESHP gain {reshp:.1}x");
    }

    #[test]
    fn fig9_average_speedup_matches_scale() {
        let speedups: Vec<f64> = table2_workloads()
            .iter()
            .map(|op| compare(op).mealib_speedup())
            .collect();
        let avg = geometric_mean(&speedups).expect("positive speedups");
        // Paper: 38x average.
        assert!(
            (15.0..80.0).contains(&avg),
            "average MEALib speedup {avg:.1}x"
        );
    }

    #[test]
    fn fig10_energy_gains_exceed_performance_gains() {
        // The paper's central energy story: efficiency gains (75x avg)
        // are larger than performance gains (38x avg).
        let mut perf = Vec::new();
        let mut eff = Vec::new();
        for op in table2_workloads() {
            let cmp = compare(&op);
            perf.push(cmp.mealib_speedup());
            eff.push(cmp.mealib_efficiency_gain());
        }
        let avg_perf = geometric_mean(&perf).expect("positive");
        let avg_eff = geometric_mean(&eff).expect("positive");
        assert!(
            avg_eff > avg_perf,
            "energy gain {avg_eff:.1}x must exceed perf gain {avg_perf:.1}x"
        );
        assert!(
            (30.0..160.0).contains(&avg_eff),
            "average EE gain {avg_eff:.1}x"
        );
    }

    #[test]
    fn baselines_normalize_to_one() {
        for op in table2_workloads() {
            let cmp = compare(&op);
            let s = cmp.speedups();
            let e = cmp.efficiency_gains();
            assert!((s[0].1 - 1.0).abs() < 1e-12, "{:?}", op.kind());
            assert!((e[0].1 - 1.0).abs() < 1e-12, "{:?}", op.kind());
            assert_eq!(s.len(), 5);
            assert!(s[0].0.contains("Haswell"));
            assert_eq!(s[4].0, "MEALib");
        }
    }

    #[test]
    fn throughput_metric_switches_for_flop_free_ops() {
        let reshp = table2_workloads()
            .into_iter()
            .find(|op| op.kind() == mealib_tdl::AcceleratorKind::Reshp)
            .expect("reshp present");
        let cmp = compare(&reshp);
        for row in &cmp.rows {
            assert_eq!(row.flops, 0, "{}: transpose has no FLOPs", row.name);
            assert!(
                row.throughput() > 0.0,
                "{}: GB/s metric must be used",
                row.name
            );
        }
    }

    #[test]
    fn experiment_breakdown_reconciles_with_mealib_row() {
        let op = AccelParams::Gemv { m: 2048, n: 2048 };
        let report = run_experiment(&op, &ExperimentOptions::default()).expect("preflight clean");
        let mealib = report.comparison.rows.last().expect("five rows");
        let dt = (report.breakdown.total_time().get() - mealib.time.get()).abs();
        let de = (report.breakdown.total_energy().get() - mealib.energy.get()).abs();
        assert!(dt <= 1e-9 * mealib.time.get(), "time drift {dt}");
        assert!(de <= 1e-9 * mealib.energy.get(), "energy drift {de}");
        assert!(
            report.breakdown.counter(mealib_obs::Counter::DramAct) > 0,
            "DRAM activates recorded"
        );
        assert!(report.verify.is_none(), "Enforce yields no warn report");
    }

    #[test]
    fn warn_mode_surfaces_preflight_report() {
        let op = AccelParams::Axpy {
            n: 1 << 16,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        };
        let opts = ExperimentOptions::default().verify(VerifyMode::Warn);
        let report = run_experiment(&op, &opts).expect("warn never fails");
        let preflight = report.verify.expect("warn records the report");
        assert!(!preflight.has_errors(), "shipping config is clean");
    }

    #[test]
    fn recorder_observes_experiment_phases() {
        let rec = TraceRecorder::shared();
        let opts = ExperimentOptions::default().recorder(rec.clone());
        let op = AccelParams::Axpy {
            n: 1 << 16,
            alpha: 2.0,
            incx: 1,
            incy: 1,
        };
        run_experiment(&op, &opts).expect("preflight clean");
        let bd = rec.breakdown();
        assert!(bd.phase(Phase::Dma).time.get() > 0.0, "DMA phase recorded");
        assert!(
            bd.phase(Phase::Compute).time.get() > 0.0,
            "compute phase recorded"
        );
    }

    #[test]
    fn sanitized_experiment_is_coherence_clean() {
        let op = AccelParams::Axpy {
            n: 1 << 16,
            alpha: 2.0,
            incx: 1,
            incy: 1,
        };
        let opts = ExperimentOptions::default().sanitizer(Sanitizer::active());
        let report = run_experiment(&op, &opts).expect("preflight clean");
        let san = report.sanitizer.expect("active sanitizer records");
        assert!(san.is_clean(), "{}", san.render());

        // Without the knob the field stays empty.
        let plain = run_experiment(&op, &ExperimentOptions::default()).expect("preflight clean");
        assert!(plain.sanitizer.is_none());
    }

    #[test]
    fn intermediate_platforms_order_between_haswell_and_mealib() {
        // PSAS < MSAS < MEALib on the streaming workloads (avg 2.51x,
        // 10.32x, 38x in the paper).
        let op = AccelParams::Gemv { m: 16384, n: 16384 };
        let cmp = compare(&op);
        let s = cmp.speedups();
        let find = |name: &str| s.iter().find(|(n, _)| n == name).expect("present").1;
        assert!(find("PSAS") > 1.0);
        assert!(find("MSAS") > find("PSAS"));
        assert!(find("MEALib") > find("MSAS"));
    }
}
