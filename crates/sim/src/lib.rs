//! System-level evaluation orchestrator.
//!
//! Reproduces the hybrid methodology of §4: host platforms are priced by
//! the roofline models of `mealib-host`, accelerated platforms (PSAS,
//! MSAS, MEALib) by the accelerator-layer models of `mealib-accel` over
//! the appropriate memory substrate, and this crate combines them into
//! the cross-platform comparisons behind Figures 9 and 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod experiment;
pub mod platforms;
pub mod preflight;
pub mod report;
pub mod sweep;

pub use differential::{plausible_params, run_sanitizer_experiment, SessionVerdict};
pub use experiment::{
    run_experiment, ExperimentOptions, ExperimentReport, OpComparison, PlatformResult,
};
pub use mealib_runtime::{Sanitizer, VerifyMode};
pub use platforms::AcceleratedPlatform;
pub use preflight::{preflight, preflight_checked};
pub use report::{sparkline, TextTable};
pub use sweep::run_sweep;
