//! The accelerated platforms of Table 3.
//!
//! * **PSAS** — Processor-Side Accelerated System: the same accelerator
//!   PEs, but sharing the host's dual-channel DDR memory hierarchy; the
//!   host package stays resident to feed them.
//! * **MSAS** — 2D Memory-Side Accelerated System (NDA-style): the
//!   accelerators sit atop conventional planar DRAM devices (102.4 GB/s
//!   aggregate, cheaper-than-pin transport).
//! * **MEALib** — the paper's system: the accelerator layer under the
//!   3D stack's logic base, 510 GB/s of TSV bandwidth.

use mealib_accel::model::ExecReport;
use mealib_accel::{AccelParams, AcceleratorLayer};
use mealib_memsim::MemoryConfig;
use mealib_types::{Joules, Watts};

/// A platform whose operations run on accelerator hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratedPlatform {
    /// Platform name for reports.
    pub name: String,
    /// The accelerator deployment (hardware config + memory substrate).
    pub layer: AcceleratorLayer,
    /// Host power that remains on the books while the accelerators run
    /// (PSAS keeps the whole socket awake; memory-side systems only a
    /// sliver for the waiting core).
    pub host_assist_power: Watts,
}

impl AcceleratedPlatform {
    /// Processor-side accelerated system.
    pub fn psas() -> Self {
        let base = AcceleratorLayer::mealib_default();
        // Same PE models, but behind the processor's memory system and
        // with the core count a socket-side block could afford.
        let hw = base.hw().with_cores(8);
        let layer = AcceleratorLayer::with_parts(
            base.mesh().clone(),
            base.tiles().to_vec(),
            hw,
            MemoryConfig::ddr_dual_channel(),
        )
        .with_dma_scale(1.6);
        Self {
            name: "PSAS".into(),
            layer,
            host_assist_power: Watts::new(12.0),
        }
    }

    /// 2D memory-side accelerated system (NDA-class).
    pub fn msas() -> Self {
        let base = AcceleratorLayer::mealib_default();
        let mut mem = MemoryConfig::msas_dram();
        // NDA transport sits on the DRAM device, cheaper than pins.
        mem.energy.e_byte_transport = mealib_types::Joules::from_picos(12.0);
        let layer = AcceleratorLayer::with_parts(
            base.mesh().clone(),
            base.tiles().to_vec(),
            base.hw().with_cores(16),
            mem,
        );
        Self {
            name: "MSAS".into(),
            layer,
            host_assist_power: Watts::new(5.0),
        }
    }

    /// The MEALib system itself.
    pub fn mealib() -> Self {
        Self {
            name: "MEALib".into(),
            layer: AcceleratorLayer::mealib_default(),
            host_assist_power: Watts::new(3.0),
        }
    }

    /// Runs one operation, charging the host-assist power on top of the
    /// accelerator-side energy.
    pub fn run(&self, op: &AccelParams) -> ExecReport {
        let mut report = self.layer.execute(op);
        report.energy += self.host_assist_power.for_duration(report.time);
        report
    }

    /// Total energy of one run including assists (already folded into
    /// [`AcceleratedPlatform::run`]'s report; kept for clarity in
    /// breakdowns).
    pub fn assist_energy(&self, report: &ExecReport) -> Joules {
        self.host_assist_power.for_duration(report.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemv() -> AccelParams {
        AccelParams::Gemv { m: 16384, n: 16384 }
    }

    #[test]
    fn bandwidth_ladder_orders_the_platforms() {
        let psas = AcceleratedPlatform::psas();
        let msas = AcceleratedPlatform::msas();
        let mealib = AcceleratedPlatform::mealib();
        let t_psas = psas.run(&gemv()).time;
        let t_msas = msas.run(&gemv()).time;
        let t_mealib = mealib.run(&gemv()).time;
        assert!(
            t_psas > t_msas,
            "PSAS slower than MSAS: {t_psas} vs {t_msas}"
        );
        assert!(
            t_msas > t_mealib,
            "MSAS slower than MEALib: {t_msas} vs {t_mealib}"
        );
    }

    #[test]
    fn mealib_wins_energy_efficiency_too() {
        let ops = [
            gemv(),
            AccelParams::Fft {
                n: 8192,
                batch: 8192,
            },
            AccelParams::Axpy {
                n: 1 << 28,
                alpha: 1.0,
                incx: 1,
                incy: 1,
            },
        ];
        for op in ops {
            let psas = AcceleratedPlatform::psas().run(&op);
            let mealib = AcceleratedPlatform::mealib().run(&op);
            assert!(
                mealib.energy.get() < psas.energy.get(),
                "{:?}: MEALib {} vs PSAS {}",
                op.kind(),
                mealib.energy,
                psas.energy
            );
        }
    }

    #[test]
    fn host_assist_is_charged() {
        let p = AcceleratedPlatform::psas();
        let r = p.run(&gemv());
        let assist = p.assist_energy(&r);
        assert!(assist.get() > 0.0);
        assert!(r.energy.get() > assist.get());
    }
}
