//! Experiment preflight: the `mealint` passes run against the live setup.
//!
//! Before the Figure 9/10 comparison touches any model, the same
//! static-verification passes that back the `mealint` CLI are run over
//! the *actual* objects the experiment is about to use:
//!
//! 1. **TDL semantics** and 2. **descriptor image** — a representative
//!    chained program is planned through a real [`mealib_runtime::Runtime`]
//!    (which verifies under its default [`VerifyMode::Enforce`]), so the
//!    encode path the accelerated platforms depend on is exercised
//!    end-to-end;
//! 3. **memory-config validation** — every accelerated platform's
//!    [`MemoryConfig`] is checked, including the bijectivity proof of its
//!    address interleaving;
//! 4. **physical-memory consistency** — the runtime driver's allocator
//!    and address-space map are audited against the §4.2 asymmetric DIMM
//!    mapping that places the command space on the near DIMM;
//! 5. **dataflow & coherence** — a representative explicit session
//!    following the canonical host protocol (initialize, flush, run,
//!    flush, read back) is run through the MEA1xx dataflow analysis;
//! 6. **static cost & capacity bounds** — the same session, with its
//!    buffer extents and the experiment's time/energy envelope
//!    declared, is certified by the MEA2xx bounds analyzer: peak
//!    footprint vs. stack capacity, demanded throughput vs. the layer
//!    roofline, vault skew, and the modeled energy floor;
//! 7. **multi-tenant interference certification** — a two-tenant
//!    session-set manifest with disjoint vault partitions and declared
//!    budgets is composed by the MEA3xx certifier, which must come
//!    back a clean ADMIT: the sharing configuration the runtime models
//!    is itself admissible.
//!
//! The verdict is computed once per process and cached; the fast path of
//! [`crate::experiment::run_experiment`] under [`VerifyMode::Enforce`] is
//! a single atomic load, and `VerifyMode::Off` bypasses it.
//!
//! [`VerifyMode::Enforce`]: mealib_runtime::VerifyMode::Enforce
//! [`MemoryConfig`]: mealib_memsim::MemoryConfig

use std::sync::OnceLock;

use mealib_accel::AccelParams;
use mealib_memsim::address;
use mealib_runtime::{Runtime, RuntimeError};
use mealib_tdl::ParamBag;
use mealib_types::{Bytes, PhysAddr, Report};

use crate::platforms::AcceleratedPlatform;

/// Runs all seven verification passes over the experiment setup and
/// returns the combined report (errors *and* warnings).
pub fn preflight() -> Report {
    let mut report = Report::new();

    // Pass 3: every accelerated platform's memory substrate.
    for platform in [
        AcceleratedPlatform::psas(),
        AcceleratedPlatform::msas(),
        AcceleratedPlatform::mealib(),
    ] {
        report.merge(mealib_verify::memsim::verify_memconfig(
            platform.layer.mem(),
        ));
    }

    // Passes 1 + 2: plan a representative chained program through the
    // runtime. `acc_plan` verifies TDL semantics and the encoded
    // descriptor image under the default Enforce mode.
    let mut rt = Runtime::new();
    rt.mem_alloc("pre.x", Bytes::from_mib(4))
        .expect("preflight buffer fits the default stack");
    rt.mem_alloc("pre.y", Bytes::from_mib(4))
        .expect("preflight buffer fits the default stack");
    let mut params = ParamBag::new();
    params.insert(
        "fft.para".into(),
        AccelParams::Fft { n: 256, batch: 4 }.to_bytes(),
    );
    params.insert(
        "reshp.para".into(),
        AccelParams::Reshp {
            rows: 64,
            cols: 64,
            elem_bytes: 4,
        }
        .to_bytes(),
    );
    let tdl = "LOOP 2 { \
         PASS in=pre.x out=pre.y { \
           COMP FFT params=\"fft.para\" \
           COMP RESHP params=\"reshp.para\" \
         } }";
    match rt.acc_plan(tdl, &params) {
        Ok(_) => {
            if let Some(r) = rt.last_verify_report() {
                report.merge(r.clone());
            }
        }
        Err(RuntimeError::Verify(r)) => report.merge(r),
        Err(other) => panic!("preflight fixture failed outside verification: {other}"),
    }

    // Pass 4: audit the driver's allocator and vmap against the §4.2
    // asymmetric layout (near DIMM below the 8 GiB stack base).
    let mapping = address::asymmetric_dimms(PhysAddr::new(8 << 30));
    report.merge(mealib_verify::physmem::verify_snapshot(
        &rt.driver().snapshot(),
        Some(&mapping),
    ));

    // Pass 5: the dataflow & coherence analysis over the same chained
    // program, wrapped in the canonical host protocol.
    let session = "\
HOST WRITE pre.x
FLUSH
LOOP 2 {
  PASS in=pre.x out=pre.y {
    COMP FFT params=\"fft.para\"
    COMP RESHP params=\"reshp.para\"
  }
}
FLUSH
HOST READ pre.y
";
    match mealib_verify::dataflow::verify_source(session, &mealib_verify::DataflowEnv::default()) {
        Ok(r) => report.merge(r),
        Err(e) => panic!("preflight session fixture failed to parse: {e}"),
    }

    // Pass 6: the MEA2xx static cost & capacity certification over the
    // same session, with the buffer extents the runtime allocated and a
    // generous-but-finite time/energy envelope declared so every bounds
    // pass actually certifies something.
    let bounded = format!(
        "BUF pre.x 0x1000 0x400000\n\
         BUF pre.y 0x401000 0x400000\n\
         BUDGET TIME 1.0\n\
         BUDGET ENERGY 10.0\n\
         {session}"
    );
    match mealib_verify::dataflow::parse_session(&bounded) {
        Ok(s) => report.merge(mealib_verify::bounds::verify_session_bounds(
            &s,
            &mealib_verify::bounds::BoundsEnv::default(),
        )),
        Err(e) => panic!("preflight bounds fixture failed to parse: {e}"),
    }

    // Pass 7: the MEA3xx multi-tenant interference certification over
    // a two-tenant session set sharing the stack — disjoint vault
    // partitions, phased arrivals, per-tenant and aggregate budgets.
    // The shipped fixture must not just avoid findings: it must prove
    // ADMIT, or the admission story the runtime advertises is hollow.
    let set = match mealib_verify::interference::parse_session_set(TENANT_FIXTURE) {
        Ok(s) => s,
        Err(e) => panic!("preflight session-set fixture failed to parse: {e}"),
    };
    let cert = mealib_verify::interference::certify_set(&set, &mealib_verify::BoundsEnv::default())
        .expect("preset environment validates");
    if cert.verdict != mealib_verify::Verdict::Admit {
        report.push(mealib_types::Diagnostic::error(
            mealib_types::ErrorCode::InterfereBusOversubscribed,
            format!(
                "preflight session-set fixture failed admission: verdict {}",
                cert.verdict
            ),
        ));
    }
    report.merge(cert.report);

    report
}

/// The pass-7 fixture: two phased tenants in disjoint vault
/// partitions, with budgets generous enough that the certified upper
/// bounds prove admission outright.
const TENANT_FIXTURE: &str = "\
BUDGET TIME 10.0
BUDGET ENERGY 100.0
TENANT fft
PARTITION 0x0 0x800000
ARRIVAL 0
BUDGET TIME 10.0
BUF t0.x 0x1000 0x200000
BUF t0.y 0x201000 0x200000
LOOP 2 {
  PASS in=t0.x out=t0.y {
    COMP FFT params=\"fft.para\"
  }
}
TENANT axpy
PARTITION 0x800000 0x800000
ARRIVAL 128
BUDGET TIME 10.0
BUF t1.x 0x801000 0x200000
BUF t1.y 0xa01000 0x200000
PASS in=t1.x out=t1.y {
  COMP AXPY params=\"axpy.para\"
}
";

static VERDICT: OnceLock<Result<(), Report>> = OnceLock::new();

/// The cached preflight verdict: `Ok(())` if no pass reported an error,
/// otherwise the full report. Runs [`preflight`] on first call only.
pub fn preflight_checked() -> Result<(), Report> {
    VERDICT
        .get_or_init(|| {
            let report = preflight();
            if report.has_errors() {
                Err(report)
            } else {
                Ok(())
            }
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_configuration_passes_preflight() {
        let report = preflight();
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn verdict_is_cached_and_clean() {
        assert!(preflight_checked().is_ok());
        // Second call hits the cache; still clean.
        assert!(preflight_checked().is_ok());
    }

    #[test]
    fn bounds_pass_rejects_a_budget_breaking_session() {
        // Pass-6 plumbing: the same fixture shape, but with an energy
        // budget the modeled floor provably exceeds, must draw MEA203.
        let src = "BUF pre.x 0x1000 0x400000\n\
                   BUF pre.y 0x401000 0x400000\n\
                   BUDGET ENERGY 1e-9\n\
                   HOST WRITE pre.x\n\
                   FLUSH\n\
                   LOOP 2 {\n  PASS in=pre.x out=pre.y {\n    COMP FFT params=\"fft.para\"\n  }\n}\n\
                   FLUSH\n\
                   HOST READ pre.y\n";
        let s = mealib_verify::dataflow::parse_session(src).expect("fixture parses");
        let report = mealib_verify::bounds::verify_session_bounds(
            &s,
            &mealib_verify::bounds::BoundsEnv::default(),
        );
        assert!(
            report.has_code(mealib_types::ErrorCode::BoundsEnergyBudget),
            "{report}"
        );
    }

    #[test]
    fn tenant_fixture_is_admitted_outright() {
        // Pass-7 plumbing: the shipped two-tenant fixture must prove
        // ADMIT (not merely avoid findings), and breaking its
        // isolation must flip the verdict to a REJECT with MEA300.
        let set = mealib_verify::interference::parse_session_set(TENANT_FIXTURE).unwrap();
        let cert =
            mealib_verify::interference::certify_set(&set, &mealib_verify::BoundsEnv::default())
                .unwrap();
        assert_eq!(
            cert.verdict,
            mealib_verify::Verdict::Admit,
            "{}",
            cert.report
        );

        let overlapped =
            TENANT_FIXTURE.replace("PARTITION 0x800000 0x800000", "PARTITION 0x400000 0x800000");
        let set = mealib_verify::interference::parse_session_set(&overlapped).unwrap();
        let cert =
            mealib_verify::interference::certify_set(&set, &mealib_verify::BoundsEnv::default())
                .unwrap();
        assert_eq!(cert.verdict, mealib_verify::Verdict::Reject);
        assert!(cert
            .report
            .has_code(mealib_types::ErrorCode::InterferePartitionOverlap));
    }

    #[test]
    fn preflight_catches_a_broken_memory_config() {
        // Not wired through the cache: verify the pass itself rejects a
        // corrupted platform config the way the preflight would.
        let mut platform = AcceleratedPlatform::mealib();
        let mut mem = platform.layer.mem().clone();
        mem.timing.t_rcd = 0;
        platform.layer = mealib_accel::AcceleratorLayer::with_parts(
            platform.layer.mesh().clone(),
            platform.layer.tiles().to_vec(),
            platform.layer.hw().clone(),
            mem,
        );
        let report = mealib_verify::memsim::verify_memconfig(platform.layer.mem());
        assert!(
            report.has_code(mealib_types::ErrorCode::MemZeroParameter),
            "{report}"
        );
    }
}
