//! Plain-text table rendering for the experiment harness binaries.

use core::fmt;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}")?;
                first = false;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders a unicode block-element sparkline of `values` (empty input
/// renders empty). Scaled to the data's own min..max; a flat series
/// renders as all-minimum blocks. Non-finite values clamp to the
/// minimum block rather than poisoning the render.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() || hi <= lo {
                BLOCKS[0]
            } else {
                let t = (v - lo) / (hi - lo);
                BLOCKS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Formats a ratio as the paper's figures label them ("38.1x").
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["op", "speedup"]);
        t.push_row(vec!["AXPY", "13.3x"]);
        t.push_row(vec!["RESHP", "88.4x"]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("op"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("13.3x"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(ratio(38.12), "38.1x");
        assert_eq!(ratio(150.4), "150x");
    }

    #[test]
    fn sparkline_scales_to_its_own_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        // Non-finite values clamp instead of poisoning the render.
        assert_eq!(sparkline(&[0.0, f64::NAN, 1.0]).chars().nth(1), Some('▁'));
    }
}
