//! Parallel experiment sweeps.
//!
//! The Figure 9/10 harnesses run [`run_experiment`](crate::run_experiment)
//! once per Table 2 workload; the design-space and ablation studies run
//! hundreds of independent configurations. Each call is self-contained —
//! it builds its accelerated platforms and its breakdown locally, and the
//! shared pieces ([`TraceRecorder::shared`](mealib_obs::TraceRecorder)
//! sinks, the [`preflight`](crate::preflight) verdict cache, the
//! sanitizer state) are behind `Arc`/`Mutex`/`OnceLock` — so fanning the
//! calls across a bounded worker pool preserves every per-run result
//! bit-for-bit. Only the *interleaving* of recorder events differs, and
//! [`mealib_obs::Breakdown`] merging is commutative, so per-run
//! reconciliation still holds.
//!
//! When a recorder is installed and `jobs > 1`, each run records into a
//! private [`SpoolRecorder`] that is drained into the shared sink with
//! one batched (single-lock) call per run — workers never contend on the
//! sink's mutex per event, only once per experiment.

use mealib_accel::AccelParams;
use mealib_obs::{Obs, SpoolRecorder};

use crate::experiment::{run_experiment, ExperimentOptions, ExperimentReport};

/// Runs `run_experiment` for every op in `ops` across up to `jobs`
/// worker threads, returning per-op results in input order.
///
/// `jobs == 0` resolves to the machine's available parallelism (the
/// workspace-wide [`mealib_types::auto_jobs`] convention); `jobs == 1`
/// runs serially on the calling thread. Results are
/// positionally identical to the serial loop regardless of `jobs`: the
/// scheduling is handled by [`mealib_types::par_map`], which reassembles
/// results by index. Recorder events are spooled per run and delivered
/// to the shared sink in one batch each, so an enabled recorder does not
/// serialize the workers on its mutex.
///
/// When an active [`Sanitizer`](mealib_runtime::Sanitizer) is installed
/// in `opts`, the sweep degrades to serial execution: all runs share the
/// sanitizer's shadow-memory state, and interleaving coherence protocols
/// from concurrent runs would report phantom violations.
pub fn run_sweep(
    ops: &[AccelParams],
    opts: &ExperimentOptions,
    jobs: usize,
) -> Vec<Result<ExperimentReport, mealib_types::Report>> {
    let jobs = if opts.sanitizer.is_active() {
        1
    } else {
        mealib_types::auto_jobs(jobs)
    };
    match (jobs > 1).then(|| opts.obs.recorder()).flatten() {
        Some(sink) => mealib_types::par_map(ops, jobs, move |op| {
            let spool = SpoolRecorder::shared(sink.clone());
            let local = opts.clone().obs(Obs::new(spool.clone()));
            let result = run_experiment(op, &local);
            spool.flush();
            result
        }),
        None => mealib_types::par_map(ops, jobs, |op| run_experiment(op, opts)),
    }
}

/// The sweep fans one `ExperimentOptions` out to all workers by shared
/// reference, so the type must stay shareable across threads. These
/// bindings fail to compile if a non-`Send`/`Sync` field sneaks in.
#[allow(dead_code)]
const fn assert_options_shareable() {
    const fn sendable<T: Send + Sync>() {}
    sendable::<ExperimentOptions>();
    sendable::<ExperimentReport>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::table2_workloads;
    use mealib_obs::{Phase, TraceRecorder};
    use mealib_runtime::Sanitizer;

    fn small_ops() -> Vec<AccelParams> {
        vec![
            AccelParams::Axpy {
                n: 1 << 16,
                alpha: 2.0,
                incx: 1,
                incy: 1,
            },
            AccelParams::Gemv { m: 512, n: 512 },
            AccelParams::Reshp {
                rows: 1024,
                cols: 1024,
                elem_bytes: 4,
            },
        ]
    }

    #[test]
    fn parallel_sweep_matches_serial_per_run() {
        let ops = small_ops();
        let opts = ExperimentOptions::default();
        let serial = run_sweep(&ops, &opts, 1);
        let parallel = run_sweep(&ops, &opts, 4);
        assert_eq!(serial.len(), ops.len());
        assert_eq!(parallel.len(), ops.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let s = s.as_ref().expect("preflight clean");
            let p = p.as_ref().expect("preflight clean");
            assert_eq!(s.comparison, p.comparison);
            assert_eq!(
                s.breakdown.total_time().get().to_bits(),
                p.breakdown.total_time().get().to_bits()
            );
            assert_eq!(
                s.breakdown.total_energy().get().to_bits(),
                p.breakdown.total_energy().get().to_bits()
            );
        }
    }

    #[test]
    fn sweep_preserves_input_order() {
        let ops = table2_workloads();
        let results = run_sweep(&ops, &ExperimentOptions::default(), 8);
        assert_eq!(results.len(), ops.len());
        for (op, result) in ops.iter().zip(&results) {
            let report = result.as_ref().expect("preflight clean");
            assert_eq!(report.comparison.op.kind(), op.kind());
        }
    }

    #[test]
    fn shared_recorder_merges_every_run() {
        // One recorder across a parallel sweep: per-run breakdowns land
        // in the shared sink, and the merged totals equal the sum of the
        // per-run MEALib phases (Breakdown merging is commutative).
        let rec = TraceRecorder::shared();
        let opts = ExperimentOptions::default().recorder(rec.clone());
        let ops = small_ops();
        let results = run_sweep(&ops, &opts, 4);
        let mut want_dma = 0.0;
        for r in &results {
            let report = r.as_ref().expect("preflight clean");
            want_dma += report.breakdown.phase(Phase::Dma).time.get();
        }
        let merged = rec.breakdown();
        assert!(merged.phase(Phase::Dma).time.get() >= want_dma * 0.999);
        assert!(merged.phase(Phase::Compute).time.get() > 0.0);
    }

    #[test]
    fn spooled_parallel_recording_matches_serial_recording() {
        // jobs=1 records straight into the sink; jobs=4 goes through the
        // per-worker spools. Integer counters must agree exactly (u64
        // sums commute); float totals agree up to summation order.
        let ops = small_ops();
        let serial_rec = TraceRecorder::shared();
        let serial = run_sweep(
            &ops,
            &ExperimentOptions::default().recorder(serial_rec.clone()),
            1,
        );
        let par_rec = TraceRecorder::shared();
        let parallel = run_sweep(
            &ops,
            &ExperimentOptions::default().recorder(par_rec.clone()),
            4,
        );
        for (s, p) in serial.iter().zip(&parallel) {
            let s = s.as_ref().expect("preflight clean");
            let p = p.as_ref().expect("preflight clean");
            assert_eq!(s.comparison, p.comparison, "results must not change");
        }
        let s = serial_rec.breakdown();
        let p = par_rec.breakdown();
        for c in [
            mealib_obs::Counter::DramAct,
            mealib_obs::Counter::DramRdBytes,
            mealib_obs::Counter::CuPasses,
            mealib_obs::Counter::NocFlits,
        ] {
            assert_eq!(s.counter(c), p.counter(c), "{c:?}");
        }
        let (st, pt) = (s.total_time().get(), p.total_time().get());
        assert!((st - pt).abs() <= 1e-9 * st.abs(), "{st} vs {pt}");
    }

    #[test]
    fn active_sanitizer_forces_serial_and_stays_clean() {
        let opts = ExperimentOptions::default().sanitizer(Sanitizer::active());
        let ops = small_ops();
        let results = run_sweep(&ops, &opts, 8);
        for r in results {
            let report = r.expect("preflight clean");
            let san = report.sanitizer.expect("active sanitizer records");
            assert!(san.is_clean(), "{}", san.render());
        }
    }
}
