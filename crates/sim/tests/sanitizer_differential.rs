//! Differential testing of the static dataflow analysis against the
//! runtime shadow-memory sanitizer.
//!
//! Every program in `crates/verify/corpus/bad` carries a deliberate
//! dataflow or coherence defect whose MEA1xx code is encoded in the
//! filename (`mea103_missing_flush.tdl` promises MEA103). Each has a
//! minimally-fixed clean twin under `corpus/clean` with the same
//! filename. The static analyzer and the sanitizer replay must agree
//! on every program in both corpora: the bad file draws its promised
//! code from *both* layers, and the clean twin draws nothing from
//! either. MEA2xx (cost/capacity-budget) programs are the exception:
//! they are protocol-clean by construction, so both coherence layers
//! must agree they are clean while the static *bounds* analyzer draws
//! the promised code.

use std::path::{Path, PathBuf};

use mealib_sim::run_sanitizer_experiment;
use mealib_types::ErrorCode;

fn corpus_dir(kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("verify")
        .join("corpus")
        .join(kind)
}

fn corpus_files(kind: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir(kind))
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tdl"))
        .collect();
    files.sort();
    assert!(files.len() >= 8, "corpus {kind} too small: {}", files.len());
    files
}

/// `mea103_missing_flush.tdl` -> `ErrorCode::DfStaleRead`.
fn expected_code(path: &Path) -> ErrorCode {
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("utf-8 file name");
    let number: u16 = name[3..6].parse().expect("meaNNN_ file name prefix");
    *ErrorCode::ALL
        .iter()
        .find(|c| c.number() == number)
        .unwrap_or_else(|| panic!("{name}: no such code MEA{number}"))
}

#[test]
fn bad_corpus_verdicts_agree_and_include_the_promised_code() {
    for path in corpus_files("bad") {
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let v = run_sanitizer_experiment(&src)
            .unwrap_or_else(|e| panic!("{}: parse error {e}", path.display()));
        let expected = expected_code(&path);
        if expected.band() == "MEA2xx" {
            // Cost/capacity-budget defects are *static-only*
            // properties: the programs follow the coherence protocol,
            // so the sanitizer replay must stay clean and agree with
            // the (dataflow-scoped) static half. Their MEA2xx coverage
            // lives in the mealib-verify bounds corpus tests.
            assert!(
                mealib_verify::bounds::verify_source_bounds(&src).has_code(expected),
                "{}: bounds analysis missed {expected}",
                path.display()
            );
            assert!(
                v.dynamic_codes().is_empty(),
                "{}: sanitizer flagged a protocol-clean bounds program\n{}",
                path.display(),
                v.dynamic_report
            );
            assert!(v.agree(), "{}: verdicts disagree", path.display());
            continue;
        }
        assert!(
            v.static_codes().contains(&expected),
            "{}: static analysis missed {expected}, got {:?}\n{}",
            path.display(),
            v.static_codes(),
            v.static_report
        );
        assert!(
            v.dynamic_codes().contains(&expected),
            "{}: sanitizer missed {expected}, got {:?}\n{}",
            path.display(),
            v.dynamic_codes(),
            v.dynamic_report
        );
        assert!(
            v.agree(),
            "{}: verdicts disagree\nstatic: {:?}\ndynamic: {:?}",
            path.display(),
            v.static_codes(),
            v.dynamic_codes()
        );
    }
}

#[test]
fn clean_corpus_verdicts_agree_clean() {
    for path in corpus_files("clean") {
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let v = run_sanitizer_experiment(&src)
            .unwrap_or_else(|e| panic!("{}: parse error {e}", path.display()));
        assert!(
            v.static_codes().is_empty(),
            "{}: static analysis flagged a clean twin\n{}",
            path.display(),
            v.static_report
        );
        assert!(
            v.dynamic_codes().is_empty(),
            "{}: sanitizer flagged a clean twin\n{}",
            path.display(),
            v.dynamic_report
        );
        assert!(v.agree(), "{}: verdicts disagree", path.display());
    }
}

#[test]
fn every_bad_file_has_a_clean_twin_and_vice_versa() {
    let names = |kind: &str| -> Vec<String> {
        corpus_files(kind)
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect()
    };
    assert_eq!(names("bad"), names("clean"));
}

#[test]
fn sanitized_table2_workloads_stay_clean() {
    use mealib_sim::experiment::{run_experiment, table2_workloads, ExperimentOptions};
    use mealib_sim::Sanitizer;

    for op in table2_workloads() {
        let opts = ExperimentOptions::default().sanitizer(Sanitizer::active());
        let report = run_experiment(&op, &opts).expect("experiment runs");
        let san = report.sanitizer.expect("sanitizer report recorded");
        assert!(
            san.is_clean(),
            "{:?}: sanitized workload must replay clean\n{san}",
            op.kind()
        );
    }
}
