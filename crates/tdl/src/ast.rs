//! TDL abstract syntax.

use core::fmt;

/// The accelerators of Table 1, used as TDL `COMP` opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AcceleratorKind {
    /// Vector scaling and add (`cblas_saxpy`).
    Axpy,
    /// Dot product (`cblas_sdot`, `cblas_cdotc_sub`).
    Dot,
    /// General matrix-vector multiply (`cblas_sgemv`).
    Gemv,
    /// Sparse matrix-vector multiply (`mkl_scsrgemv`).
    Spmv,
    /// Data resampling (`dfsInterpolate1D`).
    Resmp,
    /// Fast Fourier transform (`fftwf_execute`).
    Fft,
    /// Matrix transpose / data reshape (`mkl_simatcopy`); lives on the
    /// DRAM logic layer's reshape infrastructure.
    Reshp,
}

impl AcceleratorKind {
    /// All accelerator kinds, in opcode order.
    pub const ALL: [AcceleratorKind; 7] = [
        AcceleratorKind::Axpy,
        AcceleratorKind::Dot,
        AcceleratorKind::Gemv,
        AcceleratorKind::Spmv,
        AcceleratorKind::Resmp,
        AcceleratorKind::Fft,
        AcceleratorKind::Reshp,
    ];

    /// The descriptor opcode for this accelerator.
    pub fn opcode(self) -> u8 {
        match self {
            AcceleratorKind::Axpy => 0x01,
            AcceleratorKind::Dot => 0x02,
            AcceleratorKind::Gemv => 0x03,
            AcceleratorKind::Spmv => 0x04,
            AcceleratorKind::Resmp => 0x05,
            AcceleratorKind::Fft => 0x06,
            AcceleratorKind::Reshp => 0x07,
        }
    }

    /// Inverse of [`AcceleratorKind::opcode`].
    pub fn from_opcode(op: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.opcode() == op)
    }

    /// The TDL keyword for this accelerator.
    pub fn keyword(self) -> &'static str {
        match self {
            AcceleratorKind::Axpy => "AXPY",
            AcceleratorKind::Dot => "DOT",
            AcceleratorKind::Gemv => "GEMV",
            AcceleratorKind::Spmv => "SPMV",
            AcceleratorKind::Resmp => "RESMP",
            AcceleratorKind::Fft => "FFT",
            AcceleratorKind::Reshp => "RESHP",
        }
    }

    /// Parses a TDL keyword (case-sensitive, as emitted by the compiler).
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.keyword() == kw)
    }
}

impl fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A `COMP` block: one accelerator invocation and the parameter file
/// holding its API arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompBlock {
    /// Which accelerator to invoke.
    pub accel: AcceleratorKind,
    /// Name of the parameter file in the descriptor's parameter region.
    pub params: String,
}

impl CompBlock {
    /// Creates a `COMP` block.
    pub fn new(accel: AcceleratorKind, params: impl Into<String>) -> Self {
        Self {
            accel,
            params: params.into(),
        }
    }
}

impl fmt::Display for CompBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COMP {} params=\"{}\"", self.accel, self.params)
    }
}

/// A `PASS` block: a chain of comps forming one hardware datapath, with
/// its own input and output buffers. Data flows from the first comp
/// (which fetches from main memory) through the chain to the last comp
/// (which stores back), §2.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassBlock {
    /// Name of the input buffer.
    pub input: String,
    /// Name of the output buffer.
    pub output: String,
    /// The chained accelerator invocations.
    pub comps: Vec<CompBlock>,
}

impl PassBlock {
    /// Creates a `PASS` block.
    ///
    /// # Panics
    ///
    /// Panics if `comps` is empty — a pass must describe at least one
    /// invocation.
    pub fn new(input: impl Into<String>, output: impl Into<String>, comps: Vec<CompBlock>) -> Self {
        assert!(!comps.is_empty(), "a PASS must contain at least one COMP");
        Self {
            input: input.into(),
            output: output.into(),
            comps,
        }
    }

    /// Number of accelerator invocations in this pass.
    pub fn invocations(&self) -> u64 {
        self.comps.len() as u64
    }

    /// Returns `true` if the pass chains more than one accelerator.
    pub fn is_chained(&self) -> bool {
        self.comps.len() > 1
    }
}

impl fmt::Display for PassBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PASS in={} out={} {{", self.input, self.output)?;
        for c in &self.comps {
            writeln!(f, "    {c}")?;
        }
        write!(f, "}}")
    }
}

/// A `LOOP` block: its passes execute `count` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBlock {
    /// Iteration count.
    pub count: u64,
    /// Passes repeated each iteration.
    pub body: Vec<PassBlock>,
}

impl LoopBlock {
    /// Creates a `LOOP` block.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the body is empty.
    pub fn new(count: u64, body: Vec<PassBlock>) -> Self {
        assert!(count > 0, "a LOOP must iterate at least once");
        assert!(!body.is_empty(), "a LOOP must contain at least one PASS");
        Self { count, body }
    }
}

impl fmt::Display for LoopBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LOOP {} {{", self.count)?;
        for p in &self.body {
            for line in p.to_string().lines() {
                writeln!(f, "    {line}")?;
            }
        }
        write!(f, "}}")
    }
}

/// A top-level TDL item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdlItem {
    /// A pass executed once.
    Pass(PassBlock),
    /// A loop of passes.
    Loop(LoopBlock),
}

impl fmt::Display for TdlItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdlItem::Pass(p) => p.fmt(f),
            TdlItem::Loop(l) => l.fmt(f),
        }
    }
}

/// A complete TDL program — the payload of one accelerator descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TdlProgram {
    /// Top-level items, executed in order.
    pub items: Vec<TdlItem>,
}

impl TdlProgram {
    /// Creates a program from items.
    pub fn new(items: Vec<TdlItem>) -> Self {
        Self { items }
    }

    /// Total accelerator invocations, counting loop multipliers — this is
    /// the number of library calls the descriptor compacts (the paper's
    /// "16 M calls → one descriptor").
    pub fn total_invocations(&self) -> u64 {
        self.items
            .iter()
            .map(|item| match item {
                TdlItem::Pass(p) => p.invocations(),
                TdlItem::Loop(l) => {
                    l.count * l.body.iter().map(PassBlock::invocations).sum::<u64>()
                }
            })
            .sum()
    }

    /// Number of *static* instructions (pass/loop structure flattened,
    /// loop bodies counted once) — what the Instruction Region stores.
    pub fn static_invocations(&self) -> u64 {
        self.items
            .iter()
            .map(|item| match item {
                TdlItem::Pass(p) => p.invocations(),
                TdlItem::Loop(l) => l.body.iter().map(PassBlock::invocations).sum::<u64>(),
            })
            .sum()
    }

    /// All passes in program order, with loop bodies flattened (counted
    /// once, like [`TdlProgram::static_invocations`]).
    pub fn passes(&self) -> impl Iterator<Item = &PassBlock> {
        self.items.iter().flat_map(|item| match item {
            TdlItem::Pass(p) => std::slice::from_ref(p).iter(),
            TdlItem::Loop(l) => l.body.iter(),
        })
    }

    /// All parameter-file names referenced, in first-use order without
    /// duplicates.
    pub fn param_files(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in self.passes() {
            for c in &p.comps {
                if !out.contains(&c.params.as_str()) {
                    out.push(&c.params);
                }
            }
        }
        out
    }

    /// Returns `true` if the program contains no invocations.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Semantic validation beyond what construction enforces: chain
    /// depth must fit the per-tile switch fan-in, and the dynamic
    /// invocation count must stay within the descriptor's sequencing
    /// range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, max_chain: usize) -> Result<(), String> {
        for p in self.passes() {
            if p.comps.len() > max_chain {
                return Err(format!(
                    "pass `{} -> {}` chains {} accelerators but the tile switch fans in {max_chain}",
                    p.input,
                    p.output,
                    p.comps.len()
                ));
            }
            if p.input == p.output && p.is_chained() {
                return Err(format!(
                    "chained pass cannot stream in place (buffer `{}` is both input and output)",
                    p.input
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for TdlProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "{item}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TdlProgram {
        TdlProgram::new(vec![
            TdlItem::Pass(PassBlock::new(
                "a",
                "b",
                vec![
                    CompBlock::new(AcceleratorKind::Reshp, "reshape.para"),
                    CompBlock::new(AcceleratorKind::Fft, "fft.para"),
                ],
            )),
            TdlItem::Loop(LoopBlock::new(
                128,
                vec![PassBlock::new(
                    "w",
                    "p",
                    vec![CompBlock::new(AcceleratorKind::Dot, "dot.para")],
                )],
            )),
        ])
    }

    #[test]
    fn opcode_round_trip() {
        for k in AcceleratorKind::ALL {
            assert_eq!(AcceleratorKind::from_opcode(k.opcode()), Some(k));
            assert_eq!(AcceleratorKind::from_keyword(k.keyword()), Some(k));
        }
        assert_eq!(AcceleratorKind::from_opcode(0xff), None);
        assert_eq!(AcceleratorKind::from_keyword("NOPE"), None);
    }

    #[test]
    fn invocation_counting() {
        let p = sample();
        assert_eq!(p.total_invocations(), 2 + 128);
        assert_eq!(p.static_invocations(), 3);
    }

    #[test]
    fn param_files_deduplicated_in_order() {
        let p = sample();
        assert_eq!(
            p.param_files(),
            vec!["reshape.para", "fft.para", "dot.para"]
        );
    }

    #[test]
    fn chaining_detection() {
        let p = sample();
        match &p.items[0] {
            TdlItem::Pass(pass) => assert!(pass.is_chained()),
            _ => panic!("expected pass"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one COMP")]
    fn empty_pass_rejected() {
        let _ = PassBlock::new("a", "b", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_loop_rejected() {
        let _ = LoopBlock::new(
            0,
            vec![PassBlock::new(
                "a",
                "b",
                vec![CompBlock::new(AcceleratorKind::Fft, "f")],
            )],
        );
    }

    #[test]
    fn validate_accepts_reasonable_programs() {
        assert!(sample().validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_overlong_chains() {
        let p = TdlProgram::new(vec![TdlItem::Pass(PassBlock::new(
            "a",
            "b",
            vec![
                CompBlock::new(AcceleratorKind::Resmp, "r"),
                CompBlock::new(AcceleratorKind::Fft, "f"),
                CompBlock::new(AcceleratorKind::Reshp, "t"),
            ],
        ))]);
        let err = p.validate(2).unwrap_err();
        assert!(err.contains("chains 3"), "{err}");
        assert!(p.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_in_place_chains() {
        let p = TdlProgram::new(vec![TdlItem::Pass(PassBlock::new(
            "buf",
            "buf",
            vec![
                CompBlock::new(AcceleratorKind::Resmp, "r"),
                CompBlock::new(AcceleratorKind::Fft, "f"),
            ],
        ))]);
        let err = p.validate(4).unwrap_err();
        assert!(err.contains("in place"), "{err}");
    }

    #[test]
    fn display_is_stable() {
        let text = sample().to_string();
        assert!(text.contains("PASS in=a out=b {"));
        assert!(text.contains("COMP RESHP params=\"reshape.para\""));
        assert!(text.contains("LOOP 128 {"));
    }
}
