//! The binary accelerator descriptor (§2.3).
//!
//! The descriptor is a physically contiguous memory image with three
//! regions:
//!
//! * **Control Region (CR)** — magic, control command (`START`), and the
//!   instruction count;
//! * **Instruction Region (IR)** — fixed 16-byte instructions: either an
//!   accelerator invocation (opcode + parameter size + parameter address)
//!   or a control instruction (`PASS_BEGIN`/`PASS_END`,
//!   `LOOP_BEGIN`/`LOOP_END`);
//! * **Parameter Region (PR)** — the concatenated parameter files
//!   referenced by accelerator instructions.
//!
//! The runtime resolves TDL buffer names to physical addresses before
//! encoding, so the binary image carries addresses (what the hardware
//! DMA needs), while the TDL text carries names (what the compiler
//! emits).

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{AcceleratorKind, TdlItem, TdlProgram};

/// Named parameter blobs referenced by `COMP params="…"` clauses.
pub type ParamBag = BTreeMap<String, Vec<u8>>;

/// Control-region magic, `"MEAL"` little-endian.
pub const MAGIC: u32 = 0x4D45_414C;
/// The only control command: start execution.
pub const CMD_START: u32 = 1;
/// Size of the control region in bytes.
pub const CR_BYTES: usize = 16;
/// Size of one IR instruction in bytes.
pub const INSTR_BYTES: usize = 16;
/// Required alignment of parameter blobs within the PR.
pub const PARAM_ALIGN: usize = 8;

/// Control opcode: begin a pass.
pub const OP_PASS_BEGIN: u8 = 0x10;
/// Control opcode: end the current pass.
pub const OP_PASS_END: u8 = 0x11;
/// Control opcode: begin a loop.
pub const OP_LOOP_BEGIN: u8 = 0x12;
/// Control opcode: end the innermost loop.
pub const OP_LOOP_END: u8 = 0x13;

/// Errors produced while encoding or decoding a descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescriptorError {
    /// A `COMP` referenced a parameter file absent from the bag.
    MissingParamFile {
        /// The missing file name.
        name: String,
    },
    /// A TDL buffer name had no physical address in the resolver map.
    UnresolvedBuffer {
        /// The unresolved buffer name.
        name: String,
    },
    /// The binary image is shorter than its headers claim.
    Truncated,
    /// The control region magic is wrong.
    BadMagic,
    /// An instruction has an opcode outside the ISA.
    UnknownOpcode {
        /// The unknown opcode byte.
        opcode: u8,
    },
    /// `PASS`/`LOOP` begin/end markers are not properly nested.
    UnbalancedBlocks,
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::MissingParamFile { name } => {
                write!(f, "parameter file `{name}` not provided")
            }
            DescriptorError::UnresolvedBuffer { name } => {
                write!(f, "buffer `{name}` has no physical address")
            }
            DescriptorError::Truncated => f.write_str("descriptor image is truncated"),
            DescriptorError::BadMagic => f.write_str("descriptor magic mismatch"),
            DescriptorError::UnknownOpcode { opcode } => {
                write!(f, "unknown instruction opcode {opcode:#04x}")
            }
            DescriptorError::UnbalancedBlocks => f.write_str("pass/loop markers are unbalanced"),
        }
    }
}

impl std::error::Error for DescriptorError {}

/// A decoded IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedInstr {
    /// Begin a pass reading from the given physical input address;
    /// `comps` accelerator instructions follow.
    PassBegin {
        /// Number of chained accelerator invocations in the pass.
        comps: u32,
        /// Physical address of the pass input buffer.
        input_addr: u64,
    },
    /// End the current pass, storing to the given physical address.
    PassEnd {
        /// Physical address of the pass output buffer.
        output_addr: u64,
    },
    /// Begin a loop of `count` iterations.
    LoopBegin {
        /// Iteration count.
        count: u64,
    },
    /// End the innermost loop.
    LoopEnd,
    /// Invoke one accelerator with parameters at `param_addr` (offset
    /// into the PR) of `param_size` bytes.
    Accel {
        /// Which accelerator.
        kind: AcceleratorKind,
        /// Parameter blob length.
        param_size: u32,
        /// Parameter blob offset within the PR.
        param_addr: u64,
    },
}

/// An encoded accelerator descriptor: the byte image the host writes to
/// the command space, plus decode helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Descriptor {
    bytes: Vec<u8>,
}

impl Descriptor {
    /// Encodes `program` with parameter blobs from `params` and buffer
    /// addresses from `buffers`.
    ///
    /// # Errors
    ///
    /// Returns [`DescriptorError::MissingParamFile`] or
    /// [`DescriptorError::UnresolvedBuffer`] when a reference cannot be
    /// satisfied.
    pub fn encode(
        program: &TdlProgram,
        params: &ParamBag,
        buffers: &BTreeMap<String, u64>,
    ) -> Result<Self, DescriptorError> {
        // Lay out the PR first so accelerator instructions can point at it.
        let mut pr: Vec<u8> = Vec::new();
        let mut offsets: BTreeMap<&str, (u64, u32)> = BTreeMap::new();
        for name in program.param_files() {
            let blob = params
                .get(name)
                .ok_or_else(|| DescriptorError::MissingParamFile {
                    name: name.to_string(),
                })?;
            let off = pr.len() as u64;
            pr.extend_from_slice(blob);
            while !pr.len().is_multiple_of(8) {
                pr.push(0);
            }
            offsets.insert(name, (off, blob.len() as u32));
        }

        let resolve = |name: &str| -> Result<u64, DescriptorError> {
            buffers
                .get(name)
                .copied()
                .ok_or_else(|| DescriptorError::UnresolvedBuffer {
                    name: name.to_string(),
                })
        };

        let mut ir: Vec<u8> = Vec::new();
        let mut emit = |opcode: u8, a: u32, b: u64| {
            ir.push(opcode);
            ir.extend_from_slice(&[0u8; 3]);
            ir.extend_from_slice(&a.to_le_bytes());
            ir.extend_from_slice(&b.to_le_bytes());
        };

        let encode_pass = |pass: &crate::ast::PassBlock,
                           emit: &mut dyn FnMut(u8, u32, u64)|
         -> Result<(), DescriptorError> {
            emit(
                OP_PASS_BEGIN,
                pass.comps.len() as u32,
                resolve(&pass.input)?,
            );
            for comp in &pass.comps {
                let (off, size) = offsets[comp.params.as_str()];
                emit(comp.accel.opcode(), size, off);
            }
            emit(OP_PASS_END, 0, resolve(&pass.output)?);
            Ok(())
        };

        for item in &program.items {
            match item {
                TdlItem::Pass(p) => encode_pass(p, &mut emit)?,
                TdlItem::Loop(l) => {
                    emit(OP_LOOP_BEGIN, 0, l.count);
                    for p in &l.body {
                        encode_pass(p, &mut emit)?;
                    }
                    emit(OP_LOOP_END, 0, 0);
                }
            }
        }

        let instr_count = (ir.len() / INSTR_BYTES) as u32;
        let mut bytes = Vec::with_capacity(CR_BYTES + ir.len() + pr.len());
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&CMD_START.to_le_bytes());
        bytes.extend_from_slice(&instr_count.to_le_bytes());
        bytes.extend_from_slice(&((CR_BYTES + ir.len()) as u32).to_le_bytes()); // PR offset
        bytes.extend_from_slice(&ir);
        bytes.extend_from_slice(&pr);
        Ok(Self { bytes })
    }

    /// The raw byte image (what gets copied into the command space).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total size of the descriptor image.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of IR instructions.
    pub fn instr_count(&self) -> u32 {
        u32::from_le_bytes(self.bytes[8..12].try_into().expect("CR is 16 bytes"))
    }

    /// Decodes the instruction region, validating structure.
    ///
    /// # Errors
    ///
    /// Returns a [`DescriptorError`] if the image is malformed.
    pub fn decode(&self) -> Result<Vec<DecodedInstr>, DescriptorError> {
        Self::decode_bytes(&self.bytes)
    }

    /// Decodes a raw descriptor image (e.g. read back from the command
    /// space by the Configuration Unit's fetch unit).
    ///
    /// # Errors
    ///
    /// Returns a [`DescriptorError`] if the image is malformed.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Vec<DecodedInstr>, DescriptorError> {
        if bytes.len() < CR_BYTES {
            return Err(DescriptorError::Truncated);
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("len checked"));
        if magic != MAGIC {
            return Err(DescriptorError::BadMagic);
        }
        let instr_count =
            u32::from_le_bytes(bytes[8..12].try_into().expect("len checked")) as usize;
        let pr_offset = u32::from_le_bytes(bytes[12..16].try_into().expect("len checked")) as usize;
        if bytes.len() < CR_BYTES + instr_count * INSTR_BYTES || bytes.len() < pr_offset {
            return Err(DescriptorError::Truncated);
        }

        let mut out = Vec::with_capacity(instr_count);
        let mut pass_depth = 0i32;
        let mut loop_depth = 0i32;
        for i in 0..instr_count {
            let base = CR_BYTES + i * INSTR_BYTES;
            let opcode = bytes[base];
            let a = u32::from_le_bytes(bytes[base + 4..base + 8].try_into().expect("len ok"));
            let b = u64::from_le_bytes(bytes[base + 8..base + 16].try_into().expect("len ok"));
            let instr = match opcode {
                OP_PASS_BEGIN => {
                    pass_depth += 1;
                    if pass_depth > 1 {
                        return Err(DescriptorError::UnbalancedBlocks);
                    }
                    DecodedInstr::PassBegin {
                        comps: a,
                        input_addr: b,
                    }
                }
                OP_PASS_END => {
                    pass_depth -= 1;
                    if pass_depth < 0 {
                        return Err(DescriptorError::UnbalancedBlocks);
                    }
                    DecodedInstr::PassEnd { output_addr: b }
                }
                OP_LOOP_BEGIN => {
                    loop_depth += 1;
                    if loop_depth > 1 || pass_depth != 0 {
                        return Err(DescriptorError::UnbalancedBlocks);
                    }
                    DecodedInstr::LoopBegin { count: b }
                }
                OP_LOOP_END => {
                    loop_depth -= 1;
                    if loop_depth < 0 || pass_depth != 0 {
                        return Err(DescriptorError::UnbalancedBlocks);
                    }
                    DecodedInstr::LoopEnd
                }
                op => {
                    let kind = AcceleratorKind::from_opcode(op)
                        .ok_or(DescriptorError::UnknownOpcode { opcode: op })?;
                    if pass_depth != 1 {
                        return Err(DescriptorError::UnbalancedBlocks);
                    }
                    DecodedInstr::Accel {
                        kind,
                        param_size: a,
                        param_addr: b,
                    }
                }
            };
            out.push(instr);
        }
        if pass_depth != 0 || loop_depth != 0 {
            return Err(DescriptorError::UnbalancedBlocks);
        }
        Ok(out)
    }

    /// Reads a parameter blob back out of the PR.
    ///
    /// # Panics
    ///
    /// Panics if the `(addr, size)` pair points outside the PR.
    pub fn param_blob(&self, param_addr: u64, param_size: u32) -> &[u8] {
        let pr_offset =
            u32::from_le_bytes(self.bytes[12..16].try_into().expect("CR is 16 bytes")) as usize;
        let start = pr_offset + param_addr as usize;
        let end = start + param_size as usize;
        assert!(end <= self.bytes.len(), "parameter reference outside PR");
        &self.bytes[start..end]
    }

    /// Total dynamic accelerator invocations this descriptor encodes
    /// (loop bodies multiplied by their counts).
    ///
    /// # Errors
    ///
    /// Returns a [`DescriptorError`] if the image is malformed.
    pub fn total_invocations(&self) -> Result<u64, DescriptorError> {
        let instrs = self.decode()?;
        let mut total = 0u64;
        let mut multiplier = 1u64;
        for i in &instrs {
            match i {
                DecodedInstr::LoopBegin { count } => multiplier = *count,
                DecodedInstr::LoopEnd => multiplier = 1,
                DecodedInstr::Accel { .. } => total += multiplier,
                _ => {}
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn fixtures() -> (TdlProgram, ParamBag, BTreeMap<String, u64>) {
        let program = parse(
            r#"
            PASS in=datacube out=doppler {
                COMP RESHP params="reshape.para"
                COMP FFT params="fft.para"
            }
            LOOP 128 {
                PASS in=weights out=prods {
                    COMP DOT params="dot.para"
                }
            }
            "#,
        )
        .unwrap();
        let mut params = ParamBag::new();
        params.insert("reshape.para".into(), vec![1, 2, 3, 4, 5]);
        params.insert("fft.para".into(), vec![9; 16]);
        params.insert("dot.para".into(), vec![7; 12]);
        let buffers: BTreeMap<String, u64> = [
            ("datacube".to_string(), 0x1000u64),
            ("doppler".to_string(), 0x2000),
            ("weights".to_string(), 0x3000),
            ("prods".to_string(), 0x4000),
        ]
        .into_iter()
        .collect();
        (program, params, buffers)
    }

    #[test]
    fn encode_decode_round_trip() {
        let (program, params, buffers) = fixtures();
        let d = Descriptor::encode(&program, &params, &buffers).unwrap();
        let instrs = d.decode().unwrap();
        assert_eq!(
            instrs,
            vec![
                DecodedInstr::PassBegin {
                    comps: 2,
                    input_addr: 0x1000
                },
                DecodedInstr::Accel {
                    kind: AcceleratorKind::Reshp,
                    param_size: 5,
                    param_addr: 0
                },
                DecodedInstr::Accel {
                    kind: AcceleratorKind::Fft,
                    param_size: 16,
                    param_addr: 8
                },
                DecodedInstr::PassEnd {
                    output_addr: 0x2000
                },
                DecodedInstr::LoopBegin { count: 128 },
                DecodedInstr::PassBegin {
                    comps: 1,
                    input_addr: 0x3000
                },
                DecodedInstr::Accel {
                    kind: AcceleratorKind::Dot,
                    param_size: 12,
                    param_addr: 24
                },
                DecodedInstr::PassEnd {
                    output_addr: 0x4000
                },
                DecodedInstr::LoopEnd,
            ]
        );
    }

    #[test]
    fn param_blobs_survive_encoding() {
        let (program, params, buffers) = fixtures();
        let d = Descriptor::encode(&program, &params, &buffers).unwrap();
        assert_eq!(d.param_blob(0, 5), &[1, 2, 3, 4, 5]);
        assert_eq!(d.param_blob(8, 16), &[9; 16]);
        assert_eq!(d.param_blob(24, 12), &[7; 12]);
    }

    #[test]
    fn invocation_count_multiplies_loops() {
        let (program, params, buffers) = fixtures();
        let d = Descriptor::encode(&program, &params, &buffers).unwrap();
        assert_eq!(d.total_invocations().unwrap(), 2 + 128);
        assert_eq!(d.instr_count(), 9);
    }

    #[test]
    fn missing_param_file_is_an_error() {
        let (program, mut params, buffers) = fixtures();
        params.remove("fft.para");
        let err = Descriptor::encode(&program, &params, &buffers).unwrap_err();
        assert_eq!(
            err,
            DescriptorError::MissingParamFile {
                name: "fft.para".into()
            }
        );
    }

    #[test]
    fn missing_buffer_is_an_error() {
        let (program, params, mut buffers) = fixtures();
        buffers.remove("prods");
        let err = Descriptor::encode(&program, &params, &buffers).unwrap_err();
        assert_eq!(
            err,
            DescriptorError::UnresolvedBuffer {
                name: "prods".into()
            }
        );
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let (program, params, buffers) = fixtures();
        let d = Descriptor::encode(&program, &params, &buffers).unwrap();
        let mut bytes = d.as_bytes().to_vec();
        bytes[0] ^= 0xff;
        assert_eq!(
            Descriptor::decode_bytes(&bytes),
            Err(DescriptorError::BadMagic)
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let (program, params, buffers) = fixtures();
        let d = Descriptor::encode(&program, &params, &buffers).unwrap();
        let bytes = &d.as_bytes()[..CR_BYTES + 3];
        assert_eq!(
            Descriptor::decode_bytes(bytes),
            Err(DescriptorError::Truncated)
        );
        assert_eq!(
            Descriptor::decode_bytes(&[1, 2]),
            Err(DescriptorError::Truncated)
        );
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        let (program, params, buffers) = fixtures();
        let d = Descriptor::encode(&program, &params, &buffers).unwrap();
        let mut bytes = d.as_bytes().to_vec();
        bytes[CR_BYTES] = 0x7f; // clobber first instruction's opcode
        assert_eq!(
            Descriptor::decode_bytes(&bytes),
            Err(DescriptorError::UnknownOpcode { opcode: 0x7f })
        );
    }

    #[test]
    fn decode_rejects_unbalanced_blocks() {
        let (program, params, buffers) = fixtures();
        let d = Descriptor::encode(&program, &params, &buffers).unwrap();
        let mut bytes = d.as_bytes().to_vec();
        // Turn the final LOOP_END into a PASS_END: now blocks are unbalanced.
        let last = CR_BYTES + (d.instr_count() as usize - 1) * INSTR_BYTES;
        bytes[last] = OP_PASS_END;
        assert_eq!(
            Descriptor::decode_bytes(&bytes),
            Err(DescriptorError::UnbalancedBlocks)
        );
    }

    #[test]
    fn empty_program_encodes_to_bare_control_region() {
        let d =
            Descriptor::encode(&TdlProgram::default(), &ParamBag::new(), &BTreeMap::new()).unwrap();
        assert_eq!(d.size_bytes(), CR_BYTES);
        assert_eq!(d.decode().unwrap(), vec![]);
        assert_eq!(d.total_invocations().unwrap(), 0);
    }
}
