//! TDL lexer.

use core::fmt;

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source line the token started on.
    pub line: usize,
}

/// TDL token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A bare word: keywords (`PASS`, `LOOP`, `COMP`, accelerator names)
    /// and buffer identifiers.
    Ident(String),
    /// An unsigned integer literal.
    Number(u64),
    /// A double-quoted string literal (quotes stripped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Equals,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Equals => f.write_str("`=`"),
        }
    }
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// An unexpected character.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Line it appeared on.
        line: usize,
    },
    /// A string literal with no closing quote.
    UnterminatedString {
        /// Line the string started on.
        line: usize,
    },
    /// An integer literal too large for `u64`.
    NumberOverflow {
        /// Line it appeared on.
        line: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, line } => {
                write!(f, "unexpected character {ch:?} on line {line}")
            }
            LexError::UnterminatedString { line } => {
                write!(f, "unterminated string starting on line {line}")
            }
            LexError::NumberOverflow { line } => {
                write!(f, "integer literal overflows u64 on line {line}")
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes TDL source. `#` starts a line comment.
///
/// # Errors
///
/// Returns a [`LexError`] for characters outside the TDL alphabet.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
                chars.next();
            }
            '}' => {
                out.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
                chars.next();
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
                chars.next();
            }
            '"' => {
                chars.next();
                let start = line;
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\n' => return Err(LexError::UnterminatedString { line: start }),
                        c => s.push(c),
                    }
                }
                if !closed {
                    return Err(LexError::UnterminatedString { line: start });
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        value = value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(digit as u64))
                            .ok_or(LexError::NumberOverflow { line })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_ascii_alphanumeric() || a == '_' || a == '.' {
                        s.push(a);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                });
            }
            other => return Err(LexError::UnexpectedChar { ch: other, line }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_basic_program() {
        let toks = kinds("PASS in=a out=b { COMP FFT params=\"fft.para\" }");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("PASS".into()),
                TokenKind::Ident("in".into()),
                TokenKind::Equals,
                TokenKind::Ident("a".into()),
                TokenKind::Ident("out".into()),
                TokenKind::Equals,
                TokenKind::Ident("b".into()),
                TokenKind::LBrace,
                TokenKind::Ident("COMP".into()),
                TokenKind::Ident("FFT".into()),
                TokenKind::Ident("params".into()),
                TokenKind::Equals,
                TokenKind::Str("fft.para".into()),
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn numbers_and_comments() {
        let toks = kinds("LOOP 42 # trailing comment\n{ }");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("LOOP".into()),
                TokenKind::Number(42),
                TokenKind::LBrace,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = tokenize("PASS\n\nLOOP").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn idents_may_contain_dots() {
        let toks = kinds("fft.para");
        assert_eq!(toks, vec![TokenKind::Ident("fft.para".into())]);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert_eq!(
            tokenize("PASS @"),
            Err(LexError::UnexpectedChar { ch: '@', line: 1 })
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert_eq!(
            tokenize("\"abc"),
            Err(LexError::UnterminatedString { line: 1 })
        );
        assert_eq!(
            tokenize("\"abc\ndef\""),
            Err(LexError::UnterminatedString { line: 1 })
        );
    }

    #[test]
    fn rejects_number_overflow() {
        assert_eq!(
            tokenize("99999999999999999999999"),
            Err(LexError::NumberOverflow { line: 1 })
        );
    }

    #[test]
    fn empty_source_is_empty_token_stream() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t # only a comment\n").unwrap().is_empty());
    }
}
