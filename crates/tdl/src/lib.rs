//! The Task Description Language (TDL) and the accelerator descriptor.
//!
//! §3.4 of the paper: *"At the heart of the translation is a Task
//! Description Language, which is used to describe sequences of
//! accelerator invocations and their configurations. The TDL consists of
//! three basic blocks, i.e., `COMP`, `PASS`, and `LOOP`."*
//!
//! This crate implements:
//!
//! * the TDL abstract syntax ([`ast`]) — `COMP` (one accelerator
//!   invocation), `PASS` (a chained datapath of comps with its own
//!   input/output buffers), `LOOP` (repeated passes);
//! * a lexer and recursive-descent parser ([`parse`]) plus a
//!   pretty-printer, with guaranteed round-tripping;
//! * the binary *accelerator descriptor* ([`descriptor`]) — the
//!   physically contiguous Control/Instruction/Parameter region layout of
//!   §2.3 that the Configuration Unit's fetch/decode hardware consumes.
//!
//! # Examples
//!
//! ```
//! use mealib_tdl::{parse, TdlProgram};
//!
//! let src = r#"
//!     PASS in=datacube out=doppler {
//!         COMP RESHP params="reshape.para"
//!         COMP FFT params="fft.para"
//!     }
//!     LOOP 16777216 {
//!         PASS in=weights out=prods {
//!             COMP DOT params="dot.para"
//!         }
//!     }
//! "#;
//! let program: TdlProgram = parse(src)?;
//! assert_eq!(program.total_invocations(), 2 + 16_777_216);
//! # Ok::<(), mealib_tdl::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod descriptor;
pub mod lexer;
pub mod parser;

pub use ast::{AcceleratorKind, CompBlock, LoopBlock, PassBlock, TdlItem, TdlProgram};
pub use descriptor::{Descriptor, DescriptorError, ParamBag};
pub use parser::{parse, parse_with_lines, ItemLines, ParseError, PassLines, ProgramLines};
