//! Recursive-descent parser for TDL.

use core::fmt;

use crate::ast::{AcceleratorKind, CompBlock, LoopBlock, PassBlock, TdlItem, TdlProgram};
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// A parse error with source-line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The lexer rejected the input.
    Lex(LexError),
    /// An unexpected token was found.
    Unexpected {
        /// What the parser was looking for.
        expected: String,
        /// What it found instead.
        found: String,
        /// Line of the offending token.
        line: usize,
    },
    /// Input ended mid-construct.
    UnexpectedEof {
        /// What the parser was looking for.
        expected: String,
    },
    /// A `COMP` named an unknown accelerator.
    UnknownAccelerator {
        /// The unrecognized name.
        name: String,
        /// Line of the offending token.
        line: usize,
    },
    /// A structurally invalid block (empty pass, zero-count loop...).
    InvalidBlock {
        /// Explanation.
        message: String,
        /// Line of the block header.
        line: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => e.fmt(f),
            ParseError::Unexpected {
                expected,
                found,
                line,
            } => {
                write!(f, "expected {expected}, found {found} on line {line}")
            }
            ParseError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::UnknownAccelerator { name, line } => {
                write!(f, "unknown accelerator `{name}` on line {line}")
            }
            ParseError::InvalidBlock { message, line } => {
                write!(f, "{message} on line {line}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Source lines (1-based) of one `PASS` and its `COMP`s, parallel to a
/// [`PassBlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassLines {
    /// Line of the `PASS` keyword.
    pub header: usize,
    /// Line of each `COMP` keyword, in order.
    pub comps: Vec<usize>,
}

/// Source lines of one top-level item, parallel to a [`TdlItem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemLines {
    /// Lines of a top-level pass.
    Pass(PassLines),
    /// Lines of a loop and the passes in its body.
    Loop {
        /// Line of the `LOOP` keyword.
        header: usize,
        /// Lines of each pass in the body.
        body: Vec<PassLines>,
    },
}

/// Source lines of a whole program, parallel to a [`TdlProgram`]'s
/// items. Lets later passes report findings at real source locations
/// without the AST carrying spans.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramLines {
    /// One entry per top-level item.
    pub items: Vec<ItemLines>,
}

/// Parses TDL source into a [`TdlProgram`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic
/// problem.
pub fn parse(src: &str) -> Result<TdlProgram, ParseError> {
    parse_with_lines(src).map(|(program, _)| program)
}

/// Parses TDL source, also returning the source line of every
/// `PASS`/`LOOP`/`COMP` construct for diagnostics.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic
/// problem.
pub fn parse_with_lines(src: &str) -> Result<(TdlProgram, ProgramLines), ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    let mut lines = ProgramLines::default();
    while !p.at_end() {
        let (item, item_lines) = p.item()?;
        items.push(item);
        lines.items.push(item_lines);
    }
    Ok((TdlProgram::new(items), lines))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &str) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError::UnexpectedEof {
                expected: expected.to_string(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_kind(&mut self, kind: &TokenKind, expected: &str) -> Result<Token, ParseError> {
        let t = self.next(expected)?;
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(ParseError::Unexpected {
                expected: expected.to_string(),
                found: t.kind.to_string(),
                line: t.line,
            })
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Token, ParseError> {
        self.expect_kind(&TokenKind::Ident(kw.to_string()), &format!("`{kw}`"))
    }

    fn ident(&mut self, expected: &str) -> Result<(String, usize), ParseError> {
        let t = self.next(expected)?;
        match t.kind {
            TokenKind::Ident(s) => Ok((s, t.line)),
            other => Err(ParseError::Unexpected {
                expected: expected.to_string(),
                found: other.to_string(),
                line: t.line,
            }),
        }
    }

    fn item(&mut self) -> Result<(TdlItem, ItemLines), ParseError> {
        let (kw, line) = self.ident("`PASS` or `LOOP`")?;
        match kw.as_str() {
            "PASS" => {
                let (pass, lines) = self.pass_body(line)?;
                Ok((TdlItem::Pass(pass), ItemLines::Pass(lines)))
            }
            "LOOP" => {
                let (l, body_lines) = self.loop_body(line)?;
                Ok((
                    TdlItem::Loop(l),
                    ItemLines::Loop {
                        header: line,
                        body: body_lines,
                    },
                ))
            }
            other => Err(ParseError::Unexpected {
                expected: "`PASS` or `LOOP`".to_string(),
                found: format!("`{other}`"),
                line,
            }),
        }
    }

    /// Parses the remainder of a pass after the `PASS` keyword.
    fn pass_body(&mut self, header_line: usize) -> Result<(PassBlock, PassLines), ParseError> {
        self.expect_keyword("in")?;
        self.expect_kind(&TokenKind::Equals, "`=`")?;
        let (input, _) = self.ident("input buffer name")?;
        self.expect_keyword("out")?;
        self.expect_kind(&TokenKind::Equals, "`=`")?;
        let (output, _) = self.ident("output buffer name")?;
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut comps = Vec::new();
        let mut comp_lines = Vec::new();
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::RBrace => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let comp_tok = self.expect_keyword("COMP")?;
                    comp_lines.push(comp_tok.line);
                    let (name, line) = self.ident("accelerator name")?;
                    let accel = AcceleratorKind::from_keyword(&name)
                        .ok_or(ParseError::UnknownAccelerator { name, line })?;
                    self.expect_keyword("params")?;
                    self.expect_kind(&TokenKind::Equals, "`=`")?;
                    let t = self.next("parameter file string")?;
                    let params = match t.kind {
                        TokenKind::Str(s) => s,
                        other => {
                            return Err(ParseError::Unexpected {
                                expected: "parameter file string".to_string(),
                                found: other.to_string(),
                                line: t.line,
                            })
                        }
                    };
                    comps.push(CompBlock::new(accel, params));
                }
                None => {
                    return Err(ParseError::UnexpectedEof {
                        expected: "`}`".to_string(),
                    })
                }
            }
        }
        if comps.is_empty() {
            return Err(ParseError::InvalidBlock {
                message: "PASS must contain at least one COMP".to_string(),
                line: header_line,
            });
        }
        Ok((
            PassBlock::new(input, output, comps),
            PassLines {
                header: header_line,
                comps: comp_lines,
            },
        ))
    }

    /// Parses the remainder of a loop after the `LOOP` keyword.
    fn loop_body(&mut self, header_line: usize) -> Result<(LoopBlock, Vec<PassLines>), ParseError> {
        let t = self.next("loop count")?;
        let count = match t.kind {
            TokenKind::Number(n) => n,
            other => {
                return Err(ParseError::Unexpected {
                    expected: "loop count".to_string(),
                    found: other.to_string(),
                    line: t.line,
                })
            }
        };
        if count == 0 {
            return Err(ParseError::InvalidBlock {
                message: "LOOP count must be at least 1".to_string(),
                line: header_line,
            });
        }
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut body = Vec::new();
        let mut body_lines = Vec::new();
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::RBrace => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let (kw, line) = self.ident("`PASS`")?;
                    if kw != "PASS" {
                        return Err(ParseError::Unexpected {
                            expected: "`PASS`".to_string(),
                            found: format!("`{kw}`"),
                            line,
                        });
                    }
                    let (pass, lines) = self.pass_body(line)?;
                    body.push(pass);
                    body_lines.push(lines);
                }
                None => {
                    return Err(ParseError::UnexpectedEof {
                        expected: "`}`".to_string(),
                    })
                }
            }
        }
        if body.is_empty() {
            return Err(ParseError::InvalidBlock {
                message: "LOOP must contain at least one PASS".to_string(),
                line: header_line,
            });
        }
        Ok((LoopBlock::new(count, body), body_lines))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # chained reshape + FFT, then a compacted dot-product loop
        PASS in=datacube out=doppler {
            COMP RESHP params="reshape.para"
            COMP FFT params="fft.para"
        }
        LOOP 16777216 {
            PASS in=weights out=prods {
                COMP DOT params="dot.para"
            }
        }
    "#;

    #[test]
    fn parses_sample() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.items.len(), 2);
        assert_eq!(p.total_invocations(), 2 + 16_777_216);
        match &p.items[0] {
            TdlItem::Pass(pass) => {
                assert_eq!(pass.input, "datacube");
                assert_eq!(pass.output, "doppler");
                assert_eq!(pass.comps[0].accel, AcceleratorKind::Reshp);
                assert_eq!(pass.comps[1].params, "fft.para");
            }
            _ => panic!("expected pass"),
        }
    }

    #[test]
    fn print_parse_round_trip() {
        let p = parse(SAMPLE).unwrap();
        let printed = p.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn empty_source_is_empty_program() {
        let p = parse("").unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn error_unknown_accelerator() {
        let err = parse("PASS in=a out=b { COMP WARP params=\"x\" }").unwrap_err();
        assert!(matches!(err, ParseError::UnknownAccelerator { ref name, .. } if name == "WARP"));
    }

    #[test]
    fn error_empty_pass() {
        let err = parse("PASS in=a out=b { }").unwrap_err();
        assert!(matches!(err, ParseError::InvalidBlock { .. }), "{err}");
    }

    #[test]
    fn error_zero_loop() {
        let err = parse("LOOP 0 { PASS in=a out=b { COMP FFT params=\"f\" } }").unwrap_err();
        assert!(matches!(err, ParseError::InvalidBlock { .. }), "{err}");
    }

    #[test]
    fn error_nested_loop_rejected() {
        // The TDL of the paper has no nested loops; LOOP bodies hold PASSes.
        let err = parse("LOOP 2 { LOOP 3 { } }").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }), "{err}");
    }

    #[test]
    fn error_missing_brace_reports_eof() {
        let err = parse("PASS in=a out=b { COMP FFT params=\"f\"").unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("PASS in=a out=b {\n COMP NOPE params=\"x\" }").unwrap_err();
        match err {
            ParseError::UnknownAccelerator { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn top_level_junk_rejected() {
        let err = parse("HELLO").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn parse_with_lines_mirrors_program_shape() {
        let (program, lines) = parse_with_lines(SAMPLE).unwrap();
        assert_eq!(program.items.len(), lines.items.len());
        match &lines.items[0] {
            ItemLines::Pass(p) => {
                assert_eq!(p.header, 3);
                assert_eq!(p.comps, vec![4, 5]);
            }
            other => panic!("expected pass lines, got {other:?}"),
        }
        match &lines.items[1] {
            ItemLines::Loop { header, body } => {
                assert_eq!(*header, 7);
                assert_eq!(body.len(), 1);
                assert_eq!(body[0].header, 8);
                assert_eq!(body[0].comps, vec![9]);
            }
            other => panic!("expected loop lines, got {other:?}"),
        }
    }
}
