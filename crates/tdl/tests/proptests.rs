//! Property tests: TDL print/parse and descriptor encode/decode
//! round-trips over randomly generated programs.

use std::collections::BTreeMap;

use mealib_tdl::{
    parse, AcceleratorKind, CompBlock, Descriptor, LoopBlock, ParamBag, PassBlock, TdlItem,
    TdlProgram,
};
use proptest::prelude::*;

fn accel_strategy() -> impl Strategy<Value = AcceleratorKind> {
    proptest::sample::select(AcceleratorKind::ALL.to_vec())
}

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_map(|s| s)
}

fn comp_strategy() -> impl Strategy<Value = CompBlock> {
    (accel_strategy(), ident_strategy()).prop_map(|(a, p)| CompBlock::new(a, format!("{p}.para")))
}

fn pass_strategy() -> impl Strategy<Value = PassBlock> {
    (
        ident_strategy(),
        ident_strategy(),
        proptest::collection::vec(comp_strategy(), 1..4),
    )
        .prop_map(|(i, o, comps)| PassBlock::new(i, o, comps))
}

fn item_strategy() -> impl Strategy<Value = TdlItem> {
    prop_oneof![
        pass_strategy().prop_map(TdlItem::Pass),
        (
            1u64..1_000_000,
            proptest::collection::vec(pass_strategy(), 1..3)
        )
            .prop_map(|(n, body)| TdlItem::Loop(LoopBlock::new(n, body))),
    ]
}

fn program_strategy() -> impl Strategy<Value = TdlProgram> {
    proptest::collection::vec(item_strategy(), 0..5).prop_map(TdlProgram::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_then_parse_is_identity(program in program_strategy()) {
        let printed = program.to_string();
        let reparsed = parse(&printed).expect("printer output must parse");
        prop_assert_eq!(program, reparsed);
    }

    #[test]
    fn descriptor_encode_decode_preserves_structure(program in program_strategy()) {
        let mut params = ParamBag::new();
        for name in program.param_files() {
            params.insert(name.to_string(), vec![0xAB; (name.len() % 17) + 1]);
        }
        let mut buffers = BTreeMap::new();
        let mut next = 0x1000u64;
        for item in &program.items {
            let passes: Vec<&PassBlock> = match item {
                TdlItem::Pass(p) => vec![p],
                TdlItem::Loop(l) => l.body.iter().collect(),
            };
            for p in passes {
                buffers.entry(p.input.clone()).or_insert_with(|| { next += 0x1000; next });
                buffers.entry(p.output.clone()).or_insert_with(|| { next += 0x1000; next });
            }
        }
        let d = Descriptor::encode(&program, &params, &buffers).expect("encodable");
        let decoded = d.decode().expect("decodable");
        // Structure checks: same dynamic invocation count, same number of
        // accelerator instructions as static invocations.
        prop_assert_eq!(d.total_invocations().unwrap(), program.total_invocations());
        let accel_instrs = decoded
            .iter()
            .filter(|i| matches!(i, mealib_tdl::descriptor::DecodedInstr::Accel { .. }))
            .count() as u64;
        prop_assert_eq!(accel_instrs, program.static_invocations());
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Descriptor::decode_bytes(&bytes);
    }
}
