//! Physical and virtual address newtypes.
//!
//! MEALib's accelerators address memory *physically* (they have no MMU,
//! §3.3 of the paper), while the host CPU uses virtual addresses that the
//! runtime's device driver maps onto reserved physically-contiguous space.
//! Keeping the two address spaces as distinct types makes it impossible to
//! hand an untranslated virtual address to an accelerator.

use core::fmt;
use core::ops::{Add, Sub};

use crate::units::Bytes;

macro_rules! addr_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// The null address.
            pub const NULL: Self = Self(0);

            /// Wraps a raw address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw address value.
            #[inline]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Returns `true` if the address is aligned to `align` bytes.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn is_aligned(self, align: u64) -> bool {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                self.0 & (align - 1) == 0
            }

            /// Rounds this address up to the next multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn align_up(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self((self.0 + align - 1) & !(align - 1))
            }

            /// Rounds this address down to the previous multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn align_down(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(self.0 & !(align - 1))
            }

            /// Byte distance from `base` to `self`.
            ///
            /// # Panics
            ///
            /// Panics if `self < base`.
            #[inline]
            pub fn offset_from(self, base: Self) -> Bytes {
                assert!(self.0 >= base.0, "address precedes base");
                Bytes::new(self.0 - base.0)
            }

            /// Checked addition of a byte offset, `None` on overflow.
            #[inline]
            pub fn checked_add(self, offset: Bytes) -> Option<Self> {
                self.0.checked_add(offset.get()).map(Self)
            }
        }

        impl Add<Bytes> for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Bytes) -> Self {
                Self(self.0 + rhs.get())
            }
        }

        impl Sub<Bytes> for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Bytes) -> Self {
                Self(self.0 - rhs.get())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, ":{:#012x}"), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_type!(
    /// A physical DRAM address, as seen by vault controllers and
    /// accelerators.
    PhysAddr,
    "pa"
);
addr_type!(
    /// A virtual address, as seen by legacy code running on the host CPU.
    VirtAddr,
    "va"
);

/// A half-open physical address range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    start: PhysAddr,
    len: Bytes,
}

impl AddrRange {
    /// Creates a range from a base address and a length.
    ///
    /// # Panics
    ///
    /// Panics if the range wraps the 64-bit address space.
    pub fn new(start: PhysAddr, len: Bytes) -> Self {
        assert!(
            start.checked_add(len).is_some(),
            "address range overflows the address space"
        );
        Self { start, len }
    }

    /// The inclusive lower bound.
    #[inline]
    pub fn start(&self) -> PhysAddr {
        self.start
    }

    /// The exclusive upper bound.
    #[inline]
    pub fn end(&self) -> PhysAddr {
        self.start + self.len
    }

    /// Number of bytes covered.
    #[inline]
    pub fn len(&self) -> Bytes {
        self.len
    }

    /// Returns `true` if the range covers no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == Bytes::ZERO
    }

    /// Returns `true` if `addr` falls inside this range.
    #[inline]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Returns `true` if `other` is fully contained in this range.
    #[inline]
    pub fn contains_range(&self, other: &AddrRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end() <= self.end())
    }

    /// Returns `true` if the two ranges share at least one byte.
    #[inline]
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }

    /// Splits the range into aligned chunks of at most `chunk` bytes.
    ///
    /// The first chunk ends at the first `chunk`-aligned boundary, so each
    /// subsequent chunk never straddles an alignment boundary. This is how
    /// the memory simulator decomposes a transfer into row-buffer-sized
    /// bursts.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is not a power of two.
    pub fn chunks(&self, chunk: u64) -> impl Iterator<Item = AddrRange> + '_ {
        assert!(chunk.is_power_of_two(), "chunk must be a power of two");
        let mut cursor = self.start;
        let end = self.end();
        core::iter::from_fn(move || {
            if cursor >= end {
                return None;
            }
            let boundary = (cursor + Bytes::new(1)).align_up(chunk);
            let stop = boundary.min(end);
            let piece = AddrRange::new(cursor, stop.offset_from(cursor));
            cursor = stop;
            Some(piece)
        })
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_checks() {
        assert!(PhysAddr::new(0x1000).is_aligned(0x1000));
        assert!(!PhysAddr::new(0x1001).is_aligned(0x1000));
        assert_eq!(PhysAddr::new(0x1001).align_up(0x1000).get(), 0x2000);
        assert_eq!(PhysAddr::new(0x1fff).align_down(0x1000).get(), 0x1000);
    }

    #[test]
    fn range_membership() {
        let r = AddrRange::new(PhysAddr::new(0x100), Bytes::new(0x100));
        assert!(r.contains(PhysAddr::new(0x100)));
        assert!(r.contains(PhysAddr::new(0x1ff)));
        assert!(!r.contains(PhysAddr::new(0x200)));
        assert!(!r.contains(PhysAddr::new(0xff)));
    }

    #[test]
    fn range_overlap() {
        let a = AddrRange::new(PhysAddr::new(0), Bytes::new(0x100));
        let b = AddrRange::new(PhysAddr::new(0x80), Bytes::new(0x100));
        let c = AddrRange::new(PhysAddr::new(0x100), Bytes::new(0x100));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        let empty = AddrRange::new(PhysAddr::new(0x10), Bytes::ZERO);
        assert!(!a.overlaps(&empty));
    }

    #[test]
    fn chunking_respects_boundaries() {
        // 0x30..0x130 split at 0x40-aligned boundaries:
        // first chunk 0x30..0x40 (16B), then 0x40, 0x80, 0xc0, 0x100..0x130.
        let r = AddrRange::new(PhysAddr::new(0x30), Bytes::new(0x100));
        let chunks: Vec<_> = r.chunks(0x40).collect();
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks[0].len().get(), 0x10);
        assert_eq!(chunks[1].start().get(), 0x40);
        assert_eq!(chunks[4].len().get(), 0x30);
        let total: u64 = chunks.iter().map(|c| c.len().get()).sum();
        assert_eq!(total, 0x100);
    }

    #[test]
    fn chunk_of_aligned_range_is_whole_chunks() {
        let r = AddrRange::new(PhysAddr::new(0x400), Bytes::new(0x100));
        let chunks: Vec<_> = r.chunks(0x80).collect();
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len().get() == 0x80));
    }

    #[test]
    fn offset_from_base() {
        let base = VirtAddr::new(0x1000);
        let p = base + Bytes::new(0x20);
        assert_eq!(p.offset_from(base).get(), 0x20);
    }

    #[test]
    #[should_panic(expected = "address precedes base")]
    fn offset_from_panics_when_below_base() {
        let _ = VirtAddr::new(0x10).offset_from(VirtAddr::new(0x20));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", PhysAddr::new(0xabc)), "pa:0x0000000abc");
        assert_eq!(format!("{}", VirtAddr::new(0x1)), "va:0x0000000001");
    }
}
