//! Single-precision complex arithmetic.
//!
//! The FFT accelerator, the STAP pipeline (`cdotc`, `cherk`, `ctrsm`), and
//! the SAR workload all operate on interleaved single-precision complex
//! data, matching MKL's `MKL_Complex8`. A tiny dedicated type keeps the
//! workspace dependency-free.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A single-precision complex number (`re + im·i`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Creates a complex number on the unit circle at angle `theta`
    /// (radians): `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn from_polar_unit(theta: f32) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// The squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Multiply-accumulate: `self + a * b`, the inner-product building
    /// block used by the DOT accelerator model.
    #[inline]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        self + a * b
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f32> for Complex32 {
    #[inline]
    fn from(re: f32) -> Self {
        Self::new(re, 0.0)
    }
}

impl Add for Complex32 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex32 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Complex32 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex32 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex32 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex32 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -4.0);
        assert_eq!(a * b, Complex32::new(11.0, 2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex32::I * Complex32::I, Complex32::new(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex32::new(2.5, -1.5);
        let b = Complex32::new(0.5, 3.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex32::new(3.0, 4.0);
        assert_eq!(z.conj().conj(), z);
        assert_eq!((z * z.conj()).re, z.norm_sqr());
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn polar_unit_is_on_unit_circle() {
        for k in 0..8 {
            let z = Complex32::from_polar_unit(k as f32 * core::f32::consts::FRAC_PI_4);
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sum_and_mul_add() {
        let s: Complex32 = (0..4).map(|k| Complex32::new(k as f32, 1.0)).sum();
        assert_eq!(s, Complex32::new(6.0, 4.0));
        let acc = Complex32::ZERO.mul_add(Complex32::new(2.0, 0.0), Complex32::I);
        assert_eq!(acc, Complex32::new(0.0, 2.0));
    }

    #[test]
    fn display_sign_handling() {
        assert_eq!(format!("{}", Complex32::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", Complex32::new(1.0, 2.0)), "1+2i");
    }
}
