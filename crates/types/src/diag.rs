//! Shared static-verification diagnostics.
//!
//! Every verifier pass in the workspace (`mealib-verify`, but also the
//! eager checks inside `memsim` and `runtime`) reports findings through
//! this one vocabulary: a stable [`ErrorCode`] (`MEA0xx`), a
//! [`Severity`], a [`Span`] locating the finding in TDL source text or a
//! binary image, and a human-readable message. A [`Report`] collects
//! diagnostics across passes and renders them for humans, while tests
//! and tooling match on the codes.
//!
//! Code allocation (stable; never renumber a shipped code):
//!
//! * `MEA001`–`MEA009` — TDL semantic checks
//! * `MEA010`–`MEA019` — descriptor image checks
//! * `MEA020`–`MEA029` — memory-simulator configuration checks
//! * `MEA030`–`MEA039` — physical-memory / address-space checks
//! * `MEA100`–`MEA109` — dataflow & coherence analysis (static pass in
//!   `mealib-verify::dataflow`, mirrored dynamically by the runtime's
//!   shadow-memory `Sanitizer`)
//! * `MEA200`–`MEA219` — symbolic cost & capacity certification
//!   (`mealib-verify::bounds`): interval bounds on bytes moved, DRAM
//!   commands, peak live footprint, vault skew, and modeled energy,
//!   proven sound against the cycle engine by a differential harness
//! * `MEA300`–`MEA319` — multi-tenant interference certification
//!   (`mealib-verify::interference`): compositional per-tenant
//!   bandwidth/latency/energy bounds over a session-set manifest
//!   (`TENANT`/`PARTITION`/`ARRIVAL` directives), driving the
//!   three-valued admission verdict (ADMIT / REJECT / UNKNOWN) and
//!   proven sound against the interleaved cycle engine

use core::fmt;

/// Stable error codes for every static-verification finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    // ----- TDL semantic checks (MEA001–MEA009) -----
    /// A chained `PASS` names the same buffer as input and output; a
    /// multi-comp datapath cannot stream in place.
    TdlInPlaceChain,
    /// A `PASS` chains more comps than the tile switch fans in.
    TdlChainTooLong,
    /// A `COMP` sequence is not stream-compatible (§2.3): a reducing
    /// accelerator can only terminate a chain.
    TdlIllegalChain,
    /// A `COMP` references a parameter file that is empty or absent
    /// from the supplied parameter bag.
    TdlDanglingParams,
    /// A `LOOP` trip count is zero, or the program's dynamic invocation
    /// count overflows the descriptor's sequencing range.
    TdlLoopTripCount,
    /// Buffer def-use hazard: two passes write the same buffer with no
    /// intervening read, or a pass consumes a buffer before any pass
    /// or host write could have produced it.
    TdlBufferHazard,

    // ----- Descriptor image checks (MEA010–MEA019) -----
    /// The image is shorter than its headers claim.
    DescTruncated,
    /// The control-region magic is not `MEAL`.
    DescBadMagic,
    /// The control-region command word is not a known command.
    DescBadCommand,
    /// Control/instruction/parameter regions overlap or the instruction
    /// count is inconsistent with the parameter-region offset.
    DescRegionOverlap,
    /// The parameter region does not start on a 16-byte instruction
    /// boundary.
    DescMisalignedPr,
    /// An instruction opcode is outside the ISA.
    DescUnknownOpcode,
    /// `PASS`/`LOOP` begin/end markers are not properly nested.
    DescUnbalancedBlocks,
    /// An accelerator instruction's parameter reference falls outside
    /// the parameter region.
    DescParamOutOfRange,
    /// A parameter blob does not start on the 8-byte alignment the
    /// fetch hardware requires.
    DescParamMisaligned,

    // ----- Memory-simulator configuration checks (MEA020–MEA029) -----
    /// A timing parameter is zero or non-positive.
    MemZeroParameter,
    /// A DRAM timing inequality is violated (e.g. `tRAS < tRCD + tCL`
    /// or `tREFI <= tRFC`).
    MemTimingInequality,
    /// An address-mapping structural parameter is invalid.
    MemMappingParam,
    /// An energy parameter is negative or non-finite.
    MemBadEnergy,
    /// The address-interleaving map is not bijective: two physical
    /// addresses decode to the same device location, or locations are
    /// skipped (a physical bit is consumed twice or not at all).
    MemMappingNotBijective,
    /// The asymmetric-mode split point is misplaced (unaligned to the
    /// interleave granularity, so one line straddles both regions).
    MemBadAsymmetricSplit,

    // ----- Physical-memory / address-space checks (MEA030–MEA039) -----
    /// Two live allocations overlap.
    PhysOverlap,
    /// A live allocation falls outside its stack's managed region.
    PhysOutOfRegion,
    /// An allocation base or region base violates the required
    /// alignment.
    PhysMisaligned,
    /// The descriptor/command region (or a buffer) is not reachable as
    /// a single contiguous unit under the platform address mapping.
    PhysUnreachableDescriptor,
    /// The allocator's free + live accounting does not cover its
    /// region exactly.
    PhysAccounting,
    /// The virtual address map is inconsistent (overlapping virtual
    /// ranges or a broken reverse mapping).
    PhysVmapInconsistent,

    // ----- Dataflow & coherence analysis (MEA100–MEA109) -----
    /// An accelerator reads a buffer with no reaching definition: no
    /// host write and no earlier pass ever produced it (including the
    /// first iteration of a loop-carried use).
    DfUninitRead,
    /// A buffer is written by a pass but its final value is never
    /// consumed — neither by a later pass nor by a host read.
    DfDeadBuffer,
    /// Two distinct buffers with overlapping physical extents conflict:
    /// a chained pass streams over its own output bytes, or two writers
    /// touch the same bytes.
    DfOverlap,
    /// Coherence hazard across the host cache boundary: the accelerator
    /// can observe a stale DRAM image of unflushed host writes, or the
    /// host can read stale cached lines after an accelerator write.
    DfStaleRead,
    /// A `PASS` chains more stages than the Configuration Unit can
    /// buffer between them; the chain can never drain.
    DfChainOverCapacity,
    /// A loop body's buffer dependences form a cycle with no external
    /// definition feeding it; no iteration can ever make progress.
    DfCyclicDependence,

    // ----- Symbolic cost & capacity certification (MEA200–MEA219) -----
    /// The program's peak live-buffer footprint provably exceeds the
    /// modeled stack capacity; out-of-core tiling is a precondition for
    /// running it.
    BoundsCapacityOverflow,
    /// A phase's demanded throughput (byte lower bound over its time
    /// budget) provably exceeds the roofline of the memory layer it
    /// actually uses; no schedule can meet the budget.
    BoundsBandwidthInfeasible,
    /// The address mapping provably concentrates all of a phase's
    /// traffic onto a single vault/unit although several are available;
    /// the stack degenerates to one unit's bandwidth.
    BoundsVaultSkew,
    /// The modeled energy lower bound provably exceeds the declared
    /// energy budget.
    BoundsEnergyBudget,

    // ----- Multi-tenant interference certification (MEA300–MEA319) -----
    /// Two tenants' declared vault partitions overlap, or a tenant's
    /// buffer extent escapes its declared partition window; the
    /// isolation boundary the admission verdict rests on does not hold.
    InterferePartitionOverlap,
    /// The session set's summed demand provably oversubscribes the
    /// shared bus/link: the composed completion-time lower bound of the
    /// merged trace exceeds the set-level time budget.
    InterfereBusOversubscribed,
    /// Cross-tenant interference provably inflates one tenant's
    /// completion latency past that tenant's declared time budget, even
    /// under the most favorable interleaving.
    InterfereLatencyBudget,
    /// The composed Table-5 energy lower bound of the whole session set
    /// provably exceeds the aggregate energy envelope.
    InterfereEnergyEnvelope,
}

impl ErrorCode {
    /// Every code, in numeric order (drives the rendered error table).
    pub const ALL: [ErrorCode; 41] = [
        ErrorCode::TdlInPlaceChain,
        ErrorCode::TdlChainTooLong,
        ErrorCode::TdlIllegalChain,
        ErrorCode::TdlDanglingParams,
        ErrorCode::TdlLoopTripCount,
        ErrorCode::TdlBufferHazard,
        ErrorCode::DescTruncated,
        ErrorCode::DescBadMagic,
        ErrorCode::DescBadCommand,
        ErrorCode::DescRegionOverlap,
        ErrorCode::DescMisalignedPr,
        ErrorCode::DescUnknownOpcode,
        ErrorCode::DescUnbalancedBlocks,
        ErrorCode::DescParamOutOfRange,
        ErrorCode::DescParamMisaligned,
        ErrorCode::MemZeroParameter,
        ErrorCode::MemTimingInequality,
        ErrorCode::MemMappingParam,
        ErrorCode::MemBadEnergy,
        ErrorCode::MemMappingNotBijective,
        ErrorCode::MemBadAsymmetricSplit,
        ErrorCode::PhysOverlap,
        ErrorCode::PhysOutOfRegion,
        ErrorCode::PhysMisaligned,
        ErrorCode::PhysUnreachableDescriptor,
        ErrorCode::PhysAccounting,
        ErrorCode::PhysVmapInconsistent,
        ErrorCode::DfUninitRead,
        ErrorCode::DfDeadBuffer,
        ErrorCode::DfOverlap,
        ErrorCode::DfStaleRead,
        ErrorCode::DfChainOverCapacity,
        ErrorCode::DfCyclicDependence,
        ErrorCode::BoundsCapacityOverflow,
        ErrorCode::BoundsBandwidthInfeasible,
        ErrorCode::BoundsVaultSkew,
        ErrorCode::BoundsEnergyBudget,
        ErrorCode::InterferePartitionOverlap,
        ErrorCode::InterfereBusOversubscribed,
        ErrorCode::InterfereLatencyBudget,
        ErrorCode::InterfereEnergyEnvelope,
    ];

    /// The numeric part of the stable code.
    pub fn number(self) -> u16 {
        match self {
            ErrorCode::TdlInPlaceChain => 1,
            ErrorCode::TdlChainTooLong => 2,
            ErrorCode::TdlIllegalChain => 3,
            ErrorCode::TdlDanglingParams => 4,
            ErrorCode::TdlLoopTripCount => 5,
            ErrorCode::TdlBufferHazard => 6,
            ErrorCode::DescTruncated => 10,
            ErrorCode::DescBadMagic => 11,
            ErrorCode::DescBadCommand => 12,
            ErrorCode::DescRegionOverlap => 13,
            ErrorCode::DescMisalignedPr => 14,
            ErrorCode::DescUnknownOpcode => 15,
            ErrorCode::DescUnbalancedBlocks => 16,
            ErrorCode::DescParamOutOfRange => 17,
            ErrorCode::DescParamMisaligned => 18,
            ErrorCode::MemZeroParameter => 20,
            ErrorCode::MemTimingInequality => 21,
            ErrorCode::MemMappingParam => 22,
            ErrorCode::MemBadEnergy => 23,
            ErrorCode::MemMappingNotBijective => 24,
            ErrorCode::MemBadAsymmetricSplit => 25,
            ErrorCode::PhysOverlap => 30,
            ErrorCode::PhysOutOfRegion => 31,
            ErrorCode::PhysMisaligned => 32,
            ErrorCode::PhysUnreachableDescriptor => 33,
            ErrorCode::PhysAccounting => 34,
            ErrorCode::PhysVmapInconsistent => 35,
            ErrorCode::DfUninitRead => 100,
            ErrorCode::DfDeadBuffer => 101,
            ErrorCode::DfOverlap => 102,
            ErrorCode::DfStaleRead => 103,
            ErrorCode::DfChainOverCapacity => 104,
            ErrorCode::DfCyclicDependence => 105,
            ErrorCode::BoundsCapacityOverflow => 200,
            ErrorCode::BoundsBandwidthInfeasible => 201,
            ErrorCode::BoundsVaultSkew => 202,
            ErrorCode::BoundsEnergyBudget => 203,
            ErrorCode::InterferePartitionOverlap => 300,
            ErrorCode::InterfereBusOversubscribed => 301,
            ErrorCode::InterfereLatencyBudget => 302,
            ErrorCode::InterfereEnergyEnvelope => 303,
        }
    }

    /// The stable rendered code, e.g. `"MEA011"`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::TdlInPlaceChain => "MEA001",
            ErrorCode::TdlChainTooLong => "MEA002",
            ErrorCode::TdlIllegalChain => "MEA003",
            ErrorCode::TdlDanglingParams => "MEA004",
            ErrorCode::TdlLoopTripCount => "MEA005",
            ErrorCode::TdlBufferHazard => "MEA006",
            ErrorCode::DescTruncated => "MEA010",
            ErrorCode::DescBadMagic => "MEA011",
            ErrorCode::DescBadCommand => "MEA012",
            ErrorCode::DescRegionOverlap => "MEA013",
            ErrorCode::DescMisalignedPr => "MEA014",
            ErrorCode::DescUnknownOpcode => "MEA015",
            ErrorCode::DescUnbalancedBlocks => "MEA016",
            ErrorCode::DescParamOutOfRange => "MEA017",
            ErrorCode::DescParamMisaligned => "MEA018",
            ErrorCode::MemZeroParameter => "MEA020",
            ErrorCode::MemTimingInequality => "MEA021",
            ErrorCode::MemMappingParam => "MEA022",
            ErrorCode::MemBadEnergy => "MEA023",
            ErrorCode::MemMappingNotBijective => "MEA024",
            ErrorCode::MemBadAsymmetricSplit => "MEA025",
            ErrorCode::PhysOverlap => "MEA030",
            ErrorCode::PhysOutOfRegion => "MEA031",
            ErrorCode::PhysMisaligned => "MEA032",
            ErrorCode::PhysUnreachableDescriptor => "MEA033",
            ErrorCode::PhysAccounting => "MEA034",
            ErrorCode::PhysVmapInconsistent => "MEA035",
            ErrorCode::DfUninitRead => "MEA100",
            ErrorCode::DfDeadBuffer => "MEA101",
            ErrorCode::DfOverlap => "MEA102",
            ErrorCode::DfStaleRead => "MEA103",
            ErrorCode::DfChainOverCapacity => "MEA104",
            ErrorCode::DfCyclicDependence => "MEA105",
            ErrorCode::BoundsCapacityOverflow => "MEA200",
            ErrorCode::BoundsBandwidthInfeasible => "MEA201",
            ErrorCode::BoundsVaultSkew => "MEA202",
            ErrorCode::BoundsEnergyBudget => "MEA203",
            ErrorCode::InterferePartitionOverlap => "MEA300",
            ErrorCode::InterfereBusOversubscribed => "MEA301",
            ErrorCode::InterfereLatencyBudget => "MEA302",
            ErrorCode::InterfereEnergyEnvelope => "MEA303",
        }
    }

    /// A one-line title for the error table.
    pub fn title(self) -> &'static str {
        match self {
            ErrorCode::TdlInPlaceChain => "chained PASS streams in place",
            ErrorCode::TdlChainTooLong => "COMP chain exceeds tile switch fan-in",
            ErrorCode::TdlIllegalChain => "COMP sequence is not stream-compatible",
            ErrorCode::TdlDanglingParams => "dangling params= reference",
            ErrorCode::TdlLoopTripCount => "LOOP trip count or footprint out of range",
            ErrorCode::TdlBufferHazard => "buffer def-use hazard",
            ErrorCode::DescTruncated => "descriptor image truncated",
            ErrorCode::DescBadMagic => "control-region magic mismatch",
            ErrorCode::DescBadCommand => "unknown control command",
            ErrorCode::DescRegionOverlap => "descriptor regions overlap or are inconsistent",
            ErrorCode::DescMisalignedPr => "parameter region misaligned",
            ErrorCode::DescUnknownOpcode => "unknown instruction opcode",
            ErrorCode::DescUnbalancedBlocks => "unbalanced PASS/LOOP markers",
            ErrorCode::DescParamOutOfRange => "parameter reference outside parameter region",
            ErrorCode::DescParamMisaligned => "parameter blob misaligned",
            ErrorCode::MemZeroParameter => "timing parameter is zero",
            ErrorCode::MemTimingInequality => "DRAM timing inequality violated",
            ErrorCode::MemMappingParam => "invalid address-mapping parameter",
            ErrorCode::MemBadEnergy => "invalid energy parameter",
            ErrorCode::MemMappingNotBijective => "address interleaving is not bijective",
            ErrorCode::MemBadAsymmetricSplit => "asymmetric split point misplaced",
            ErrorCode::PhysOverlap => "live allocations overlap",
            ErrorCode::PhysOutOfRegion => "allocation outside its stack region",
            ErrorCode::PhysMisaligned => "allocation violates alignment",
            ErrorCode::PhysUnreachableDescriptor => "region unreachable by accelerator addressing",
            ErrorCode::PhysAccounting => "allocator accounting mismatch",
            ErrorCode::PhysVmapInconsistent => "virtual address map inconsistent",
            ErrorCode::DfUninitRead => "read of a buffer with no reaching definition",
            ErrorCode::DfDeadBuffer => "buffer result is never consumed",
            ErrorCode::DfOverlap => "overlapping buffer extents conflict",
            ErrorCode::DfStaleRead => "stale read across the cache coherence boundary",
            ErrorCode::DfChainOverCapacity => "chain exceeds CU stream buffering",
            ErrorCode::DfCyclicDependence => "cyclic buffer dependence can never drain",
            ErrorCode::BoundsCapacityOverflow => "peak live footprint exceeds stack capacity",
            ErrorCode::BoundsBandwidthInfeasible => "demanded throughput exceeds layer roofline",
            ErrorCode::BoundsVaultSkew => "all traffic maps to a single vault",
            ErrorCode::BoundsEnergyBudget => "modeled energy exceeds declared budget",
            ErrorCode::InterferePartitionOverlap => "tenant partitions overlap or leak",
            ErrorCode::InterfereBusOversubscribed => "session set oversubscribes the shared bus",
            ErrorCode::InterfereLatencyBudget => "interference breaks a tenant's latency budget",
            ErrorCode::InterfereEnergyEnvelope => "composed energy exceeds the aggregate envelope",
        }
    }

    /// The allocation band the code belongs to, e.g. `"MEA2xx"`.
    ///
    /// Bands group codes by pass family and are the granularity at which
    /// `mealint --deny`/`--allow` escalate or demote findings: `MEA0xx`
    /// covers the artifact checks (TDL, descriptor, memory config,
    /// physical memory), `MEA1xx` the dataflow/coherence analysis,
    /// `MEA2xx` the symbolic cost & capacity certification, and
    /// `MEA3xx` the multi-tenant interference certification.
    pub fn band(self) -> &'static str {
        match self.number() {
            0..=99 => "MEA0xx",
            100..=199 => "MEA1xx",
            200..=299 => "MEA2xx",
            _ => "MEA3xx",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable; verification still passes.
    Warning,
    /// A correctness violation; verification fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Where in the verified artifact a finding lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Span {
    /// No meaningful location (e.g. a whole-config property).
    #[default]
    None,
    /// A 1-based line in TDL (or config) source text.
    Line(usize),
    /// A byte range in a binary image.
    Bytes {
        /// First byte of the finding.
        offset: usize,
        /// Length of the offending field.
        len: usize,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Span::None => Ok(()),
            Span::Line(line) => write!(f, "line {line}"),
            Span::Bytes { offset, len } => write!(f, "bytes {offset}..{}", offset + len),
        }
    }
}

/// One static-verification finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: ErrorCode,
    /// Error or warning.
    pub severity: Severity,
    /// Location in the artifact.
    pub span: Span,
    /// Human-readable explanation with the concrete offending values.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic with no span.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            span: Span::None,
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic with no span.
    pub fn warning(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            span: Span::None,
            message: message.into(),
        }
    }

    /// Attaches a location.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Attaches a source-line location.
    pub fn at_line(self, line: usize) -> Self {
        self.with_span(Span::Line(line))
    }

    /// Attaches a byte-range location.
    pub fn at_bytes(self, offset: usize, len: usize) -> Self {
        self.with_span(Span::Bytes { offset, len })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.message)?;
        match self.span {
            Span::None => Ok(()),
            span => write!(f, " ({span})"),
        }
    }
}

/// The accumulated findings of one or more verifier passes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Absorbs another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All findings, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Returns `true` if nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Returns `true` if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Returns `true` if any finding carries `code`.
    pub fn has_code(&self, code: ErrorCode) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Converts the report into a `Result`: `Ok(())` when error-free
    /// (warnings allowed), `Err(self)` otherwise.
    ///
    /// # Errors
    ///
    /// Returns the report itself when it contains at least one error.
    pub fn into_result(self) -> Result<(), Report> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok(())
        }
    }

    /// Renders every finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// `Report` doubles as the error type for verification APIs.
impl std::error::Error for Report {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_stable_and_ordered() {
        let mut seen = std::collections::BTreeSet::new();
        let mut last = 0u16;
        for code in ErrorCode::ALL {
            assert!(seen.insert(code.number()), "duplicate code {code}");
            assert!(code.number() > last || last == 0, "{code} out of order");
            last = code.number();
            assert_eq!(code.as_str(), format!("MEA{:03}", code.number()));
            assert!(!code.title().is_empty());
        }
    }

    #[test]
    fn bands_partition_the_code_space() {
        for code in ErrorCode::ALL {
            let expect = match code.number() {
                n if n < 100 => "MEA0xx",
                n if n < 200 => "MEA1xx",
                n if n < 300 => "MEA2xx",
                _ => "MEA3xx",
            };
            assert_eq!(code.band(), expect, "{code}");
        }
        assert_eq!(ErrorCode::BoundsCapacityOverflow.band(), "MEA2xx");
        assert_eq!(ErrorCode::DfUninitRead.band(), "MEA1xx");
        assert_eq!(ErrorCode::TdlInPlaceChain.band(), "MEA0xx");
        assert_eq!(ErrorCode::InterferePartitionOverlap.band(), "MEA3xx");
    }

    #[test]
    fn report_counts_and_result_conversion() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(r.clone().into_result().is_ok());
        r.push(Diagnostic::warning(ErrorCode::TdlBufferHazard, "w"));
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        assert!(r.clone().into_result().is_ok(), "warnings alone pass");
        r.push(Diagnostic::error(ErrorCode::DescBadMagic, "bad").at_bytes(0, 4));
        assert!(r.has_errors());
        assert!(r.has_code(ErrorCode::DescBadMagic));
        assert!(!r.has_code(ErrorCode::DescTruncated));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.into_result().is_err());
    }

    #[test]
    fn rendering_includes_code_severity_and_span() {
        let d = Diagnostic::error(ErrorCode::DescBadMagic, "magic is 0xDEAD").at_bytes(0, 4);
        assert_eq!(d.to_string(), "error[MEA011] magic is 0xDEAD (bytes 0..4)");
        let d = Diagnostic::warning(ErrorCode::TdlBufferHazard, "buffer `x` rewritten").at_line(7);
        assert_eq!(
            d.to_string(),
            "warning[MEA006] buffer `x` rewritten (line 7)"
        );
        let mut r = Report::new();
        r.push(d);
        let text = r.render();
        assert!(text.contains("MEA006"));
        assert!(text.ends_with("0 error(s), 1 warning(s)"));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.push(Diagnostic::error(ErrorCode::MemZeroParameter, "t_rcd is 0"));
        let mut b = Report::new();
        b.push(Diagnostic::warning(ErrorCode::MemBadEnergy, "negative"));
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
    }
}
