//! Shared error vocabulary.

use core::fmt;

/// An invalid configuration value was supplied to a simulator component.
///
/// Every subsystem validates its construction parameters eagerly
/// (C-VALIDATE); this error carries the offending parameter name and a
/// human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    parameter: String,
    message: String,
}

impl ConfigError {
    /// Creates a configuration error for `parameter` with an explanation.
    pub fn new(parameter: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            parameter: parameter.into(),
            message: message.into(),
        }
    }

    /// The name of the offending parameter.
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// The explanation of why the value was rejected.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration `{}`: {}",
            self.parameter, self.message
        )
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_parameter_and_message() {
        let e = ConfigError::new("vaults", "must be a power of two");
        assert_eq!(
            e.to_string(),
            "invalid configuration `vaults`: must be a power of two"
        );
        assert_eq!(e.parameter(), "vaults");
        assert_eq!(e.message(), "must be a power of two");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
