//! Symbolic interval domain for the static cost & capacity certifier.
//!
//! The `mealib-verify::bounds` pass family certifies resource counters
//! (bytes moved, DRAM commands, peak footprint, cycles, energy) as
//! closed intervals `[lo, hi]`: the cycle engine's measurement must fall
//! inside the interval, and when the access pattern is affine with
//! static trip counts the interval collapses to a point (`lo == hi`).
//! All certified counters are non-negative, so the arithmetic here is
//! monotone interval arithmetic over `[0, +inf)`; that keeps products
//! sound without case-splitting on signs.
//!
//! Counters are carried as `f64`. Command and byte counts in this
//! workspace stay far below 2^53, so integral counters remain exactly
//! representable and `lo == hi` is a meaningful exactness witness.

use core::fmt;
use core::ops::{Add, Mul};

/// A closed non-negative interval `[lo, hi]` over one resource counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Certified lower bound (inclusive).
    pub lo: f64,
    /// Certified upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// The additive identity: the exact point `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// A new interval; clamps to `[0, +inf)` and orders the endpoints,
    /// so a sloppy caller cannot construct an empty or negative range.
    pub fn new(lo: f64, hi: f64) -> Self {
        let lo = lo.max(0.0);
        let hi = hi.max(0.0);
        Self {
            lo: lo.min(hi),
            hi: lo.max(hi),
        }
    }

    /// The exact point interval `[v, v]`.
    pub fn exact(v: f64) -> Self {
        Self::new(v, v)
    }

    /// True when the interval certifies a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// True when `v` lies inside the interval (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The interval's width `hi - lo` (0 for exact intervals).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// The smallest interval containing both operands (convex hull);
    /// the join of the interval lattice.
    pub fn hull(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Pointwise maximum — sound for `max`-combined counters such as
    /// the per-unit critical path.
    pub fn max(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Scales by a non-negative constant (e.g. a static trip count).
    pub fn scale(&self, k: f64) -> Interval {
        debug_assert!(k >= 0.0, "trip counts and unit constants are non-negative");
        Interval::new(self.lo * k, self.hi * k)
    }

    /// Interval quotient `self / divisor` for a divisor known to lie in
    /// a positive interval — used for rates (bytes / seconds).
    pub fn div(&self, divisor: Interval) -> Interval {
        debug_assert!(divisor.lo > 0.0, "divisor interval must be positive");
        Interval::new(self.lo / divisor.hi, self.hi / divisor.lo)
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::ZERO
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    /// Product of two non-negative intervals (monotone, no sign cases).
    fn mul(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo * rhs.lo,
            hi: self.hi * rhs.hi,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_orders_and_clamps() {
        let i = Interval::new(5.0, 2.0);
        assert_eq!((i.lo, i.hi), (2.0, 5.0));
        let i = Interval::new(-3.0, 4.0);
        assert_eq!(i.lo, 0.0);
        assert!(Interval::exact(7.0).is_exact());
        assert!(!i.is_exact());
    }

    #[test]
    fn containment_and_width() {
        let i = Interval::new(2.0, 5.0);
        assert!(i.contains(2.0));
        assert!(i.contains(5.0));
        assert!(!i.contains(5.1));
        assert_eq!(i.width(), 3.0);
        assert_eq!(Interval::exact(9.0).width(), 0.0);
    }

    #[test]
    fn arithmetic_is_monotone_and_exactness_preserving() {
        let a = Interval::exact(3.0);
        let b = Interval::exact(4.0);
        assert!((a + b).is_exact());
        assert!((a * b).is_exact());
        assert_eq!((a + b).lo, 7.0);
        assert_eq!((a * b).hi, 12.0);
        let w = Interval::new(1.0, 2.0);
        let s = a + w;
        assert_eq!((s.lo, s.hi), (4.0, 5.0));
        let p = w * Interval::new(10.0, 20.0);
        assert_eq!((p.lo, p.hi), (10.0, 40.0));
    }

    #[test]
    fn hull_max_scale_div() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(2.0, 5.0);
        assert_eq!(a.hull(b), Interval::new(1.0, 5.0));
        assert_eq!(a.max(b), Interval::new(2.0, 5.0));
        assert_eq!(a.scale(2.0), Interval::new(2.0, 6.0));
        let q = Interval::new(10.0, 20.0).div(Interval::new(2.0, 4.0));
        assert_eq!((q.lo, q.hi), (2.5, 10.0));
    }

    #[test]
    fn soundness_shape_sampled() {
        // For any x in a and y in b, x+y in a+b and x*y in a*b.
        let a = Interval::new(1.5, 4.0);
        let b = Interval::new(0.0, 2.5);
        for xi in 0..=4 {
            for yi in 0..=4 {
                let x = a.lo + (a.hi - a.lo) * xi as f64 / 4.0;
                let y = b.lo + (b.hi - b.lo) * yi as f64 / 4.0;
                assert!((a + b).contains(x + y));
                assert!((a * b).contains(x * y));
            }
        }
    }
}
