//! Common foundational types for the MEALib reproduction workspace.
//!
//! This crate defines the vocabulary shared by every subsystem simulator:
//! physical units ([`Cycles`], [`Seconds`], [`Joules`], [`Watts`],
//! [`Bytes`], [`Hertz`], [`BytesPerSec`], [`Gflops`]), address newtypes
//! ([`PhysAddr`], [`VirtAddr`], [`AddrRange`]), single-precision complex
//! arithmetic ([`Complex32`]) used by the FFT/STAP kernels, and small
//! statistics helpers used by the experiment harnesses.
//!
//! # Examples
//!
//! ```
//! use mealib_types::{Bytes, Seconds, BytesPerSec};
//!
//! let moved = Bytes::from_gib(1);
//! let elapsed = Seconds::from_millis(250.0);
//! let bw: BytesPerSec = moved.per(elapsed);
//! assert!((bw.as_gib_per_sec() - 4.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod complex;
pub mod diag;
pub mod error;
pub mod interval;
pub mod par;
pub mod stats;
pub mod units;

pub use addr::{AddrRange, PhysAddr, VirtAddr};
pub use complex::Complex32;
pub use diag::{Diagnostic, ErrorCode, Report, Severity, Span};
pub use error::ConfigError;
pub use interval::Interval;
pub use par::{auto_jobs, par_map};
pub use stats::{geometric_mean, Counter, RunningStats};
pub use units::{Bytes, BytesPerSec, Cycles, Gflops, Hertz, Joules, Seconds, Watts};
