//! Deterministic bounded-worker parallel map.
//!
//! The simulators shard embarrassingly parallel work — per-vault trace
//! replay in `mealib-memsim`, independent design points and experiment
//! configurations in `mealib-accel`/`mealib-sim` — across OS threads.
//! [`par_map`] is the one primitive they all share: a scoped worker pool
//! that preserves input order in its output, so a parallel run is
//! *positionally* indistinguishable from the serial `items.iter().map(f)`
//! it replaces. Determinism beyond ordering is the closure's business:
//! `f` must not depend on cross-item mutable state.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a user-facing `jobs` knob to a concrete worker count.
///
/// The convention, shared by every `jobs` parameter in the workspace
/// (`SimOptions::jobs`, `run_sweep`, `SweepOptions::jobs`, the bench
/// bins' `--jobs`):
///
/// * `0` ⇒ **auto**: one worker per available hardware thread
///   ([`std::thread::available_parallelism`], falling back to 1 when
///   the platform cannot say);
/// * `1` ⇒ the **exact serial path** on the calling thread — never the
///   sharded merge;
/// * `n > 1` ⇒ up to `n` workers.
///
/// Callers normalize through this one function so `0` and `1` mean the
/// same thing on every parallel path.
pub fn auto_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results in input order.
///
/// `jobs <= 1` (or a single-item slice) degenerates to the plain serial
/// map on the calling thread — the fallback path used when callers pass
/// `--jobs 1`. Workers pull items off a shared atomic cursor, so uneven
/// per-item costs balance automatically; results are reassembled by index
/// afterwards, which is what makes the output order (and therefore any
/// order-dependent reduction the caller performs) independent of thread
/// scheduling.
///
/// # Panics
///
/// Propagates the first worker panic to the caller.
pub fn par_map<T, R>(items: &[T], jobs: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| match w.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64, 1000] {
            assert_eq!(par_map(&items, jobs, |x| x * x), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn repeated_runs_are_identical() {
        let items: Vec<u64> = (0..100).collect();
        let first = par_map(&items, 4, |x| x.wrapping_mul(0x9e3779b97f4a7c15));
        for _ in 0..10 {
            let again = par_map(&items, 4, |x| x.wrapping_mul(0x9e3779b97f4a7c15));
            assert_eq!(again, first);
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        let items = [1u32, 2, 3];
        let _ = par_map(&items, 2, |x| {
            if *x == 2 {
                panic!("worker boom");
            }
            *x
        });
    }
}
