//! Small statistics helpers used by the experiment harnesses.

use core::fmt;

/// Streaming min/max/mean/variance over a sequence of `f64` samples
/// (Welford's online algorithm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample into the accumulator.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if no samples were observed.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if no samples were observed.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` if no samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` if no samples were observed.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if no samples were observed.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.4} min={:.4} max={:.4}",
                self.count, mean, self.min, self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// Used for the paper's "on average 38x / 75x" style aggregates, which are
/// geometric means across operations.
///
/// Returns `None` for an empty slice or if any value is not strictly
/// positive.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// A labelled monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_none() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn stats_match_closed_form() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 100.0]).unwrap() - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[8.0]).unwrap() - 8.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        assert_eq!(geometric_mean(&[1.0, f64::INFINITY]), None);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_string(), "42");
    }
}
