//! Physical unit newtypes used throughout the simulators.
//!
//! All quantities are kept in explicit newtypes so that, e.g., a joule can
//! never be added to a second by accident (C-NEWTYPE). Conversions between
//! related quantities are spelled out as methods: `Joules / Seconds = Watts`,
//! `Bytes / Seconds = BytesPerSec`, `Cycles / Hertz = Seconds`, and so on.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

macro_rules! f64_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value expressed in the base unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` if the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6} {}", self.0, $suffix)
            }
        }
    };
}

f64_unit!(
    /// A duration in seconds.
    Seconds,
    "s"
);
f64_unit!(
    /// An amount of energy in joules.
    Joules,
    "J"
);
f64_unit!(
    /// A power draw in watts.
    Watts,
    "W"
);
f64_unit!(
    /// A clock frequency in hertz.
    Hertz,
    "Hz"
);
f64_unit!(
    /// A data rate in bytes per second.
    BytesPerSec,
    "B/s"
);
f64_unit!(
    /// A floating-point throughput in giga floating-point operations
    /// per second.
    Gflops,
    "GFLOPS"
);

impl Seconds {
    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// This duration expressed in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// This duration expressed in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Joules {
    /// Creates an energy from millijoules.
    #[inline]
    pub fn from_millis(mj: f64) -> Self {
        Self(mj * 1e-3)
    }

    /// Creates an energy from nanojoules.
    #[inline]
    pub fn from_nanos(nj: f64) -> Self {
        Self(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    #[inline]
    pub fn from_picos(pj: f64) -> Self {
        Self(pj * 1e-12)
    }

    /// Average power over a duration.
    ///
    /// Returns [`Watts::ZERO`] when `elapsed` is zero so that idle
    /// components never produce NaN power reports.
    #[inline]
    pub fn over(self, elapsed: Seconds) -> Watts {
        if elapsed.is_zero() {
            Watts::ZERO
        } else {
            Watts(self.0 / elapsed.get())
        }
    }
}

impl Watts {
    /// Energy consumed at this power over a duration.
    #[inline]
    pub fn for_duration(self, elapsed: Seconds) -> Joules {
        Joules(self.0 * elapsed.get())
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// This frequency expressed in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period(self) -> Seconds {
        assert!(self.0 > 0.0, "zero frequency has no period");
        Seconds(1.0 / self.0)
    }
}

impl BytesPerSec {
    /// Creates a data rate from GiB/s (2^30 bytes per second).
    #[inline]
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Self(gib * (1u64 << 30) as f64)
    }

    /// Creates a data rate from GB/s (10^9 bytes per second).
    #[inline]
    pub fn from_gb_per_sec(gb: f64) -> Self {
        Self(gb * 1e9)
    }

    /// This data rate expressed in GiB/s.
    #[inline]
    pub fn as_gib_per_sec(self) -> f64 {
        self.0 / (1u64 << 30) as f64
    }

    /// This data rate expressed in GB/s (10^9).
    #[inline]
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 * 1e-9
    }
}

impl Gflops {
    /// Creates a throughput from a raw FLOP count over a duration.
    #[inline]
    pub fn from_flops(flops: f64, elapsed: Seconds) -> Self {
        if elapsed.is_zero() {
            Self::ZERO
        } else {
            Self(flops / elapsed.get() * 1e-9)
        }
    }

    /// Energy efficiency in GFLOPS per watt.
    #[inline]
    pub fn per_watt(self, power: Watts) -> f64 {
        if power.is_zero() {
            0.0
        } else {
            self.0 / power.get()
        }
    }
}

/// A whole number of clock cycles.
///
/// Unlike the `f64` quantities above, cycles are discrete: the DRAM and NoC
/// simulators advance in integer ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Self = Self(0);

    /// Wraps a raw cycle count.
    #[inline]
    pub const fn new(count: u64) -> Self {
        Self(count)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to wall-clock time at a given clock frequency.
    #[inline]
    pub fn at(self, clock: Hertz) -> Seconds {
        Seconds::new(self.0 as f64 / clock.get())
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A byte count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Self = Self(0);

    /// Wraps a raw byte count.
    #[inline]
    pub const fn new(count: u64) -> Self {
        Self(count)
    }

    /// Creates a byte count from KiB.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib << 10)
    }

    /// Creates a byte count from MiB.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib << 20)
    }

    /// Creates a byte count from GiB.
    #[inline]
    pub const fn from_gib(gib: u64) -> Self {
        Self(gib << 30)
    }

    /// Returns the raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// This count expressed in MiB.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }

    /// This count expressed in GiB.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }

    /// Average data rate when this many bytes move in `elapsed`.
    #[inline]
    pub fn per(self, elapsed: Seconds) -> BytesPerSec {
        if elapsed.is_zero() {
            BytesPerSec::ZERO
        } else {
            BytesPerSec::new(self.0 as f64 / elapsed.get())
        }
    }

    /// Time to move this many bytes at a given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[inline]
    pub fn at_rate(self, rate: BytesPerSec) -> Seconds {
        assert!(rate.get() > 0.0, "cannot move data at zero bandwidth");
        Seconds::new(self.0 as f64 / rate.get())
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        self.0.checked_add(rhs.0).map(Self)
    }

    /// Rounds up to the next multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    #[inline]
    pub fn align_up(self, align: u64) -> Self {
        assert!(align > 0, "alignment must be nonzero");
        Self(self.0.div_ceil(align) * align)
    }
}

impl Add for Bytes {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if b >= 1 << 20 {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if b >= 1 << 10 {
            write!(f, "{:.2} KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(10.0).for_duration(Seconds::new(2.0));
        assert_eq!(e, Joules::new(20.0));
        assert_eq!(e.over(Seconds::new(2.0)), Watts::new(10.0));
    }

    #[test]
    fn zero_duration_power_is_zero() {
        assert_eq!(Joules::new(5.0).over(Seconds::ZERO), Watts::ZERO);
    }

    #[test]
    fn cycles_to_seconds() {
        let t = Cycles::new(2_000_000_000).at(Hertz::from_ghz(2.0));
        assert!((t.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::from_kib(1).get(), 1024);
        assert_eq!(Bytes::from_mib(1).get(), 1 << 20);
        assert_eq!(Bytes::from_gib(1).get(), 1 << 30);
        assert_eq!(format!("{}", Bytes::new(512)), "512 B");
        assert_eq!(format!("{}", Bytes::from_gib(2)), "2.00 GiB");
    }

    #[test]
    fn bandwidth_round_trip() {
        let bw = Bytes::from_gib(4).per(Seconds::new(2.0));
        assert!((bw.as_gib_per_sec() - 2.0).abs() < 1e-12);
        let t = Bytes::from_gib(4).at_rate(bw);
        assert!((t.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn align_up_rounds_to_multiple() {
        assert_eq!(Bytes::new(1).align_up(4096).get(), 4096);
        assert_eq!(Bytes::new(4096).align_up(4096).get(), 4096);
        assert_eq!(Bytes::new(4097).align_up(4096).get(), 8192);
        assert_eq!(Bytes::ZERO.align_up(64).get(), 0);
    }

    #[test]
    #[should_panic(expected = "alignment must be nonzero")]
    fn align_up_zero_alignment_panics() {
        let _ = Bytes::new(1).align_up(0);
    }

    #[test]
    fn gflops_from_flops() {
        let g = Gflops::from_flops(2e9, Seconds::new(1.0));
        assert!((g.get() - 2.0).abs() < 1e-12);
        assert!((g.per_watt(Watts::new(4.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unit_sums() {
        let total: Joules = [Joules::new(1.0), Joules::new(2.5)].into_iter().sum();
        assert_eq!(total, Joules::new(3.5));
        let total: Cycles = [Cycles::new(3), Cycles::new(4)].into_iter().sum();
        assert_eq!(total.get(), 7);
    }

    #[test]
    fn hertz_period() {
        let p = Hertz::from_mhz(100.0).period();
        assert!((p.get() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn ratio_of_like_units_is_dimensionless() {
        let speedup = Seconds::new(10.0) / Seconds::new(2.0);
        assert!((speedup - 5.0).abs() < 1e-12);
    }
}
