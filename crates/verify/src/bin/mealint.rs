//! `mealint` — cross-layer static verifier for MEALib artifacts.
//!
//! ```text
//! mealint [--codes] [--format text|json] [--deny BAND|CODE]... [--allow CODE|BAND]... FILE...
//! ```
//!
//! Each file is sniffed and routed to the right pass: binary images
//! starting with the `"MEAL"` magic run the descriptor pass, text in
//! the `key = value` memconfig format runs the simulator-config pass,
//! text containing a `TENANT` directive runs in **session-set mode**
//! (per-tenant TDL + dataflow passes plus the MEA3xx multi-tenant
//! interference certification, printing the ADMIT/REJECT/UNKNOWN
//! admission verdict), and everything else is treated as a TDL
//! analysis session (plain TDL plus optional
//! `HOST`/`FLUSH`/`BUF`/`BUDGET`/`MEM` directives), which runs the TDL
//! semantic pass, the dataflow & coherence analysis, and the MEA2xx
//! static-bounds certification.
//!
//! Severity policy: `--deny` escalates every diagnostic matching a band
//! (`MEA0xx`, `MEA1xx`, `MEA2xx`, `MEA3xx`) or a single code (`MEA104`)
//! to error severity; `--allow` demotes matches to warnings. A specific code
//! selector beats a band selector, and at equal specificity `--allow`
//! wins, so `--deny MEA2xx --allow MEA202` gates the band while keeping
//! one code advisory. The intended CI posture during the MEA2xx rollout
//! is `--deny MEA0xx --deny MEA1xx --allow MEA2xx`: established bands
//! hard-gate, bounds findings are report-only.
//!
//! Exit status (stable, scripts may rely on it): `0` when every file is
//! clean or carries only warnings after policy, `1` when any file has
//! error-severity findings after policy, `2` on usage, I/O, or parse
//! failures.
//!
//! With `--format json`, every diagnostic is emitted as one JSON object
//! per line (`file`/`code`/`number`/`band`/`severity`/`message`/`span`)
//! for CI and editor consumption; clean files emit nothing. Exit-code
//! semantics are identical in both formats.

use std::process::ExitCode;

use mealib_obs::json::Object;
use mealib_tdl::descriptor::MAGIC;
use mealib_verify::{
    bounds, dataflow, descriptor, interference, memconfig, memsim, tdl, BoundsEnv, DataflowEnv,
    Report, Severity, Span, TdlLimits, Verdict,
};

enum Outcome {
    Clean,
    Findings(Report),
    /// Session-set mode: the admission verdict plus any findings.
    Certified(Verdict, Report),
    Unusable(String),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// A `--deny`/`--allow` selector: a whole band or one code.
#[derive(Clone, PartialEq, Eq)]
enum Selector {
    Band(String),
    Code(String),
}

impl Selector {
    fn parse(raw: &str) -> Result<Self, String> {
        let canon = raw.to_ascii_uppercase();
        if matches!(canon.as_str(), "MEA0XX" | "MEA1XX" | "MEA2XX" | "MEA3XX") {
            // Bands are spelled MEAnxx; normalize the xx back down.
            return Ok(Selector::Band(canon.replace("XX", "xx")));
        }
        if mealib_verify::ErrorCode::ALL
            .iter()
            .any(|c| c.as_str() == canon)
        {
            return Ok(Selector::Code(canon));
        }
        Err(format!(
            "unknown code or band {raw:?} (expected e.g. MEA104 or MEA2xx; see --codes)"
        ))
    }

    fn matches(&self, code: mealib_verify::ErrorCode) -> bool {
        match self {
            Selector::Band(b) => code.band() == b,
            Selector::Code(c) => code.as_str() == c,
        }
    }

    fn is_code(&self) -> bool {
        matches!(self, Selector::Code(_))
    }
}

/// Severity overrides from `--deny`/`--allow`. A specific code selector
/// beats a band selector; at equal specificity `--allow` wins.
#[derive(Clone, Default)]
struct SeverityPolicy {
    deny: Vec<Selector>,
    allow: Vec<Selector>,
}

impl SeverityPolicy {
    fn apply(&self, report: Report) -> Report {
        let mut out = Report::new();
        for d in report.diagnostics() {
            let mut d = d.clone();
            let allow_code = self.allow.iter().any(|s| s.is_code() && s.matches(d.code));
            let deny_code = self.deny.iter().any(|s| s.is_code() && s.matches(d.code));
            let allow_band = self.allow.iter().any(|s| !s.is_code() && s.matches(d.code));
            let deny_band = self.deny.iter().any(|s| !s.is_code() && s.matches(d.code));
            if allow_code || (allow_band && !deny_code) {
                d.severity = Severity::Warning;
            } else if deny_code || deny_band {
                d.severity = Severity::Error;
            }
            out.push(d);
        }
        out
    }
}

fn lint_file(path: &str) -> Outcome {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return Outcome::Unusable(format!("cannot read {path}: {e}")),
    };

    if bytes.len() >= 4 && bytes[0..4] == MAGIC.to_le_bytes() {
        return finish(descriptor::verify_image(&bytes));
    }

    let Ok(text) = std::str::from_utf8(&bytes) else {
        return Outcome::Unusable(format!(
            "{path}: not a descriptor image (no MEAL magic) and not UTF-8 text"
        ));
    };

    if memconfig::looks_like_memconfig(text) {
        return match memconfig::parse_memconfig(text) {
            Ok(config) => finish(memsim::verify_memconfig(&config)),
            Err(e) => Outcome::Unusable(format!("{path}: {e}")),
        };
    }

    // Session-set manifests: per-tenant structural passes plus the
    // MEA3xx interference certification and its admission verdict.
    // Composed resource certification (MEA30x) replaces the isolated
    // MEA2xx bounds here — tenant budgets are judged under the mix.
    if interference::looks_like_session_set(text) {
        let set = match interference::parse_session_set(text) {
            Ok(s) => s,
            Err(e) => return Outcome::Unusable(format!("{path}: manifest parse error: {e}")),
        };
        let mut report = Report::new();
        for tenant in &set.tenants {
            report.merge(tdl::verify_program(
                &tenant.session.program,
                Some(&tenant.session.lines),
                None,
                &TdlLimits::default(),
            ));
            report.merge(dataflow::verify_session(
                &tenant.session,
                &DataflowEnv::default(),
            ));
        }
        let cert = match interference::certify_set(&set, &BoundsEnv::default()) {
            Ok(c) => c,
            Err(e) => return Outcome::Unusable(format!("{path}: {e}")),
        };
        report.merge(cert.report);
        return Outcome::Certified(cert.verdict, report);
    }

    // TDL analysis sessions: directives go to the dataflow pass, the
    // TDL remainder additionally runs the semantic pass.
    let session = match dataflow::parse_session(text) {
        Ok(s) => s,
        Err(e) => return Outcome::Unusable(format!("{path}: TDL parse error: {e}")),
    };
    let mut report = tdl::verify_program(
        &session.program,
        Some(&session.lines),
        None,
        &TdlLimits::default(),
    );
    report.merge(dataflow::verify_session(&session, &DataflowEnv::default()));
    report.merge(bounds::verify_session_bounds(
        &session,
        &BoundsEnv::default(),
    ));
    finish(report)
}

fn finish(report: Report) -> Outcome {
    if report.is_clean() {
        Outcome::Clean
    } else {
        Outcome::Findings(report)
    }
}

fn span_json(span: &Span) -> String {
    let mut o = Object::new();
    match span {
        Span::None => o.str("kind", "none"),
        Span::Line(l) => o.str("kind", "line").int("line", *l as u64),
        Span::Bytes { offset, len } => o
            .str("kind", "bytes")
            .int("offset", *offset as u64)
            .int("len", *len as u64),
    };
    o.render()
}

fn print_report(path: &str, report: &Report, format: Format) {
    match format {
        Format::Text => {
            println!("{path}:");
            for line in report.render().lines() {
                println!("  {line}");
            }
        }
        Format::Json => {
            for d in report.diagnostics() {
                let severity = match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                };
                let mut o = Object::new();
                o.str("file", path)
                    .str("code", d.code.as_str())
                    .int("number", u64::from(d.code.number()))
                    .str("band", d.code.band())
                    .str("severity", severity)
                    .str("message", &d.message)
                    .raw("span", span_json(&d.span));
                println!("{}", o.render());
            }
        }
    }
}

fn parse_args(args: &[String]) -> Result<(Format, SeverityPolicy, Vec<String>), String> {
    let mut format = Format::Text;
    let mut policy = SeverityPolicy::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--format" {
            match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            }
        } else if arg == "--deny" || arg == "--allow" {
            let Some(sel) = it.next() else {
                return Err(format!(
                    "{arg} expects a code or band (e.g. MEA104, MEA2xx)"
                ));
            };
            let sel = Selector::parse(sel)?;
            if arg == "--deny" {
                policy.deny.push(sel);
            } else {
                policy.allow.push(sel);
            }
        } else if arg.starts_with('-') {
            return Err(format!("unknown option {arg}"));
        } else {
            files.push(arg.clone());
        }
    }
    if files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok((format, policy, files))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--codes") {
        print!("{}", mealib_verify::error_code_table());
        return ExitCode::SUCCESS;
    }
    let (format, policy, files) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("mealint: {msg}");
            eprintln!(
                "usage: mealint [--codes] [--format text|json] [--deny BAND|CODE]... [--allow \
                 CODE|BAND]... FILE..."
            );
            return ExitCode::from(2);
        }
    };

    let mut worst = 0u8;
    for path in &files {
        match lint_file(path) {
            Outcome::Clean => {
                if format == Format::Text {
                    println!("{path}: ok");
                }
            }
            Outcome::Findings(report) => {
                let report = policy.apply(report);
                print_report(path, &report, format);
                if report.has_errors() {
                    worst = worst.max(1);
                }
            }
            Outcome::Certified(verdict, report) => {
                let report = policy.apply(report);
                if !report.is_clean() {
                    print_report(path, &report, format);
                }
                match format {
                    Format::Text => println!("{path}: verdict {verdict}"),
                    Format::Json => {
                        let mut o = Object::new();
                        o.str("file", path).str("verdict", verdict.label());
                        println!("{}", o.render());
                    }
                }
                if report.has_errors() {
                    worst = worst.max(1);
                }
            }
            Outcome::Unusable(msg) => {
                eprintln!("mealint: {msg}");
                worst = 2;
            }
        }
    }
    ExitCode::from(worst)
}
