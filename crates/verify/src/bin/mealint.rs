//! `mealint` — cross-layer static verifier for MEALib artifacts.
//!
//! ```text
//! mealint [--codes] [--format text|json] FILE...
//! ```
//!
//! Each file is sniffed and routed to the right pass: binary images
//! starting with the `"MEAL"` magic run the descriptor pass, text in
//! the `key = value` memconfig format runs the simulator-config pass,
//! and everything else is treated as a TDL analysis session (plain TDL
//! plus optional `HOST`/`FLUSH`/`BUF` directives), which runs both the
//! TDL semantic pass and the dataflow & coherence analysis. Exit
//! status: `0` when every file is clean (warnings allowed), `1` when
//! any file has coded errors, `2` on usage, I/O, or parse failures.
//!
//! With `--format json`, every diagnostic is emitted as one JSON object
//! per line (`file`/`code`/`number`/`severity`/`message`/`span`) for CI
//! and editor consumption; clean files emit nothing. Exit-code
//! semantics are identical in both formats.

use std::process::ExitCode;

use mealib_obs::json::Object;
use mealib_tdl::descriptor::MAGIC;
use mealib_verify::{
    dataflow, descriptor, memconfig, memsim, tdl, DataflowEnv, Report, Severity, Span, TdlLimits,
};

enum Outcome {
    Clean,
    Findings(Report),
    Unusable(String),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn lint_file(path: &str) -> Outcome {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return Outcome::Unusable(format!("cannot read {path}: {e}")),
    };

    if bytes.len() >= 4 && bytes[0..4] == MAGIC.to_le_bytes() {
        return finish(descriptor::verify_image(&bytes));
    }

    let Ok(text) = std::str::from_utf8(&bytes) else {
        return Outcome::Unusable(format!(
            "{path}: not a descriptor image (no MEAL magic) and not UTF-8 text"
        ));
    };

    if memconfig::looks_like_memconfig(text) {
        return match memconfig::parse_memconfig(text) {
            Ok(config) => finish(memsim::verify_memconfig(&config)),
            Err(e) => Outcome::Unusable(format!("{path}: {e}")),
        };
    }

    // TDL analysis sessions: directives go to the dataflow pass, the
    // TDL remainder additionally runs the semantic pass.
    let session = match dataflow::parse_session(text) {
        Ok(s) => s,
        Err(e) => return Outcome::Unusable(format!("{path}: TDL parse error: {e}")),
    };
    let mut report = tdl::verify_program(
        &session.program,
        Some(&session.lines),
        None,
        &TdlLimits::default(),
    );
    report.merge(dataflow::verify_session(&session, &DataflowEnv::default()));
    finish(report)
}

fn finish(report: Report) -> Outcome {
    if report.is_clean() {
        Outcome::Clean
    } else {
        Outcome::Findings(report)
    }
}

fn span_json(span: &Span) -> String {
    let mut o = Object::new();
    match span {
        Span::None => o.str("kind", "none"),
        Span::Line(l) => o.str("kind", "line").int("line", *l as u64),
        Span::Bytes { offset, len } => o
            .str("kind", "bytes")
            .int("offset", *offset as u64)
            .int("len", *len as u64),
    };
    o.render()
}

fn print_report(path: &str, report: &Report, format: Format) {
    match format {
        Format::Text => {
            println!("{path}:");
            for line in report.render().lines() {
                println!("  {line}");
            }
        }
        Format::Json => {
            for d in report.diagnostics() {
                let severity = match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                };
                let mut o = Object::new();
                o.str("file", path)
                    .str("code", d.code.as_str())
                    .int("number", u64::from(d.code.number()))
                    .str("severity", severity)
                    .str("message", &d.message)
                    .raw("span", span_json(&d.span));
                println!("{}", o.render());
            }
        }
    }
}

fn parse_args(args: &[String]) -> Result<(Format, Vec<String>), String> {
    let mut format = Format::Text;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--format" {
            match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            }
        } else if arg.starts_with('-') {
            return Err(format!("unknown option {arg}"));
        } else {
            files.push(arg.clone());
        }
    }
    if files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok((format, files))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--codes") {
        print!("{}", mealib_verify::error_code_table());
        return ExitCode::SUCCESS;
    }
    let (format, files) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("mealint: {msg}");
            eprintln!("usage: mealint [--codes] [--format text|json] FILE...");
            return ExitCode::from(2);
        }
    };

    let mut worst = 0u8;
    for path in &files {
        match lint_file(path) {
            Outcome::Clean => {
                if format == Format::Text {
                    println!("{path}: ok");
                }
            }
            Outcome::Findings(report) => {
                print_report(path, &report, format);
                if report.has_errors() {
                    worst = worst.max(1);
                }
            }
            Outcome::Unusable(msg) => {
                eprintln!("mealint: {msg}");
                worst = 2;
            }
        }
    }
    ExitCode::from(worst)
}
