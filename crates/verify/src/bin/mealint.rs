//! `mealint` — cross-layer static verifier for MEALib artifacts.
//!
//! ```text
//! mealint [--codes] FILE...
//! ```
//!
//! Each file is sniffed and routed to the right pass: binary images
//! starting with the `"MEAL"` magic run the descriptor pass, text in
//! the `key = value` memconfig format runs the simulator-config pass,
//! and everything else is treated as TDL source. Exit status: `0` when
//! every file is clean (warnings allowed), `1` when any file has coded
//! errors, `2` on usage, I/O, or parse failures.

use std::process::ExitCode;

use mealib_tdl::descriptor::MAGIC;
use mealib_verify::{descriptor, memconfig, memsim, tdl, Report, TdlLimits};

enum Outcome {
    Clean,
    Findings(Report),
    Unusable(String),
}

fn lint_file(path: &str) -> Outcome {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return Outcome::Unusable(format!("cannot read {path}: {e}")),
    };

    if bytes.len() >= 4 && bytes[0..4] == MAGIC.to_le_bytes() {
        return finish(descriptor::verify_image(&bytes));
    }

    let Ok(text) = std::str::from_utf8(&bytes) else {
        return Outcome::Unusable(format!(
            "{path}: not a descriptor image (no MEAL magic) and not UTF-8 text"
        ));
    };

    if memconfig::looks_like_memconfig(text) {
        return match memconfig::parse_memconfig(text) {
            Ok(config) => finish(memsim::verify_memconfig(&config)),
            Err(e) => Outcome::Unusable(format!("{path}: {e}")),
        };
    }

    match tdl::verify_source(text, None, &TdlLimits::default()) {
        Ok(report) => finish(report),
        Err(e) => Outcome::Unusable(format!("{path}: TDL parse error: {e}")),
    }
}

fn finish(report: Report) -> Outcome {
    if report.is_clean() {
        Outcome::Clean
    } else {
        Outcome::Findings(report)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--codes") {
        print!("{}", mealib_verify::error_code_table());
        return ExitCode::SUCCESS;
    }
    if args.is_empty() || args.iter().any(|a| a.starts_with('-')) {
        eprintln!("usage: mealint [--codes] FILE...");
        return ExitCode::from(2);
    }

    let mut worst = 0u8;
    for path in &args {
        match lint_file(path) {
            Outcome::Clean => println!("{path}: ok"),
            Outcome::Findings(report) => {
                println!("{path}:");
                for line in report.render().lines() {
                    println!("  {line}");
                }
                if report.has_errors() {
                    worst = worst.max(1);
                }
            }
            Outcome::Unusable(msg) => {
                eprintln!("mealint: {msg}");
                worst = 2;
            }
        }
    }
    ExitCode::from(worst)
}
