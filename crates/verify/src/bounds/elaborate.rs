//! Canonical elaboration of a session into a memory-request trace.
//!
//! Both sides of the soundness story share this one definition of "what
//! the program does to memory": the analyzer derives its certified
//! bounds from the elaborated trace, and the differential harness runs
//! the *same* trace through the cycle engine. Each flattened pass
//! execution streams its input extent (read) and its output extent
//! (write), in program order, with loops fully unrolled — trip counts
//! are static in TDL, which is what makes the byte and command bounds
//! exact.
//!
//! The elaboration also computes the peak live-buffer footprint: a
//! buffer is live from its first event (host op or pass touching it) to
//! its last, and the footprint high-water is the largest sum of live
//! declared extents at any event. Buffers with no `BUF` extent cannot
//! be priced; they are recorded so the analyzer can report a partial
//! certificate instead of guessing.

use std::collections::BTreeMap;

use mealib_memsim::engine::Request;
use mealib_memsim::TraceBuffer;
use mealib_tdl::{AcceleratorKind, TdlItem};

use crate::dataflow::{HostOp, Session};

/// Traffic of one flattened pass execution (loops unrolled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// 1-based source line of the pass header, when known.
    pub line: Option<usize>,
    /// Input buffer name.
    pub input: String,
    /// Output buffer name.
    pub output: String,
    /// Bytes this execution moves (input read + output write), 0 when
    /// either extent is undeclared.
    pub bytes: u64,
    /// Accelerators of the chained comps, in chain order.
    pub accels: Vec<AcceleratorKind>,
}

impl PhaseTraffic {
    /// Chained comps in the pass (CU occupancy).
    pub fn chain_len(&self) -> usize {
        self.accels.len()
    }
}

/// The elaborated program: request trace, footprint, per-phase traffic.
#[derive(Debug, Clone, Default)]
pub struct Elaboration {
    /// Program-order request stream over declared extents.
    pub trace: TraceBuffer,
    /// Peak live-buffer footprint in bytes (exact over declared
    /// extents).
    pub peak_footprint: u64,
    /// One entry per flattened pass execution.
    pub phases: Vec<PhaseTraffic>,
    /// Buffers referenced by the program but lacking a `BUF` extent —
    /// their traffic is absent from `trace` and `bytes`.
    pub missing_extents: Vec<String>,
    /// Total statically-known pass executions (loops unrolled).
    pub invocations: u64,
}

/// Elaborates `session` into its canonical trace. Pure and total: no
/// configuration is involved, only the program text and its extents.
pub fn elaborate(session: &Session) -> Elaboration {
    let spans = crate::dataflow::ProgramSpans::new(Some(&session.lines));
    let mut out = Elaboration::default();
    let mut missing: BTreeMap<&str, ()> = BTreeMap::new();

    // Event stream for liveness: each event is a set of buffers touched
    // simultaneously (a pass touches its input and output at once).
    let mut touches: Vec<Vec<&str>> = Vec::new();
    for (_, op) in &session.host_ops {
        match op {
            HostOp::Write(b) | HostOp::Read(b) => touches.push(vec![b]),
            HostOp::Flush => {}
        }
    }

    let mut flat = 0usize;
    for item in &session.program.items {
        let (count, body) = match item {
            TdlItem::Pass(p) => (1u64, std::slice::from_ref(p)),
            TdlItem::Loop(l) => (l.count, l.body.as_slice()),
        };
        for iter in 0..count {
            for (pi, pass) in body.iter().enumerate() {
                let line = spans.pass_header(flat + pi);
                touches.push(vec![&pass.input, &pass.output]);
                let mut bytes = 0u64;
                for (name, write) in [(&pass.input, false), (&pass.output, true)] {
                    match session.extents.get(name.as_str()) {
                        Some(ext) => {
                            bytes += ext.len().get();
                            let req = if write {
                                Request::write(ext.start().get(), ext.len().get())
                            } else {
                                Request::read(ext.start().get(), ext.len().get())
                            };
                            out.trace.push(req);
                        }
                        None => {
                            missing.entry(name).or_insert(());
                        }
                    }
                }
                out.phases.push(PhaseTraffic {
                    line,
                    input: pass.input.clone(),
                    output: pass.output.clone(),
                    bytes,
                    accels: pass.comps.iter().map(|c| c.accel).collect(),
                });
                out.invocations += 1;
            }
            // Liveness does not change across identical iterations;
            // traffic does, so only the trace keeps unrolling.
            if iter == 0 && count > 1 {
                continue;
            }
        }
        flat += body.len();
    }

    out.missing_extents = missing.keys().map(|s| (*s).to_string()).collect();
    out.peak_footprint = peak_live_footprint(session, &touches);
    out
}

/// First-touch-to-last-touch liveness over the event stream: the peak
/// is the largest sum of declared extents simultaneously live.
fn peak_live_footprint(session: &Session, touches: &[Vec<&str>]) -> u64 {
    let mut first: BTreeMap<&str, usize> = BTreeMap::new();
    let mut last: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, event) in touches.iter().enumerate() {
        for name in event {
            first.entry(name).or_insert(i);
            last.insert(name, i);
        }
    }
    let mut peak = 0u64;
    let mut live = 0u64;
    for (i, event) in touches.iter().enumerate() {
        // Dedupe within the event so `in=a out=a` counts `a` once.
        let names: std::collections::BTreeSet<&str> = event.iter().copied().collect();
        for name in &names {
            if first.get(name) == Some(&i) {
                if let Some(ext) = session.extents.get(*name) {
                    live += ext.len().get();
                }
            }
        }
        peak = peak.max(live);
        for name in &names {
            if last.get(name) == Some(&i) {
                if let Some(ext) = session.extents.get(*name) {
                    live -= ext.len().get();
                }
            }
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::parse_session;

    #[test]
    fn straight_line_program_elaborates_in_order() {
        let src = "BUF a 0x1000 256\nBUF b 0x2000 256\nPASS in=a out=b {\n  COMP FFT \
                   params=\"f\"\n}\n";
        let e = elaborate(&parse_session(src).unwrap());
        assert_eq!(e.trace.len(), 2);
        assert_eq!(e.trace.addrs()[0], 0x1000);
        assert_eq!(e.trace.addrs()[1], 0x2000);
        assert_eq!(e.invocations, 1);
        assert_eq!(e.phases[0].bytes, 512);
        assert!(e.missing_extents.is_empty());
        // Both buffers are live across the single pass.
        assert_eq!(e.peak_footprint, 512);
    }

    #[test]
    fn loops_unroll_fully_for_traffic() {
        let src = "BUF x 0x1000 128\nBUF y 0x2000 128\nLOOP 5 {\n  PASS in=x out=y {\n    COMP \
                   AXPY params=\"a\"\n  }\n}\n";
        let e = elaborate(&parse_session(src).unwrap());
        assert_eq!(e.invocations, 5);
        assert_eq!(e.trace.len(), 10, "5 iterations x (read + write)");
        let total: u64 = e.phases.iter().map(|p| p.bytes).sum();
        assert_eq!(total, 5 * 256);
        // Footprint is iteration-independent.
        assert_eq!(e.peak_footprint, 256);
    }

    #[test]
    fn missing_extents_are_reported_not_guessed() {
        let src = "BUF a 0x1000 64\nPASS in=a out=b {\n  COMP DOT params=\"d\"\n}\n";
        let e = elaborate(&parse_session(src).unwrap());
        assert_eq!(e.missing_extents, vec!["b".to_string()]);
        assert_eq!(e.trace.len(), 1, "only the declared side is priced");
    }

    #[test]
    fn dead_buffers_release_footprint() {
        // a feeds b, then c feeds d: a/b die before c/d go live.
        let src = "BUF a 0 1024\nBUF b 0x1000 1024\nBUF c 0x2000 4096\nBUF d 0x4000 \
                   4096\nPASS in=a out=b {\n  COMP FFT params=\"f\"\n}\nPASS in=c out=d {\n  COMP \
                   FFT params=\"f\"\n}\n";
        let e = elaborate(&parse_session(src).unwrap());
        assert_eq!(e.peak_footprint, 8192, "disjoint lifetimes do not stack");
    }
}
