//! Symbolic cost & capacity certification: the MEA2xx pass family.
//!
//! This module derives *static resource bounds* for a session program
//! and turns provable violations into diagnostics:
//!
//! | code   | meaning |
//! |--------|---------|
//! | MEA200 | peak live footprint exceeds stack capacity |
//! | MEA201 | demanded throughput exceeds layer roofline |
//! | MEA202 | all traffic maps to a single vault |
//! | MEA203 | modeled energy exceeds declared budget |
//!
//! The analysis has three stages, one per submodule:
//!
//! 1. [`elaborate`] — flatten the program (loops fully unrolled, trip
//!    counts are static) into a canonical memory-request trace plus a
//!    liveness-exact peak-footprint figure;
//! 2. [`summary`] — price the trace through the memory layer the
//!    session targets (`MEM` directive) using the certified interval
//!    kernel in [`mealib_memsim::bounds`], and attach modeled
//!    accelerator energy from the Table-5 synthesis constants;
//! 3. [`passes`] — compare the certified lower bounds against the
//!    declared budgets (`BUDGET` directives) and the modeled capacity.
//!
//! Soundness is not asserted, it is *tested*: the `bounds_soundness`
//! integration tests run every corpus program and every workloads
//! pipeline through this analyzer and through the cycle engine and
//! require `lower <= measured <= upper` on every certified counter.
//! Because each diagnostic needs a provable violation, a program with
//! undeclared extents or absent budgets simply certifies less — it
//! never produces a speculative MEA2xx.

pub mod elaborate;
pub mod passes;
pub mod summary;

pub use elaborate::{elaborate, Elaboration, PhaseTraffic};
pub use summary::{summarize, ResourceSummary};

use mealib_host::Platform;
use mealib_memsim::MemoryConfig;
use mealib_types::{Bytes, Report};

use crate::dataflow::Session;

/// The environment the bounds passes judge a program against: which
/// stack it runs on, which host platform fronts it, and how much of the
/// stack the runtime models as allocatable.
#[derive(Debug, Clone)]
pub struct BoundsEnv {
    /// The 3D stack configuration (`MEM INTERLEAVED`/`XOR` resolve
    /// against this).
    pub stack: MemoryConfig,
    /// The host platform (`MEM HOST` resolves to its DIMM system and
    /// roofline; `MEM ASYM` models carving its DIMMs).
    pub host: Platform,
    /// Modeled allocatable stack capacity, overridable per program via
    /// `BUDGET CAPACITY`. Matches the runtime driver's default region.
    pub capacity: Bytes,
}

impl Default for BoundsEnv {
    fn default() -> Self {
        Self {
            stack: MemoryConfig::hmc_stack(),
            host: Platform::haswell(),
            // The runtime driver's default modeled region: 2 GiB.
            capacity: Bytes::from_gib(2),
        }
    }
}

/// The concrete memory configuration `session`'s `MEM` directive
/// resolves to under `env`. The differential soundness harness replays
/// the elaborated trace through the cycle engine against exactly this
/// configuration.
pub fn resolved_config(session: &Session, env: &BoundsEnv) -> MemoryConfig {
    let layer = session
        .mem_layer
        .map(|(_, l)| l)
        .unwrap_or(crate::dataflow::MemLayer::Interleaved);
    summary::resolve_layer(layer, &env.stack, &env.host)
}

/// Builds the resource summary for `session` under `env`. Convenience
/// wrapper over [`summary::summarize`] with the environment unpacked.
///
/// # Errors
///
/// Propagates a [`mealib_types::ConfigError`] if the resolved memory
/// configuration fails validation; unreachable with [`BoundsEnv`]'s
/// preset configurations.
pub fn summarize_session(
    session: &Session,
    env: &BoundsEnv,
) -> Result<ResourceSummary, mealib_types::ConfigError> {
    summary::summarize(session, &env.stack, &env.host, env.capacity)
}

/// Runs the MEA2xx bounds passes over `session` and returns the report.
///
/// A configuration that fails validation yields an empty report: the
/// MEA02x memconfig passes own that failure mode, and every MEA2xx
/// diagnostic requires a provable violation against a *valid* model.
pub fn verify_session_bounds(session: &Session, env: &BoundsEnv) -> Report {
    let mut report = Report::new();
    let Ok(summary) = summarize_session(session, env) else {
        return report;
    };
    passes::check_capacity(&summary, &mut report);
    passes::check_bandwidth(&summary, &mut report);
    passes::check_vault_skew(&summary, &mut report);
    passes::check_energy_budget(&summary, &mut report);
    report
}

/// Parses `src` as a session and runs the bounds passes; parse errors
/// yield an empty report (the syntax passes own those).
pub fn verify_source_bounds(src: &str) -> Report {
    match crate::dataflow::parse_session(src) {
        Ok(session) => verify_session_bounds(&session, &BoundsEnv::default()),
        Err(_) => Report::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::parse_session;
    use mealib_types::ErrorCode;

    fn lint(src: &str) -> Report {
        verify_session_bounds(&parse_session(src).unwrap(), &BoundsEnv::default())
    }

    #[test]
    fn clean_program_certifies_clean() {
        let src = "BUF a 0x1000 0x100000\nBUF b 0x200000 0x100000\nPASS in=a out=b {\n  COMP FFT \
                   params=\"n=4096\"\n}\n";
        let report = lint(src);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn capacity_overflow_is_mea200() {
        // Two simultaneously-live buffers against a shrunken modeled
        // stack (exercises the env default-capacity plumbing without a
        // multi-GiB trace walk).
        let env = BoundsEnv {
            capacity: Bytes::new(0x3000),
            ..BoundsEnv::default()
        };
        let src = "BUF a 0x1000 0x2000\nBUF b 0x8000 0x2000\nPASS in=a out=b {\n  COMP AXPY \
                   params=\"a\"\n}\n";
        let report = verify_session_bounds(&parse_session(src).unwrap(), &env);
        assert!(report.has_code(ErrorCode::BoundsCapacityOverflow));
    }

    #[test]
    fn capacity_budget_directive_overrides_default() {
        let src = "BUDGET CAPACITY 0x100\nBUF a 0x1000 0x200\nBUF b 0x2000 0x200\nPASS in=a \
                   out=b {\n  COMP AXPY params=\"a\"\n}\n";
        assert!(lint(src).has_code(ErrorCode::BoundsCapacityOverflow));
    }

    #[test]
    fn bandwidth_infeasibility_needs_a_time_budget() {
        // 16 MiB x 2 through the stack in a nanosecond: infeasible.
        let feasible = "BUF a 0x1000 0x1000000\nBUF b 0x2000000 0x1000000\nPASS in=a out=b {\n  \
                        COMP FFT params=\"f\"\n}\n";
        assert!(lint(feasible).is_clean());
        let infeasible = format!("BUDGET TIME 1e-9\n{feasible}");
        assert!(lint(&infeasible).has_code(ErrorCode::BoundsBandwidthInfeasible));
    }

    #[test]
    fn single_vault_mapping_is_mea202() {
        // The asymmetric high region is one contiguous channel: placing
        // both buffers above the split serializes every burst.
        let src = "MEM ASYM 0x1000\nBUF a 0x100000 0x10000\nBUF b 0x200000 0x10000\nPASS in=a \
                   out=b {\n  COMP AXPY params=\"a\"\n}\n";
        let report = lint(src);
        assert!(report.has_code(ErrorCode::BoundsVaultSkew));
    }

    #[test]
    fn interleaved_traffic_does_not_skew() {
        let src = "BUF a 0x1000 0x100000\nBUF b 0x200000 0x100000\nPASS in=a out=b {\n  COMP FFT \
                   params=\"f\"\n}\n";
        assert!(!lint(src).has_code(ErrorCode::BoundsVaultSkew));
    }

    #[test]
    fn energy_budget_violation_is_mea203() {
        let src = "BUDGET ENERGY 1e-6\nBUF a 0x1000 0x400000\nBUF b 0x800000 0x400000\nLOOP 8 \
                   {\n  PASS in=a out=b {\n    COMP FFT params=\"f\"\n  }\n}\n";
        assert!(lint(src).has_code(ErrorCode::BoundsEnergyBudget));
    }

    #[test]
    fn generous_budgets_stay_clean() {
        let src = "BUDGET TIME 100\nBUDGET ENERGY 1000\nBUF a 0x1000 0x100000\nBUF b 0x200000 \
                   0x100000\nPASS in=a out=b {\n  COMP FFT params=\"f\"\n}\n";
        assert!(lint(src).is_clean());
    }
}
