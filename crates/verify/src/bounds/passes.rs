//! The MEA2xx diagnostic passes over a [`ResourceSummary`].
//!
//! Every diagnostic here is a *proof of violation*: it fires only when
//! the certified lower bound already exceeds the declared limit (or,
//! for vault skew, when the mapping provably concentrates all traffic).
//! Absent budgets and undeclared extents therefore disable the
//! corresponding checks — the analyzer reports what it can prove and
//! stays silent about what it cannot.

use mealib_types::{Diagnostic, ErrorCode, Report};

use super::summary::ResourceSummary;

/// MEA200: the peak live-buffer footprint exceeds the modeled stack
/// capacity. The footprint is exact over declared extents, so crossing
/// the capacity is a certain overflow, not a heuristic.
pub(super) fn check_capacity(summary: &ResourceSummary, report: &mut Report) {
    let peak = summary.peak_footprint.get();
    let cap = summary.capacity.get();
    if peak > cap {
        report.push(Diagnostic::error(
            ErrorCode::BoundsCapacityOverflow,
            format!(
                "peak live-buffer footprint {:.1} MiB exceeds modeled stack capacity {:.1} MiB",
                summary.peak_footprint.as_mib(),
                summary.capacity.as_mib(),
            ),
        ));
    }
}

/// MEA201: the program demands more throughput than the roofline of
/// the layer it runs on. Fires only under a `BUDGET TIME` directive:
/// the certified lower bound on bytes moved, pushed through the layer's
/// peak bandwidth, already needs longer than the declared budget — so
/// no schedule on this layer can meet it.
pub(super) fn check_bandwidth(summary: &ResourceSummary, report: &mut Report) {
    let Some(time_s) = summary.budgets.time_s else {
        return;
    };
    let bytes_lo = summary.dram.bytes_read.lo + summary.dram.bytes_written.lo;
    let bw = summary.peak_bandwidth.get();
    // Two independent lower bounds on wall time: pure bus occupancy
    // from the certified cycle bound, and aggregate bytes over the
    // roofline ceiling.
    let t_min = summary.dram.elapsed.lo.max(bytes_lo / bw);
    if t_min > time_s {
        let demanded_gb = bytes_lo / time_s * 1e-9;
        report.push(Diagnostic::error(
            ErrorCode::BoundsBandwidthInfeasible,
            format!(
                "program needs at least {t_min:.3e} s on {} but the time budget is {time_s:.3e} \
                 s (demanded {demanded_gb:.1} GB/s vs {:.1} GB/s roofline)",
                summary.config_name,
                summary.peak_bandwidth.as_gb_per_sec(),
            ),
        ));
    }
}

/// MEA202: degenerate mapping — the layer exposes multiple units but
/// every burst of the program decodes to a single one, so the aggregate
/// bandwidth collapses to one unit's share. Requires at least one full
/// round of bursts so a trivially small program does not flag.
pub(super) fn check_vault_skew(summary: &ResourceSummary, report: &mut Report) {
    let units = summary.dram.unit_bursts.len();
    let total = summary.dram.total_bursts();
    if units > 1 && total >= units as u64 && summary.dram.units_touched() == 1 {
        let unit = summary
            .dram
            .unit_bursts
            .iter()
            .position(|&b| b > 0)
            .unwrap_or(0);
        report.push(Diagnostic::error(
            ErrorCode::BoundsVaultSkew,
            format!(
                "all {total} bursts decode to unit {unit} of {units} on {}: the mapping \
                 serializes every access through one vault/channel",
                summary.config_name,
            ),
        ));
    }
}

/// MEA203: modeled energy exceeds the declared budget. Uses the *lower*
/// endpoints — certified DRAM floor plus the accelerator datapath floor
/// — so the violation is provable within the model.
pub(super) fn check_energy_budget(summary: &ResourceSummary, report: &mut Report) {
    let Some(budget_j) = summary.budgets.energy_j else {
        return;
    };
    let floor_j = summary.dram.energy.lo + summary.accel_energy.lo;
    if floor_j > budget_j {
        report.push(Diagnostic::error(
            ErrorCode::BoundsEnergyBudget,
            format!(
                "modeled energy floor {floor_j:.3e} J (DRAM {:.3e} J + accelerator {:.3e} J) \
                 exceeds the declared budget {budget_j:.3e} J",
                summary.dram.energy.lo, summary.accel_energy.lo,
            ),
        ));
    }
}
