//! Per-program resource summaries: the certified DRAM intervals plus
//! the modeled accelerator-side costs, resolved against the memory
//! layer the session actually targets.

use mealib_accel::power;
use mealib_host::Platform;
use mealib_memsim::address::{self, AddressMapping};
use mealib_memsim::bounds::{trace_bounds, TraceBounds};
use mealib_memsim::MemoryConfig;
use mealib_types::{Bytes, BytesPerSec, ConfigError, Interval, PhysAddr};

use super::elaborate::{elaborate, PhaseTraffic};
use crate::dataflow::{Budgets, MemLayer, Session};

/// Everything the analyzer can say about one program against one
/// environment, before any policy (budgets, capacity) is applied.
///
/// The `dram` field is *certified*: the differential harness proves the
/// cycle engine's measurement lands inside every one of its intervals.
/// `accel_energy` is *modeled* from the Table-5 synthesis constants —
/// sound with respect to the analytical accelerator model, but not
/// replayed by the cycle engine.
#[derive(Debug, Clone)]
pub struct ResourceSummary {
    /// The memory layer the program runs on (default: interleaved
    /// stack).
    pub layer: MemLayer,
    /// Name of the resolved [`MemoryConfig`].
    pub config_name: String,
    /// Certified DRAM-side bounds over the elaborated trace.
    pub dram: TraceBounds,
    /// Peak live-buffer footprint over declared extents.
    pub peak_footprint: Bytes,
    /// Capacity the footprint is judged against (`BUDGET CAPACITY`
    /// override or the environment's modeled stack size).
    pub capacity: Bytes,
    /// Peak bandwidth of the resolved layer (the roofline ceiling).
    pub peak_bandwidth: BytesPerSec,
    /// Modeled accelerator energy in joules: datapath floor to
    /// datapath + leakage over the elapsed upper bound.
    pub accel_energy: Interval,
    /// Declared budgets carried over from the session.
    pub budgets: Budgets,
    /// Flattened pass executions (loops unrolled).
    pub invocations: u64,
    /// Deepest comp chain in any pass (CU occupancy).
    pub max_chain_len: usize,
    /// Per-phase traffic, in program order.
    pub phases: Vec<PhaseTraffic>,
    /// Buffers whose extent is undeclared — their traffic is absent
    /// from every interval, so the certificate is partial.
    pub missing_extents: Vec<String>,
}

impl ResourceSummary {
    /// Modeled whole-program energy: certified DRAM interval plus the
    /// modeled accelerator interval.
    pub fn total_energy(&self) -> Interval {
        self.dram.energy + self.accel_energy
    }

    /// `true` when every buffer the program touches has a declared
    /// extent, i.e. the intervals cover all of the program's traffic.
    pub fn is_complete(&self) -> bool {
        self.missing_extents.is_empty()
    }
}

/// Resolves the session's `MEM` directive to a concrete memory
/// configuration and the environment pieces the passes need.
pub(crate) fn resolve_layer(
    layer: MemLayer,
    stack: &MemoryConfig,
    host: &Platform,
) -> MemoryConfig {
    match layer {
        MemLayer::Interleaved => stack.clone(),
        MemLayer::Xor => {
            let mut cfg = stack.clone();
            cfg.mapping = match cfg.mapping {
                AddressMapping::Interleaved {
                    units,
                    banks_per_unit,
                    row_bytes,
                    line_bytes,
                } => AddressMapping::XorInterleaved {
                    units,
                    banks_per_unit,
                    row_bytes,
                    line_bytes,
                },
                other => other,
            };
            cfg.name = format!("{}-xor", cfg.name);
            cfg
        }
        MemLayer::Asym(split) => {
            let mut cfg = MemoryConfig::ddr_dual_channel();
            cfg.mapping = address::asymmetric_dimms(PhysAddr::new(split));
            cfg.name = "ddr-asymmetric".into();
            cfg
        }
        MemLayer::Host => host.mem.clone(),
    }
}

/// Builds the resource summary for `session`: elaborates the canonical
/// trace, prices it through the resolved layer's mapping, and attaches
/// the modeled accelerator energy.
///
/// # Errors
///
/// Returns the underlying [`ConfigError`] if the resolved memory
/// configuration fails validation (not reachable with the built-in
/// environments, which only produce preset configurations).
pub fn summarize(
    session: &Session,
    stack: &MemoryConfig,
    host: &Platform,
    default_capacity: Bytes,
) -> Result<ResourceSummary, ConfigError> {
    let layer = session
        .mem_layer
        .map(|(_, l)| l)
        .unwrap_or(MemLayer::Interleaved);
    let cfg = resolve_layer(layer, stack, host);
    let e = elaborate(session);
    let dram = trace_bounds(&cfg, &e.trace)?;

    // Modeled accelerator energy: every comp in a chain streams the
    // phase's bytes through its datapath (floor); leakage of the
    // accelerator kinds actually deployed accrues for at most the
    // elapsed upper bound.
    let mut datapath_j = 0.0;
    let mut leakage_w = 0.0;
    let mut seen = std::collections::BTreeSet::new();
    let mut max_chain_len = 0usize;
    for phase in &e.phases {
        max_chain_len = max_chain_len.max(phase.chain_len());
        for &accel in &phase.accels {
            let prof = power::profile(accel);
            datapath_j += prof.e_byte_datapath.get() * phase.bytes as f64;
            if seen.insert(accel) {
                leakage_w += prof.p_leakage.get();
            }
        }
    }
    let accel_energy = Interval::new(datapath_j, datapath_j + leakage_w * dram.elapsed.hi);

    let capacity = session
        .budgets
        .capacity_bytes
        .map(Bytes::new)
        .unwrap_or(default_capacity);

    Ok(ResourceSummary {
        layer,
        config_name: cfg.name.clone(),
        peak_bandwidth: cfg.peak_bandwidth(),
        dram,
        peak_footprint: Bytes::new(e.peak_footprint),
        capacity,
        accel_energy,
        budgets: session.budgets,
        invocations: e.invocations,
        max_chain_len,
        phases: e.phases,
        missing_extents: e.missing_extents,
    })
}
