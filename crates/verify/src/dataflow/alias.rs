//! Alias and overlap analysis over buffer names and physical extents.
//!
//! MEALib buffers are distinct allocations carved out of the shared
//! physical space (§3.3), so two *different* names are disjoint unless
//! their declared extents say otherwise.  The oracle therefore answers
//! `may_alias` from name identity first and extent overlap second, and
//! stays conservative only when it has real evidence of overlap.
//!
//! The same oracle drives Pass-1 chain-fusion legality in
//! `compiler::analysis`: a fusion that would let a later stage clobber a
//! buffer the fused datapath still reads is rejected here instead of
//! being discovered as an unsound `PASS` after the fact.

use std::collections::BTreeMap;

use mealib_tdl::TdlProgram;
use mealib_types::{AddrRange, Diagnostic, ErrorCode, Report};

use super::ProgramSpans;

/// Answers may-alias queries over buffer names.
#[derive(Debug, Clone, Default)]
pub struct AliasOracle {
    extents: BTreeMap<String, AddrRange>,
}

impl AliasOracle {
    /// An oracle with no extent information: aliasing is name identity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An oracle that also consults declared physical extents.
    pub fn with_extents(extents: BTreeMap<String, AddrRange>) -> Self {
        Self { extents }
    }

    /// The declared extent of `name`, if any.
    pub fn extent(&self, name: &str) -> Option<&AddrRange> {
        self.extents.get(name)
    }

    /// `true` if accesses to `a` and `b` can touch the same bytes.
    ///
    /// Identical names always alias.  Distinct names alias only when
    /// both have declared extents and those extents overlap — MEALib
    /// allocations are disjoint by construction, so the absence of
    /// extent evidence means disjoint, not unknown.
    pub fn may_alias(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        match (self.extents.get(a), self.extents.get(b)) {
            (Some(ra), Some(rb)) => ra.overlaps(rb),
            _ => false,
        }
    }
}

/// One library call considered for chain fusion: its streamed input and
/// output plus every buffer argument it touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionStage {
    /// Buffer streamed into the stage.
    pub input: String,
    /// Buffer the stage stores to.
    pub output: String,
    /// Every buffer argument of the call, including input and output.
    pub touched: Vec<String>,
}

impl FusionStage {
    /// Creates a stage description.
    pub fn new(input: impl Into<String>, output: impl Into<String>, touched: Vec<String>) -> Self {
        Self {
            input: input.into(),
            output: output.into(),
            touched,
        }
    }

    fn all_buffers(&self) -> impl Iterator<Item = &str> {
        [self.input.as_str(), self.output.as_str()]
            .into_iter()
            .chain(self.touched.iter().map(String::as_str))
    }
}

/// Decides whether appending `next` to the already-fused `chain` keeps
/// the fused `PASS` sound.  The caller has already established the
/// streaming link (`chain.last().output == next.input`); this checks the
/// memory side-effects:
///
/// * `next`'s store must not clobber any buffer an earlier stage reads,
///   writes, or touches — inside a fused datapath intermediates never
///   materialize, so such a store would change what the original call
///   sequence left in memory (the `saxpy(x,y); sgemv(A,y,x)` trap).
/// * `next`'s auxiliary reads must not alias an earlier stage's output:
///   the original sequence would have read the freshly stored value, but
///   the fused chain keeps it in stream buffers and the read would
///   observe stale memory.
///
/// Rejection is conservative — an illegal-looking fusion simply becomes
/// two descriptors, which is always correct.
pub fn fusion_legal(chain: &[FusionStage], next: &FusionStage, oracle: &AliasOracle) -> bool {
    if chain.is_empty() {
        return true;
    }
    for stage in chain {
        for buf in stage.all_buffers() {
            if oracle.may_alias(&next.output, buf) {
                return false;
            }
        }
    }
    for buf in next.touched.iter().filter(|b| **b != next.input) {
        for stage in chain {
            if oracle.may_alias(buf, &stage.output) {
                return false;
            }
        }
    }
    true
}

/// MEA102 overlap pass: flags every pair of distinctly named buffers
/// whose declared extents overlap when at least one side is written.
/// Reads of overlapping extents are aliases but harmless; a write makes
/// the outcome depend on chain timing the CU does not define.
pub fn check_overlaps(
    program: &TdlProgram,
    spans: &ProgramSpans<'_>,
    oracle: &AliasOracle,
    report: &mut Report,
) {
    // (name, written) accesses in program order with the pass line that
    // first produced them; one entry per (name, written) flavour.
    let mut accesses: Vec<(String, bool, Option<usize>)> = Vec::new();
    let mut record = |name: &str, written: bool, line: Option<usize>| {
        if !accesses.iter().any(|(n, w, _)| n == name && *w == written) {
            accesses.push((name.to_string(), written, line));
        }
    };
    for (idx, pass) in program.passes().enumerate() {
        let line = spans.pass_header(idx);
        record(&pass.input, false, line);
        record(&pass.output, true, line);
    }

    let mut reported: Vec<(String, String)> = Vec::new();
    for (i, (a, a_written, a_line)) in accesses.iter().enumerate() {
        for (b, b_written, _) in accesses.iter().skip(i + 1) {
            if a == b || (!a_written && !b_written) || !oracle.may_alias(a, b) {
                continue;
            }
            let key = if a < b {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            if reported.contains(&key) {
                continue;
            }
            reported.push(key);
            let (ra, rb) = (oracle.extent(a), oracle.extent(b));
            let mut d = Diagnostic::error(
                ErrorCode::DfOverlap,
                format!(
                    "buffers `{a}` and `{b}` overlap ({} and {}) but at least one is written; \
                     the chained result depends on store timing the CU does not define",
                    describe(ra),
                    describe(rb),
                ),
            );
            if let Some(l) = a_line {
                d = d.at_line(*l);
            }
            report.push(d);
        }
    }
}

fn describe(extent: Option<&AddrRange>) -> String {
    match extent {
        Some(r) => format!("{:#x}+{:#x}", r.start().get(), r.len().get()),
        None => "extent undeclared".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_types::{Bytes, PhysAddr};

    fn extent(base: u64, len: u64) -> AddrRange {
        AddrRange::new(PhysAddr::new(base), Bytes::new(len))
    }

    #[test]
    fn name_identity_always_aliases() {
        let o = AliasOracle::new();
        assert!(o.may_alias("x", "x"));
        assert!(!o.may_alias("x", "y"));
    }

    #[test]
    fn extent_overlap_detected() {
        let mut ext = BTreeMap::new();
        ext.insert("x".to_string(), extent(0x1000, 0x100));
        ext.insert("y".to_string(), extent(0x1080, 0x100));
        ext.insert("z".to_string(), extent(0x2000, 0x100));
        let o = AliasOracle::with_extents(ext);
        assert!(o.may_alias("x", "y"));
        assert!(!o.may_alias("x", "z"));
    }

    #[test]
    fn saxpy_sgemv_reuse_is_illegal() {
        // saxpy(x, y); sgemv(A, y, x): the second stage stores to x,
        // which the first stage read — fusing would clobber the input.
        let o = AliasOracle::new();
        let chain = vec![FusionStage::new("x", "y", vec!["x".into(), "y".into()])];
        let next = FusionStage::new("y", "x", vec!["A".into(), "y".into(), "x".into()]);
        assert!(!fusion_legal(&chain, &next, &o));
    }

    #[test]
    fn straight_pipeline_is_legal() {
        let o = AliasOracle::new();
        let chain = vec![FusionStage::new(
            "datacube",
            "padded",
            vec!["datacube".into(), "padded".into()],
        )];
        let next = FusionStage::new("padded", "doppler", vec!["padded".into(), "doppler".into()]);
        assert!(fusion_legal(&chain, &next, &o));
    }

    #[test]
    fn aux_read_of_intermediate_is_illegal() {
        // Third call reads the first stage's output as an auxiliary
        // operand: in a fused chain that value never reached memory.
        let o = AliasOracle::new();
        let chain = vec![
            FusionStage::new("a", "b", vec!["a".into(), "b".into()]),
            FusionStage::new("b", "c", vec!["b".into(), "c".into()]),
        ];
        let next = FusionStage::new("c", "d", vec!["b".into(), "c".into(), "d".into()]);
        assert!(!fusion_legal(&chain, &next, &o));
    }

    #[test]
    fn empty_chain_is_trivially_legal() {
        let o = AliasOracle::new();
        let next = FusionStage::new("x", "x", vec!["x".into()]);
        assert!(fusion_legal(&[], &next, &o));
    }
}
