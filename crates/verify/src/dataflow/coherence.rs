//! The host↔accelerator coherence state machine.
//!
//! §3.3's protocol is simple and unforgiving: the accelerators sit on
//! the memory side of the cache hierarchy, so the host must `wbinvd`
//! (write back + invalidate) before a hand-off in either direction.  We
//! model it with per-buffer *epochs* against a single global flush
//! epoch — a monotone counter bumped on every write and flush:
//!
//! ```text
//!             host_write(b)            flush (wbinvd)
//!   HostDirty ◄────────────  Coherent  ─────────────► Coherent
//!       │                       ▲  │
//!       │ dev_read(b)           │  │ dev_write(b)
//!       ▼                flush  │  ▼
//!    MEA103 (stale DRAM read)   └── DevFresh ── host_read(b) ──► MEA103
//!                                               (stale host cache)
//! ```
//!
//! * a device read of a buffer the host wrote after the last flush
//!   observes DRAM while the fresh bytes sit in dirty host lines
//!   (`MEA103`);
//! * a host read of a buffer the device wrote after the last flush can
//!   hit pre-write lines still cached on the host (`MEA103`);
//! * a device read of a buffer nobody ever wrote has no reaching
//!   definition at all (`MEA100`);
//! * a device-written buffer nobody ever consumes is dead weight that
//!   wasted bandwidth and descriptor space (`MEA101`, warning).
//!
//! The same machine runs in two places: the static analysis feeds it an
//! event stream *elaborated* from the TDL AST, and the runtime
//! [`Sanitizer`](../../../mealib_runtime/sanitizer) feeds it the
//! accesses that actually happen.  Sharing the transition rules is what
//! lets the differential tests demand verdict-for-verdict agreement.

use std::collections::{BTreeMap, BTreeSet};

use mealib_types::{Diagnostic, ErrorCode, Report};

#[derive(Debug, Clone, Default)]
struct BufState {
    /// Epoch of the most recent host write, if any.
    host_write: Option<u64>,
    /// Epoch of the most recent device (accelerator) write, if any.
    dev_write: Option<u64>,
    /// Line of the pass that last defined the buffer, for MEA101 spans.
    def_line: Option<usize>,
    /// `true` once something read the buffer after its last dev write.
    consumed: bool,
}

/// Per-buffer epoch + dirty-bit shadow state, raising MEA1xx
/// diagnostics as accesses stream through it.
#[derive(Debug, Clone, Default)]
pub struct CoherenceMachine {
    epoch: u64,
    flush_epoch: u64,
    bufs: BTreeMap<String, BufState>,
    reported: BTreeSet<(ErrorCode, String)>,
    report: Report,
}

impl CoherenceMachine {
    /// A machine with no accesses observed yet.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    fn state(&mut self, buf: &str) -> &mut BufState {
        self.bufs.entry(buf.to_string()).or_default()
    }

    /// Pushes a diagnostic once per (code, buffer) pair — repeated loop
    /// iterations re-observe the same hazard, not a new one.
    fn diag(&mut self, d: Diagnostic, buf: &str) {
        if self.reported.insert((d.code, buf.to_string())) {
            self.report.push(d);
        }
    }

    fn spanned(d: Diagnostic, line: Option<usize>) -> Diagnostic {
        match line {
            Some(l) => d.at_line(l),
            None => d,
        }
    }

    /// The host CPU wrote `buf`: its cache lines are now dirty.
    pub fn host_write(&mut self, buf: &str, _line: Option<usize>) {
        let epoch = self.bump();
        let st = self.state(buf);
        st.host_write = Some(epoch);
    }

    /// The host CPU read `buf`.  Fires `MEA103` if the device wrote it
    /// after the last flush — the host may hit stale cached lines.
    pub fn host_read(&mut self, buf: &str, line: Option<usize>) {
        let flush = self.flush_epoch;
        let st = self.state(buf);
        st.consumed = true;
        let stale = st.dev_write.is_some_and(|d| d > flush);
        if stale {
            let d = Diagnostic::error(
                ErrorCode::DfStaleRead,
                format!(
                    "host reads `{buf}` after the accelerator wrote it, with no intervening \
                     wbinvd: the host cache may still hold the pre-accelerator bytes"
                ),
            );
            let d = Self::spanned(d, line);
            self.diag(d, buf);
        }
    }

    /// `wbinvd`: every dirty line is written back and the cache is
    /// invalidated, making host and DRAM views coherent again.
    pub fn flush(&mut self) {
        self.flush_epoch = self.bump();
    }

    /// An accelerator pass stored to `buf` (device writes land in DRAM
    /// directly — the accelerators live behind the cache hierarchy).
    pub fn dev_write(&mut self, buf: &str, line: Option<usize>) {
        let epoch = self.bump();
        let st = self.state(buf);
        st.dev_write = Some(epoch);
        st.def_line = line;
        st.consumed = false;
    }

    /// An accelerator pass loaded from `buf`.  Fires `MEA100` if the
    /// buffer has no reaching definition at all, and `MEA103` if the
    /// freshest definition is an unflushed host write (the accelerator
    /// reads DRAM and observes the stale copy).  `loop_iteration` is
    /// used only for wording: a hazard first observed on iteration ≥ 1
    /// is loop-carried.
    pub fn dev_read(&mut self, buf: &str, line: Option<usize>, loop_iteration: Option<u64>) {
        let flush = self.flush_epoch;
        let st = self.state(buf);
        st.consumed = true;
        let (host_write, dev_write) = (st.host_write, st.dev_write);
        if host_write.is_none() && dev_write.is_none() {
            let d = Diagnostic::error(
                ErrorCode::DfUninitRead,
                format!("accelerator reads `{buf}` but no host write or earlier pass defines it"),
            );
            let d = Self::spanned(d, line);
            self.diag(d, buf);
            return;
        }
        let host_is_freshest =
            host_write.is_some_and(|h| h > flush && dev_write.is_none_or(|d| d < h));
        if host_is_freshest {
            let carried = match loop_iteration {
                Some(i) if i > 0 => format!(" (loop-carried: first observed on iteration {i})"),
                Some(_) => " (observed on the first loop iteration)".to_string(),
                None => String::new(),
            };
            let d = Diagnostic::error(
                ErrorCode::DfStaleRead,
                format!(
                    "accelerator reads `{buf}` from DRAM but the host's write was never \
                     flushed (wbinvd missing): the fresh bytes sit in dirty host lines{carried}"
                ),
            );
            let d = Self::spanned(d, line);
            self.diag(d, buf);
        }
    }

    /// `true` if any write (host or device) has defined `buf` so far —
    /// the seeding query behind the MEA105 progress check.
    pub fn has_definition(&self, buf: &str) -> bool {
        self.bufs
            .get(buf)
            .is_some_and(|st| st.host_write.is_some() || st.dev_write.is_some())
    }

    /// Findings so far, without the end-of-session dead-buffer scan.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Ends the session: scans for device-written buffers that nothing
    /// ever consumed (`MEA101`, warning) and returns the full report.
    pub fn finish(mut self) -> Report {
        let dead: Vec<(String, Option<usize>)> = self
            .bufs
            .iter()
            .filter(|(_, st)| st.dev_write.is_some() && !st.consumed)
            .map(|(buf, st)| (buf.clone(), st.def_line))
            .collect();
        for (buf, line) in dead {
            let d = Diagnostic::warning(
                ErrorCode::DfDeadBuffer,
                format!(
                    "accelerator writes `{buf}` but neither the host nor a later pass ever \
                     reads it: the store wasted bandwidth and descriptor space"
                ),
            );
            let d = Self::spanned(d, line);
            self.diag(d, &buf);
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushed_hand_off_is_clean() {
        let mut m = CoherenceMachine::new();
        m.host_write("x", Some(1));
        m.flush();
        m.dev_read("x", Some(3), None);
        m.dev_write("y", Some(3));
        m.flush();
        m.host_read("y", Some(5));
        assert!(m.finish().is_clean());
    }

    #[test]
    fn unflushed_host_write_is_stale_for_the_device() {
        let mut m = CoherenceMachine::new();
        m.host_write("x", Some(1));
        m.dev_read("x", Some(2), None);
        let r = m.finish();
        assert!(r.has_code(ErrorCode::DfStaleRead));
        assert!(!r.has_code(ErrorCode::DfUninitRead));
    }

    #[test]
    fn unflushed_dev_write_is_stale_for_the_host() {
        let mut m = CoherenceMachine::new();
        m.host_write("x", Some(1));
        m.flush();
        m.dev_read("x", Some(3), None);
        m.dev_write("y", Some(3));
        m.host_read("y", Some(4));
        let r = m.finish();
        assert!(r.has_code(ErrorCode::DfStaleRead));
    }

    #[test]
    fn read_with_no_definition_is_uninit() {
        let mut m = CoherenceMachine::new();
        m.dev_read("ghost", Some(1), None);
        assert!(m.finish().has_code(ErrorCode::DfUninitRead));
    }

    #[test]
    fn unconsumed_device_store_is_dead() {
        let mut m = CoherenceMachine::new();
        m.host_write("x", Some(1));
        m.flush();
        m.dev_read("x", Some(3), None);
        m.dev_write("y", Some(3));
        let r = m.finish();
        assert!(r.has_code(ErrorCode::DfDeadBuffer));
        assert_eq!(r.error_count(), 0);
    }

    #[test]
    fn hazards_dedupe_per_buffer() {
        let mut m = CoherenceMachine::new();
        m.host_write("x", Some(1));
        m.dev_read("x", Some(2), Some(0));
        m.dev_read("x", Some(2), Some(1));
        let r = m.finish();
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn device_overwrite_clears_staleness_for_device_reads() {
        // Host wrote (unflushed), but the device then overwrote the
        // buffer: DRAM now holds the freshest bytes for device readers.
        let mut m = CoherenceMachine::new();
        m.host_write("x", Some(1));
        m.dev_write("x", Some(2));
        m.dev_read("x", Some(3), None);
        let r = m.finish();
        assert!(!r.has_code(ErrorCode::DfStaleRead));
    }
}
