//! Buffer-level dataflow IR: def-use chains and loop dependence cycles.
//!
//! The IR deliberately stays at buffer granularity — a `PASS` reads its
//! input buffer and defines its output buffer, and chained `COMP`s
//! stream through CU-internal buffers that never materialize in memory
//! (§2.2).  That makes the def-use relation small enough to compute
//! exactly, with loop bodies contributing one def/use site per pass
//! (loop-carried flow is handled by the coherence machine's bounded
//! unrolling, not here).

use std::collections::BTreeMap;

use mealib_tdl::{ItemLines, PassBlock, ProgramLines, TdlItem, TdlProgram};

/// Where a def or use happens: the top-level item and its source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteRef {
    /// Index into [`TdlProgram::items`].
    pub item: usize,
    /// 1-based source line of the owning `PASS` header, when known.
    pub line: Option<usize>,
    /// `true` if the site sits inside a `LOOP` body.
    pub in_loop: bool,
}

/// Def-use chains over every buffer the program names.
#[derive(Debug, Clone, Default)]
pub struct DefUseChains {
    /// Passes that write each buffer (it is some pass's output).
    pub defs: BTreeMap<String, Vec<SiteRef>>,
    /// Passes that read each buffer (it is some pass's input).
    pub uses: BTreeMap<String, Vec<SiteRef>>,
}

impl DefUseChains {
    /// `true` if `buf` has a def in an item strictly before `item`.
    pub fn defined_before(&self, buf: &str, item: usize) -> bool {
        self.defs
            .get(buf)
            .is_some_and(|sites| sites.iter().any(|s| s.item < item))
    }
}

fn pass_lines(lines: Option<&ProgramLines>, item: usize) -> Vec<Option<usize>> {
    let Some(lines) = lines.and_then(|l| l.items.get(item)) else {
        return Vec::new();
    };
    match lines {
        ItemLines::Pass(p) => vec![Some(p.header)],
        ItemLines::Loop { body, .. } => body.iter().map(|p| Some(p.header)).collect(),
    }
}

/// Builds def-use chains from a program and optional source-line info.
pub fn def_use_chains(program: &TdlProgram, lines: Option<&ProgramLines>) -> DefUseChains {
    let mut chains = DefUseChains::default();
    let record = |map: &mut BTreeMap<String, Vec<SiteRef>>, buf: &str, site: SiteRef| {
        map.entry(buf.to_string()).or_default().push(site);
    };
    for (item_idx, item) in program.items.iter().enumerate() {
        let headers = pass_lines(lines, item_idx);
        let (passes, in_loop): (&[PassBlock], bool) = match item {
            TdlItem::Pass(p) => (std::slice::from_ref(p), false),
            TdlItem::Loop(l) => (&l.body, true),
        };
        for (i, pass) in passes.iter().enumerate() {
            let site = SiteRef {
                item: item_idx,
                line: headers.get(i).copied().flatten(),
                in_loop,
            };
            record(&mut chains.uses, &pass.input, site);
            record(&mut chains.defs, &pass.output, site);
        }
    }
    chains
}

/// Finds a buffer dependence cycle in a loop body, if one exists: a set
/// of buffers where each is produced from the next (`in=p out=q` and
/// `in=q out=p`).  Such a cycle can only make progress if some buffer in
/// it was defined before the loop; otherwise no iteration ever has valid
/// input and the chain can never drain.  Returns the buffers on the
/// first cycle found, in walk order.
pub fn loop_cycle(body: &[PassBlock]) -> Option<Vec<String>> {
    let mut edges: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for p in body {
        edges.entry(p.input.as_str()).or_default().push(&p.output);
    }

    // Colors: absent = white, false = on the current path, true = done.
    fn dfs<'a>(
        node: &'a str,
        edges: &BTreeMap<&'a str, Vec<&'a str>>,
        color: &mut BTreeMap<&'a str, bool>,
        path: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        match color.get(node) {
            Some(true) => return None,
            Some(false) => {
                let start = path.iter().position(|n| *n == node)?;
                return Some(path[start..].iter().map(|n| (*n).to_string()).collect());
            }
            None => {}
        }
        color.insert(node, false);
        path.push(node);
        if let Some(succs) = edges.get(node) {
            for succ in succs {
                if let Some(cycle) = dfs(succ, edges, color, path) {
                    return Some(cycle);
                }
            }
        }
        path.pop();
        color.insert(node, true);
        None
    }

    let mut color = BTreeMap::new();
    let roots: Vec<&str> = edges.keys().copied().collect();
    for root in roots {
        let mut path = Vec::new();
        if let Some(cycle) = dfs(root, &edges, &mut color, &mut path) {
            return Some(cycle);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_tdl::{parse_with_lines, AcceleratorKind, CompBlock};

    fn pass(input: &str, output: &str) -> PassBlock {
        PassBlock::new(
            input,
            output,
            vec![CompBlock::new(AcceleratorKind::Axpy, "a.para")],
        )
    }

    #[test]
    fn chains_record_defs_and_uses_with_lines() {
        let src = "PASS in=x out=y {\n  COMP AXPY params=\"a\"\n}\nLOOP 4 {\n  PASS in=y out=z {\n    COMP FFT params=\"f\"\n  }\n}\n";
        let (program, lines) = parse_with_lines(src).unwrap();
        let chains = def_use_chains(&program, Some(&lines));
        assert_eq!(chains.defs["y"][0].item, 0);
        assert_eq!(chains.defs["y"][0].line, Some(1));
        assert!(!chains.defs["y"][0].in_loop);
        assert_eq!(chains.uses["y"][0].item, 1);
        assert_eq!(chains.uses["y"][0].line, Some(5));
        assert!(chains.uses["y"][0].in_loop);
        assert!(chains.defined_before("y", 1));
        assert!(!chains.defined_before("z", 1));
    }

    #[test]
    fn ping_pong_body_has_a_cycle() {
        let cycle = loop_cycle(&[pass("p", "q"), pass("q", "p")]).unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&"p".to_string()));
        assert!(cycle.contains(&"q".to_string()));
    }

    #[test]
    fn straight_body_has_no_cycle() {
        assert!(loop_cycle(&[pass("a", "b"), pass("b", "c")]).is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let cycle = loop_cycle(&[pass("s", "s")]).unwrap();
        assert_eq!(cycle, vec!["s".to_string()]);
    }
}
