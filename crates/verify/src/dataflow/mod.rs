//! Dataflow & coherence analysis for TDL task graphs (MEA100–MEA109).
//!
//! The four passes of this module reason about what a descriptor will
//! *do to memory*, where the earlier passes only checked its shape:
//!
//! | Code   | Pass | Finding |
//! |--------|------|---------|
//! | MEA100 | init | accelerator read with no reaching definition |
//! | MEA101 | init | device-written buffer never consumed (warning) |
//! | MEA102 | alias | overlapping extents with at least one writer |
//! | MEA103 | coherence | stale read across the cache boundary |
//! | MEA104 | capacity | chain deeper than the CU's stream buffering |
//! | MEA105 | progress | unseeded cyclic buffer dependence in a loop |
//!
//! Two analysis modes, chosen per input (see [`session`]):
//!
//! * **implicit** — plain TDL, no host directives.  The host is assumed
//!   well-behaved: external inputs initialized and flushed, outputs
//!   consumed.  Only the structural passes (MEA102 with declared
//!   extents, MEA104) can fire, so every program that was lint-clean
//!   before this module existed stays lint-clean.
//! * **explicit** — the source carries `HOST`/`FLUSH` directives.  The
//!   [`coherence::CoherenceMachine`] replays an elaborated access
//!   stream (loops unrolled to `min(count, 2)` iterations — the
//!   per-buffer epoch state repeats after two trips, and two is enough
//!   to see every loop-carried first-iteration hazard) and the progress
//!   pass demands that loop dependence cycles are seeded from outside.
//!
//! The runtime's `Sanitizer` drives the *same* [`CoherenceMachine`]
//! with the accesses that actually occur during simulation, which is
//! what makes static and dynamic verdicts comparable bit-for-bit.

pub mod alias;
pub mod coherence;
pub mod graph;
pub mod session;

use std::collections::BTreeMap;

use mealib_tdl::{ItemLines, ParseError, ProgramLines, TdlItem, TdlProgram};
use mealib_types::{AddrRange, Diagnostic, ErrorCode, Report};

pub use alias::{fusion_legal, AliasOracle, FusionStage};
pub use coherence::CoherenceMachine;
pub use graph::{def_use_chains, loop_cycle, DefUseChains, SiteRef};
pub use session::{parse_session, Budgets, HostOp, MemLayer, Session};

/// Hardware capacities the structural passes check against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataflowLimits {
    /// Stream buffers one CU provides to a chained pass; a deeper chain
    /// has no buffer to drain into and stalls forever (MEA104).  Matches
    /// the per-tile switch fan-in of Figure 7.
    pub stream_buffers: usize,
}

impl Default for DataflowLimits {
    fn default() -> Self {
        Self { stream_buffers: 4 }
    }
}

/// Everything the analysis knows about the world outside the program.
#[derive(Debug, Clone, Default)]
pub struct DataflowEnv {
    /// Physical extents of named buffers (from `BUF` directives or the
    /// runtime's allocation table); enables the MEA102 overlap pass.
    pub extents: BTreeMap<String, AddrRange>,
    /// Capacity limits for the structural passes.
    pub limits: DataflowLimits,
}

/// Source lines for each pass of a flattened program, tolerating the
/// no-line-info case (every lookup answers `None`).
#[derive(Debug, Clone, Default)]
pub struct ProgramSpans<'a> {
    lines: Option<&'a ProgramLines>,
}

impl<'a> ProgramSpans<'a> {
    /// Wraps optional line info.
    pub fn new(lines: Option<&'a ProgramLines>) -> Self {
        Self { lines }
    }

    /// Header line of the `idx`-th pass in [`TdlProgram::passes`] order.
    pub fn pass_header(&self, idx: usize) -> Option<usize> {
        let lines = self.lines?;
        let mut flat = 0usize;
        for item in &lines.items {
            match item {
                ItemLines::Pass(p) => {
                    if flat == idx {
                        return Some(p.header);
                    }
                    flat += 1;
                }
                ItemLines::Loop { body, .. } => {
                    if idx < flat + body.len() {
                        return Some(body[idx - flat].header);
                    }
                    flat += body.len();
                }
            }
        }
        None
    }

    /// Header line of the `idx`-th top-level item.
    pub fn item_header(&self, idx: usize) -> Option<usize> {
        match self.lines?.items.get(idx)? {
            ItemLines::Pass(p) => Some(p.header),
            ItemLines::Loop { header, .. } => Some(*header),
        }
    }
}

fn at(d: Diagnostic, line: Option<usize>) -> Diagnostic {
    match line {
        Some(l) => d.at_line(l),
        None => d,
    }
}

/// MEA104: a pass chaining more comps than the CU has stream buffers
/// can never drain — each stage needs somewhere to stream into.
fn check_capacity(
    program: &TdlProgram,
    spans: &ProgramSpans<'_>,
    limits: &DataflowLimits,
    report: &mut Report,
) {
    for (idx, pass) in program.passes().enumerate() {
        if pass.comps.len() > limits.stream_buffers {
            report.push(at(
                Diagnostic::error(
                    ErrorCode::DfChainOverCapacity,
                    format!(
                        "pass `{} -> {}` chains {} comps but the CU provides only {} stream \
                         buffers: the chain stalls with nowhere to drain",
                        pass.input,
                        pass.output,
                        pass.comps.len(),
                        limits.stream_buffers,
                    ),
                ),
                spans.pass_header(idx),
            ));
        }
    }
}

/// MEA105 (explicit mode): a dependence cycle among a loop body's
/// buffers is fine when seeded — ping-pong iteration is a real pattern —
/// but with no definition reaching the loop from outside, no iteration
/// ever has valid input.
fn check_progress(session: &Session, report: &mut Report) {
    let spans = ProgramSpans::new(Some(&session.lines));
    let chains = def_use_chains(&session.program, Some(&session.lines));
    for (item_idx, item) in session.program.items.iter().enumerate() {
        let TdlItem::Loop(l) = item else { continue };
        let Some(cycle) = loop_cycle(&l.body) else {
            continue;
        };
        let header = spans.item_header(item_idx);
        let seeded = cycle.iter().any(|buf| {
            chains.defined_before(buf, item_idx)
                || session.host_ops.iter().any(|(line, op)| {
                    matches!(op, HostOp::Write(b) if b == buf) && header.is_none_or(|h| *line < h)
                })
        });
        if !seeded {
            report.push(at(
                Diagnostic::error(
                    ErrorCode::DfCyclicDependence,
                    format!(
                        "loop body forms a dependence cycle over {} with no definition \
                         reaching the loop: no iteration ever has valid input and the \
                         chain can never drain",
                        cycle
                            .iter()
                            .map(|b| format!("`{b}`"))
                            .collect::<Vec<_>>()
                            .join(" -> "),
                    ),
                ),
                header,
            ));
        }
    }
}

/// Replays the session's access stream through the coherence machine.
fn run_coherence(session: &Session) -> Report {
    let spans = ProgramSpans::new(Some(&session.lines));
    // Merge host ops and items by source position.
    enum Ev<'a> {
        Host(&'a HostOp),
        Item(usize),
    }
    let mut events: Vec<(usize, Ev<'_>)> = session
        .host_ops
        .iter()
        .map(|(line, op)| (*line, Ev::Host(op)))
        .collect();
    for idx in 0..session.program.items.len() {
        events.push((spans.item_header(idx).unwrap_or(usize::MAX), Ev::Item(idx)));
    }
    events.sort_by_key(|(line, _)| *line);

    let mut machine = CoherenceMachine::new();
    let mut flat_base = vec![0usize; session.program.items.len()];
    let mut flat = 0usize;
    for (idx, item) in session.program.items.iter().enumerate() {
        flat_base[idx] = flat;
        flat += match item {
            TdlItem::Pass(_) => 1,
            TdlItem::Loop(l) => l.body.len(),
        };
    }
    for (line, ev) in events {
        match ev {
            Ev::Host(HostOp::Write(buf)) => machine.host_write(buf, Some(line)),
            Ev::Host(HostOp::Read(buf)) => machine.host_read(buf, Some(line)),
            Ev::Host(HostOp::Flush) => machine.flush(),
            Ev::Item(idx) => match &session.program.items[idx] {
                TdlItem::Pass(p) => {
                    let l = spans.pass_header(flat_base[idx]);
                    machine.dev_read(&p.input, l, None);
                    machine.dev_write(&p.output, l);
                }
                TdlItem::Loop(l) => {
                    // min(count, 2): the epoch state repeats after two
                    // trips, and two is enough to classify every
                    // first-iteration and steady-state hazard.
                    for iter in 0..l.count.min(2) {
                        for (pi, p) in l.body.iter().enumerate() {
                            let pl = spans.pass_header(flat_base[idx] + pi);
                            machine.dev_read(&p.input, pl, Some(iter));
                            machine.dev_write(&p.output, pl);
                        }
                    }
                }
            },
        }
    }
    machine.finish()
}

/// Verifies a parsed session, explicit or implicit.  `env` supplies
/// extents from outside the source (the session's own `BUF` directives
/// take precedence) and the capacity limits.
pub fn verify_session(session: &Session, env: &DataflowEnv) -> Report {
    let mut report = Report::new();
    let spans = ProgramSpans::new(Some(&session.lines));

    let mut extents = env.extents.clone();
    extents.extend(session.extents.clone());
    let oracle = AliasOracle::with_extents(extents);

    check_capacity(&session.program, &spans, &env.limits, &mut report);
    alias::check_overlaps(&session.program, &spans, &oracle, &mut report);

    if session.is_explicit() {
        check_progress(session, &mut report);
        report.merge(run_coherence(session));
    }
    report
}

/// Parses and verifies session source in one step.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed directives or TDL.
pub fn verify_source(src: &str, env: &DataflowEnv) -> Result<Report, ParseError> {
    let session = parse_session(src)?;
    Ok(verify_session(&session, env))
}

/// Verifies an already-parsed program in implicit mode: structural
/// passes only, with extents (if any) supplied by `env`.  This is the
/// entry the runtime uses at plan time, feeding in the driver's real
/// allocation table.
pub fn verify_program(
    program: &TdlProgram,
    lines: Option<&ProgramLines>,
    env: &DataflowEnv,
) -> Report {
    let mut report = Report::new();
    let spans = ProgramSpans::new(lines);
    let oracle = AliasOracle::with_extents(env.extents.clone());
    check_capacity(program, &spans, &env.limits, &mut report);
    alias::check_overlaps(program, &spans, &oracle, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_types::{Bytes, PhysAddr};

    fn verify(src: &str) -> Report {
        verify_source(src, &DataflowEnv::default()).expect("parse")
    }

    const CLEAN_EXPLICIT: &str = "\
HOST WRITE x
FLUSH
PASS in=x out=y {
  COMP AXPY params=\"a\"
}
FLUSH
HOST READ y
";

    #[test]
    fn clean_explicit_session_is_clean() {
        assert!(verify(CLEAN_EXPLICIT).is_clean());
    }

    #[test]
    fn implicit_mode_trusts_the_host() {
        // No directives: external input x is assumed initialized and
        // flushed, output y assumed consumed.
        let r = verify("PASS in=x out=y {\n  COMP AXPY params=\"a\"\n}\n");
        assert!(r.is_clean());
    }

    #[test]
    fn missing_flush_is_stale() {
        let r = verify(
            "HOST WRITE x\nPASS in=x out=y {\n  COMP AXPY params=\"a\"\n}\nFLUSH\nHOST READ y\n",
        );
        assert!(r.has_code(ErrorCode::DfStaleRead));
    }

    #[test]
    fn undeclared_input_is_uninit_in_explicit_mode() {
        let r = verify(
            "FLUSH\nPASS in=ghost out=y {\n  COMP AXPY params=\"a\"\n}\nFLUSH\nHOST READ y\n",
        );
        assert!(r.has_code(ErrorCode::DfUninitRead));
    }

    #[test]
    fn loop_carried_stale_read_found_on_first_iteration() {
        // s is written by the host but never flushed; the loop's first
        // iteration reads the stale DRAM copy, later iterations read
        // the device's own output.
        let src = "\
HOST WRITE s
HOST WRITE x
FLUSH
HOST WRITE s
LOOP 8 {
  PASS in=s out=t {
    COMP AXPY params=\"a\"
  }
  PASS in=x out=s {
    COMP AXPY params=\"b\"
  }
}
FLUSH
HOST READ t
";
        let r = verify(src);
        assert!(r.has_code(ErrorCode::DfStaleRead), "{}", r.render());
    }

    #[test]
    fn over_deep_chain_cannot_drain() {
        let src = "\
PASS in=a out=b {
  COMP RESMP params=\"r\"
  COMP FFT params=\"f\"
  COMP GEMV params=\"g\"
  COMP AXPY params=\"x\"
  COMP RESHP params=\"t\"
}
";
        assert!(verify(src).has_code(ErrorCode::DfChainOverCapacity));
    }

    #[test]
    fn unseeded_cycle_cannot_drain_but_seeded_ping_pong_can() {
        let cyclic = "\
FLUSH
LOOP 4 {
  PASS in=p out=q {
    COMP AXPY params=\"a\"
  }
  PASS in=q out=p {
    COMP AXPY params=\"b\"
  }
}
";
        assert!(verify(cyclic).has_code(ErrorCode::DfCyclicDependence));

        let seeded = format!("HOST WRITE p\n{cyclic}FLUSH\nHOST READ p\n");
        assert!(!verify(&seeded).has_code(ErrorCode::DfCyclicDependence));
    }

    #[test]
    fn overlap_needs_declared_extents() {
        let body = "PASS in=a out=b {\n  COMP RESMP params=\"r\"\n  COMP FFT params=\"f\"\n}\n";
        assert!(verify(body).is_clean());
        let declared = format!("BUF a 0x1000 0x200\nBUF b 0x1100 0x200\n{body}");
        assert!(verify(&declared).has_code(ErrorCode::DfOverlap));
    }

    #[test]
    fn env_extents_enable_overlap_in_implicit_mode() {
        let (program, lines) = mealib_tdl::parse_with_lines(
            "PASS in=a out=b {\n  COMP RESMP params=\"r\"\n  COMP FFT params=\"f\"\n}\n",
        )
        .unwrap();
        let mut env = DataflowEnv::default();
        env.extents.insert(
            "a".to_string(),
            AddrRange::new(PhysAddr::new(0x1000), Bytes::new(0x200)),
        );
        env.extents.insert(
            "b".to_string(),
            AddrRange::new(PhysAddr::new(0x1100), Bytes::new(0x200)),
        );
        let r = verify_program(&program, Some(&lines), &env);
        assert!(r.has_code(ErrorCode::DfOverlap));
        assert_eq!(
            r.diagnostics()
                .iter()
                .filter_map(|d| match d.span {
                    mealib_types::Span::Line(l) => Some(l),
                    _ => None,
                })
                .next(),
            Some(1)
        );
    }

    #[test]
    fn dead_device_store_warns_in_explicit_mode() {
        let r = verify("HOST WRITE x\nFLUSH\nPASS in=x out=y {\n  COMP AXPY params=\"a\"\n}\n");
        assert!(r.has_code(ErrorCode::DfDeadBuffer));
        assert_eq!(r.error_count(), 0);
    }
}
