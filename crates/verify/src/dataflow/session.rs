//! Analysis sessions: TDL programs plus host-interaction directives.
//!
//! A *session* extends plain TDL with directive lines describing how the
//! host side of the application touches accelerator buffers.  Directives
//! let a corpus file express the coherence protocol of §3.3 — host
//! writes that must be flushed (`wbinvd`) before the accelerator may
//! observe them — without inventing a second language: directive lines
//! are stripped (blank-preserving, so spans stay honest) and the rest is
//! parsed as ordinary TDL.
//!
//! Directive grammar, one per line, interleaved between top-level items:
//!
//! ```text
//! HOST WRITE <buffer>        # host CPU writes <buffer> (dirty cache lines)
//! HOST READ  <buffer>        # host CPU reads <buffer>
//! FLUSH                      # wbinvd: write back + invalidate all lines
//! BUF <name> <base> <len>    # declare <name>'s physical extent (hex or dec)
//! BUDGET TIME <seconds>      # declared wall-time budget (MEA201)
//! BUDGET ENERGY <joules>     # declared energy budget (MEA203)
//! BUDGET CAPACITY <bytes>    # modeled stack capacity override (MEA200)
//! MEM INTERLEAVED            # vault-interleaved stack mapping (default)
//! MEM XOR                    # XOR-hashed vault interleaving
//! MEM ASYM <split>           # asymmetric mapping, high region at <split>
//! MEM HOST                   # run on the host DIMMs (host roofline)
//! ```
//!
//! A session containing at least one `HOST`/`FLUSH` directive is
//! analysed in *explicit* mode: only declared host writes count as
//! initialization and every hand-off must be flushed.  A directive-free
//! session is *implicit*: the host is assumed well-behaved (external
//! inputs initialized and flushed), and only structural checks apply.

use std::collections::BTreeMap;

use mealib_tdl::{parse_with_lines, ParseError, ProgramLines, TdlProgram};
use mealib_types::{AddrRange, Bytes, PhysAddr};

/// One host-side action recorded by a session directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostOp {
    /// The host CPU wrote the named buffer (cache lines now dirty).
    Write(String),
    /// The host CPU read the named buffer.
    Read(String),
    /// `wbinvd`: write back every dirty line and invalidate the cache.
    Flush,
}

/// Which memory layer (and mapping mode) the session runs on, selected
/// by a `MEM` directive. The bounds pass prices traffic through the
/// matching [`mealib_memsim::AddressMapping`] and checks demanded
/// throughput against the roofline of this layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLayer {
    /// Vault-interleaved stack mapping (the default when no `MEM`
    /// directive appears).
    Interleaved,
    /// XOR-hashed vault interleaving.
    Xor,
    /// Asymmetric mapping; the operand is the first address of the
    /// single-channel high region.
    Asym(u64),
    /// The host's DIMM system: host roofline, host mapping.
    Host,
}

/// Resource budgets declared by `BUDGET` directives. Absent budgets
/// disable the corresponding bounds diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budgets {
    /// Declared wall-time budget in seconds (`BUDGET TIME`).
    pub time_s: Option<f64>,
    /// Declared energy budget in joules (`BUDGET ENERGY`).
    pub energy_j: Option<f64>,
    /// Modeled stack capacity override in bytes (`BUDGET CAPACITY`).
    pub capacity_bytes: Option<u64>,
}

/// A parsed session: the TDL program, its source lines, and the host
/// interaction stream ordered by source line.
#[derive(Debug, Clone)]
pub struct Session {
    /// The TDL program with directive lines removed.
    pub program: TdlProgram,
    /// Source lines of every `PASS`/`LOOP`/`COMP`, for spans.
    pub lines: ProgramLines,
    /// Host operations with their 1-based source line, in source order.
    pub host_ops: Vec<(usize, HostOp)>,
    /// Declared physical extents from `BUF` directives.
    pub extents: BTreeMap<String, AddrRange>,
    /// Declared resource budgets from `BUDGET` directives.
    pub budgets: Budgets,
    /// Memory layer selected by a `MEM` directive, with its source line.
    pub mem_layer: Option<(usize, MemLayer)>,
}

impl Session {
    /// `true` if the session declares any host interaction, switching
    /// the analysis into explicit mode.
    pub fn is_explicit(&self) -> bool {
        !self.host_ops.is_empty()
    }
}

fn directive_err(expected: &str, found: &str, line: usize) -> ParseError {
    ParseError::Unexpected {
        expected: expected.to_string(),
        found: found.to_string(),
        line,
    }
}

fn parse_extent_number(tok: &str, line: usize) -> Result<u64, ParseError> {
    let parsed = match tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => tok.parse(),
    };
    parsed.map_err(|_| directive_err("a decimal or 0x-prefixed address", tok, line))
}

fn parse_budget_number(tok: &str, line: usize) -> Result<f64, ParseError> {
    match tok.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
        _ => Err(directive_err("a positive budget value", tok, line)),
    }
}

/// Parses a session: splits directive lines out of `src`, parses the
/// remainder as TDL, and returns both halves with line numbers intact.
///
/// # Errors
///
/// Returns a [`ParseError`] for a malformed directive or for any
/// lexical/syntactic problem in the TDL remainder.
pub fn parse_session(src: &str) -> Result<Session, ParseError> {
    let mut tdl = String::with_capacity(src.len());
    let mut host_ops = Vec::new();
    let mut extents = BTreeMap::new();
    let mut budgets = Budgets::default();
    let mut mem_layer = None;

    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let toks: Vec<&str> = raw.split_whitespace().collect();
        let is_directive = matches!(
            toks.first(),
            Some(&"HOST") | Some(&"FLUSH") | Some(&"BUF") | Some(&"BUDGET") | Some(&"MEM")
        );
        if !is_directive {
            tdl.push_str(raw);
            tdl.push('\n');
            continue;
        }
        // Blank the directive so TDL spans keep their original lines.
        tdl.push('\n');
        match toks.as_slice() {
            ["HOST", "WRITE", buf] => host_ops.push((line, HostOp::Write((*buf).to_string()))),
            ["HOST", "READ", buf] => host_ops.push((line, HostOp::Read((*buf).to_string()))),
            ["HOST", ..] => {
                return Err(directive_err(
                    "HOST WRITE <buf> or HOST READ <buf>",
                    raw,
                    line,
                ))
            }
            ["FLUSH"] => host_ops.push((line, HostOp::Flush)),
            ["FLUSH", ..] => return Err(directive_err("FLUSH with no operands", raw, line)),
            ["BUF", name, base, len] => {
                let base = parse_extent_number(base, line)?;
                let len = parse_extent_number(len, line)?;
                extents.insert(
                    (*name).to_string(),
                    AddrRange::new(PhysAddr::new(base), Bytes::new(len)),
                );
            }
            ["BUF", ..] => return Err(directive_err("BUF <name> <base> <len>", raw, line)),
            ["BUDGET", "TIME", v] => {
                budgets.time_s = Some(parse_budget_number(v, line)?);
            }
            ["BUDGET", "ENERGY", v] => {
                budgets.energy_j = Some(parse_budget_number(v, line)?);
            }
            ["BUDGET", "CAPACITY", v] => {
                budgets.capacity_bytes = Some(parse_extent_number(v, line)?);
            }
            ["BUDGET", ..] => {
                return Err(directive_err(
                    "BUDGET TIME|ENERGY|CAPACITY <value>",
                    raw,
                    line,
                ))
            }
            ["MEM", "INTERLEAVED"] => mem_layer = Some((line, MemLayer::Interleaved)),
            ["MEM", "XOR"] => mem_layer = Some((line, MemLayer::Xor)),
            ["MEM", "ASYM", split] => {
                mem_layer = Some((line, MemLayer::Asym(parse_extent_number(split, line)?)));
            }
            ["MEM", "HOST"] => mem_layer = Some((line, MemLayer::Host)),
            ["MEM", ..] => {
                return Err(directive_err(
                    "MEM INTERLEAVED|XOR|ASYM <split>|HOST",
                    raw,
                    line,
                ))
            }
            _ => unreachable!("directive head checked above"),
        }
    }

    let (program, lines) = parse_with_lines(&tdl)?;
    Ok(Session {
        program,
        lines,
        host_ops,
        extents,
        budgets,
        mem_layer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_free_source_is_implicit() {
        let s = parse_session("PASS in=a out=b {\n  COMP FFT params=\"f\"\n}\n").unwrap();
        assert!(!s.is_explicit());
        assert!(s.host_ops.is_empty());
        assert!(s.extents.is_empty());
        assert_eq!(s.program.items.len(), 1);
    }

    #[test]
    fn directives_are_stripped_with_lines_preserved() {
        let src =
            "HOST WRITE x\nFLUSH\nPASS in=x out=y {\n  COMP AXPY params=\"a\"\n}\nHOST READ y\n";
        let s = parse_session(src).unwrap();
        assert!(s.is_explicit());
        assert_eq!(
            s.host_ops,
            vec![
                (1, HostOp::Write("x".into())),
                (2, HostOp::Flush),
                (6, HostOp::Read("y".into())),
            ]
        );
        // The PASS keeps its original source line despite the stripping.
        match &s.lines.items[0] {
            mealib_tdl::ItemLines::Pass(p) => assert_eq!(p.header, 3),
            other => panic!("expected pass lines, got {other:?}"),
        }
    }

    #[test]
    fn buf_directive_declares_extents() {
        let src =
            "BUF a 0x1000 256\nBUF b 4352 0x100\nPASS in=a out=b {\n  COMP FFT params=\"f\"\n}\n";
        let s = parse_session(src).unwrap();
        let a = s.extents.get("a").unwrap();
        assert_eq!(a.start().get(), 0x1000);
        assert_eq!(a.len().get(), 256);
        let b = s.extents.get("b").unwrap();
        assert_eq!(b.start().get(), 4352);
        assert_eq!(b.len().get(), 0x100);
    }

    #[test]
    fn malformed_directives_are_rejected() {
        for bad in [
            "HOST SCRIBBLE x\n",
            "HOST WRITE\n",
            "FLUSH now\n",
            "BUF a 0x10\n",
            "BUF a lots 4\n",
            "BUDGET TIME\n",
            "BUDGET TIME -1\n",
            "BUDGET WATTS 5\n",
            "MEM\n",
            "MEM ASYM\n",
            "MEM SIDEWAYS\n",
        ] {
            assert!(parse_session(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn budget_and_mem_directives_parse() {
        let src = "BUDGET TIME 0.5\nBUDGET ENERGY 12.5\nBUDGET CAPACITY 0x1000\nMEM ASYM \
                   0x200000000\nPASS in=a out=b {\n  COMP FFT params=\"f\"\n}\n";
        let s = parse_session(src).unwrap();
        assert_eq!(s.budgets.time_s, Some(0.5));
        assert_eq!(s.budgets.energy_j, Some(12.5));
        assert_eq!(s.budgets.capacity_bytes, Some(0x1000));
        assert_eq!(s.mem_layer, Some((4, MemLayer::Asym(0x2_0000_0000))));
        // Budgets alone do not make a session explicit.
        assert!(!s.is_explicit());
        for (mode, want) in [
            ("MEM INTERLEAVED", MemLayer::Interleaved),
            ("MEM XOR", MemLayer::Xor),
            ("MEM HOST", MemLayer::Host),
        ] {
            let src = format!("{mode}\nPASS in=a out=b {{\n  COMP FFT params=\"f\"\n}}\n");
            let s = parse_session(&src).unwrap();
            assert_eq!(s.mem_layer, Some((1, want)), "{mode}");
        }
    }
}
