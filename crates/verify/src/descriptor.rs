//! Descriptor-image verification (`MEA010`–`MEA019`).
//!
//! [`mealib_tdl::Descriptor::decode_bytes`] is a fail-fast decoder: it
//! returns the *first* defect and says nothing about where it sits in
//! the image. This pass is the tolerant counterpart — it walks the whole
//! Control/Instruction/Parameter layout, keeps going after each finding,
//! and anchors every diagnostic to a byte span so a corrupted image can
//! be repaired in one round trip.

use mealib_tdl::descriptor::{
    CMD_START, CR_BYTES, INSTR_BYTES, MAGIC, OP_LOOP_BEGIN, OP_LOOP_END, OP_PASS_BEGIN,
    OP_PASS_END, PARAM_ALIGN,
};
use mealib_tdl::AcceleratorKind;
use mealib_types::{Diagnostic, ErrorCode, Report};

fn le32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("caller checked bounds"))
}

fn le64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("caller checked bounds"))
}

/// Verifies a raw descriptor image as the Configuration Unit would see
/// it in the command space.
pub fn verify_image(bytes: &[u8]) -> Report {
    let mut report = Report::new();

    if bytes.len() < CR_BYTES {
        report.push(
            Diagnostic::error(
                ErrorCode::DescTruncated,
                format!(
                    "image is {} bytes, shorter than the {CR_BYTES}-byte control region",
                    bytes.len()
                ),
            )
            .at_bytes(0, bytes.len()),
        );
        return report;
    }

    let magic = le32(bytes, 0);
    if magic != MAGIC {
        report.push(
            Diagnostic::error(
                ErrorCode::DescBadMagic,
                format!("control-region magic is {magic:#010x}, expected {MAGIC:#010x} (\"MEAL\")"),
            )
            .at_bytes(0, 4),
        );
    }
    let cmd = le32(bytes, 4);
    if cmd != CMD_START {
        report.push(
            Diagnostic::error(
                ErrorCode::DescBadCommand,
                format!(
                    "control command is {cmd}, the only defined command is START ({CMD_START})"
                ),
            )
            .at_bytes(4, 4),
        );
    }

    let instr_count = le32(bytes, 8) as usize;
    let pr_offset = le32(bytes, 12) as usize;
    let ir_end = CR_BYTES + instr_count * INSTR_BYTES;

    if bytes.len() < ir_end {
        report.push(
            Diagnostic::error(
                ErrorCode::DescTruncated,
                format!(
                    "control region claims {instr_count} instructions ({ir_end} bytes) \
                     but the image is only {} bytes",
                    bytes.len()
                ),
            )
            .at_bytes(8, 4),
        );
        // Nothing past the CR can be trusted.
        return report;
    }
    if bytes.len() < pr_offset {
        report.push(
            Diagnostic::error(
                ErrorCode::DescTruncated,
                format!(
                    "parameter region starts at byte {pr_offset} but the image ends at {}",
                    bytes.len()
                ),
            )
            .at_bytes(12, 4),
        );
        return report;
    }

    // The three regions must tile the image: PR begins exactly where the
    // IR ends, otherwise instructions and parameters overlap (the fetch
    // unit would execute parameter bytes) or leave an unaddressable gap.
    let pr_trustworthy = pr_offset == ir_end;
    if !pr_trustworthy {
        report.push(
            Diagnostic::error(
                ErrorCode::DescRegionOverlap,
                format!(
                    "parameter region offset {pr_offset} does not match the end of the \
                     instruction region ({ir_end}); regions {}",
                    if pr_offset < ir_end {
                        "overlap"
                    } else {
                        "leave a gap"
                    }
                ),
            )
            .at_bytes(12, 4),
        );
    }
    if !pr_offset.is_multiple_of(INSTR_BYTES) {
        report.push(
            Diagnostic::error(
                ErrorCode::DescMisalignedPr,
                format!("parameter region offset {pr_offset} is not {INSTR_BYTES}-byte aligned"),
            )
            .at_bytes(12, 4),
        );
    }

    let pr_size = bytes.len() - pr_offset.min(bytes.len());
    let mut pass_depth = 0i32;
    let mut loop_depth = 0i32;
    for i in 0..instr_count {
        let base = CR_BYTES + i * INSTR_BYTES;
        let opcode = bytes[base];
        let a = le32(bytes, base + 4);
        let b = le64(bytes, base + 8);
        let at = |d: Diagnostic| d.at_bytes(base, INSTR_BYTES);
        match opcode {
            OP_PASS_BEGIN => {
                pass_depth += 1;
                if pass_depth > 1 {
                    report.push(at(Diagnostic::error(
                        ErrorCode::DescUnbalancedBlocks,
                        format!("instruction {i}: PASS_BEGIN inside an open pass"),
                    )));
                    pass_depth = 1;
                }
            }
            OP_PASS_END => {
                pass_depth -= 1;
                if pass_depth < 0 {
                    report.push(at(Diagnostic::error(
                        ErrorCode::DescUnbalancedBlocks,
                        format!("instruction {i}: PASS_END without a matching PASS_BEGIN"),
                    )));
                    pass_depth = 0;
                }
            }
            OP_LOOP_BEGIN => {
                loop_depth += 1;
                if loop_depth > 1 || pass_depth != 0 {
                    report.push(at(Diagnostic::error(
                        ErrorCode::DescUnbalancedBlocks,
                        format!(
                            "instruction {i}: LOOP_BEGIN {}",
                            if pass_depth != 0 {
                                "inside a pass"
                            } else {
                                "inside another loop"
                            }
                        ),
                    )));
                    loop_depth = loop_depth.min(1);
                }
            }
            OP_LOOP_END => {
                loop_depth -= 1;
                if loop_depth < 0 || pass_depth != 0 {
                    report.push(at(Diagnostic::error(
                        ErrorCode::DescUnbalancedBlocks,
                        format!(
                            "instruction {i}: LOOP_END {}",
                            if pass_depth != 0 {
                                "inside a pass"
                            } else {
                                "without a matching LOOP_BEGIN"
                            }
                        ),
                    )));
                    loop_depth = loop_depth.max(0);
                }
            }
            op => match AcceleratorKind::from_opcode(op) {
                None => {
                    report.push(at(Diagnostic::error(
                        ErrorCode::DescUnknownOpcode,
                        format!("instruction {i}: opcode {op:#04x} is outside the ISA"),
                    )));
                }
                Some(kind) => {
                    if pass_depth != 1 {
                        report.push(at(Diagnostic::error(
                            ErrorCode::DescUnbalancedBlocks,
                            format!("instruction {i}: {kind} invocation outside any pass"),
                        )));
                    }
                    // Param references only make sense against a PR whose
                    // placement decoded consistently.
                    if pr_trustworthy {
                        let end = b.saturating_add(a as u64);
                        if end > pr_size as u64 {
                            report.push(at(Diagnostic::error(
                                ErrorCode::DescParamOutOfRange,
                                format!(
                                    "instruction {i}: {kind} parameters at PR offset {b} \
                                     span {a} bytes, beyond the {pr_size}-byte region"
                                ),
                            )));
                        }
                        if !b.is_multiple_of(PARAM_ALIGN as u64) {
                            report.push(at(Diagnostic::error(
                                ErrorCode::DescParamMisaligned,
                                format!(
                                    "instruction {i}: {kind} parameter offset {b} is not \
                                     {PARAM_ALIGN}-byte aligned"
                                ),
                            )));
                        }
                    }
                }
            },
        }
    }
    if pass_depth != 0 || loop_depth != 0 {
        report.push(
            Diagnostic::error(
                ErrorCode::DescUnbalancedBlocks,
                format!(
                    "image ends with {pass_depth} unclosed pass(es) and \
                     {loop_depth} unclosed loop(s)"
                ),
            )
            .at_bytes(CR_BYTES, instr_count * INSTR_BYTES),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_tdl::{parse, Descriptor, ParamBag};
    use std::collections::BTreeMap;

    fn good_image() -> Vec<u8> {
        let program = parse(
            r#"
            PASS in=a out=b {
                COMP RESHP params="r.para"
                COMP FFT params="f.para"
            }
            LOOP 16 { PASS in=b out=c { COMP DOT params="d.para" } }
            "#,
        )
        .unwrap();
        let mut params = ParamBag::new();
        params.insert("r.para".into(), vec![1; 5]);
        params.insert("f.para".into(), vec![2; 16]);
        params.insert("d.para".into(), vec![3; 12]);
        let buffers: BTreeMap<String, u64> = [
            ("a".into(), 0x1000u64),
            ("b".into(), 0x2000),
            ("c".into(), 0x3000),
        ]
        .into_iter()
        .collect();
        Descriptor::encode(&program, &params, &buffers)
            .unwrap()
            .as_bytes()
            .to_vec()
    }

    #[test]
    fn pristine_image_is_clean() {
        let r = verify_image(&good_image());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn short_image_reports_truncation_only() {
        let r = verify_image(&[0x4C, 0x41]);
        assert!(r.has_code(ErrorCode::DescTruncated));
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn bad_magic_does_not_stop_the_walk() {
        let mut img = good_image();
        img[0] ^= 0xff;
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescBadMagic));
        // The rest of the image is still intact — no other findings.
        assert_eq!(r.error_count(), 1, "{r}");
        assert!(r.render().contains("bytes 0..4"), "{r}");
    }

    #[test]
    fn bad_command_flagged() {
        let mut img = good_image();
        img[4] = 9;
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescBadCommand));
    }

    #[test]
    fn inflated_count_is_truncation() {
        let mut img = good_image();
        img[8..12].copy_from_slice(&1000u32.to_le_bytes());
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescTruncated));
    }

    #[test]
    fn shifted_pr_offset_is_region_overlap() {
        let mut img = good_image();
        let pr = u32::from_le_bytes(img[12..16].try_into().unwrap());
        img[12..16].copy_from_slice(&(pr - 16).to_le_bytes());
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescRegionOverlap), "{r}");
    }

    #[test]
    fn misaligned_pr_offset_flagged() {
        let mut img = good_image();
        let pr = u32::from_le_bytes(img[12..16].try_into().unwrap());
        img[12..16].copy_from_slice(&(pr + 4).to_le_bytes());
        img.extend_from_slice(&[0; 4]); // keep the image long enough
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescMisalignedPr));
        assert!(r.has_code(ErrorCode::DescRegionOverlap));
    }

    #[test]
    fn unknown_opcode_and_walk_continues() {
        let mut img = good_image();
        img[CR_BYTES] = 0x7f; // clobber PASS_BEGIN
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescUnknownOpcode));
        // Losing PASS_BEGIN also orphans the accels and the PASS_END.
        assert!(r.has_code(ErrorCode::DescUnbalancedBlocks));
    }

    #[test]
    fn param_bounds_and_alignment_checked() {
        let mut img = good_image();
        // First accel instruction is index 1; its param_addr is at +8.
        let base = CR_BYTES + INSTR_BYTES;
        img[base + 8..base + 16].copy_from_slice(&0xffff_u64.to_le_bytes());
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescParamOutOfRange), "{r}");

        let mut img2 = good_image();
        img2[base + 8..base + 16].copy_from_slice(&3u64.to_le_bytes());
        let r2 = verify_image(&img2);
        assert!(r2.has_code(ErrorCode::DescParamMisaligned), "{r2}");
    }

    #[test]
    fn unclosed_pass_at_end_flagged() {
        let mut img = good_image();
        // Drop the trailing LOOP_END by shrinking the count and the image.
        let count = u32::from_le_bytes(img[8..12].try_into().unwrap());
        img[8..12].copy_from_slice(&(count - 1).to_le_bytes());
        let ir_end = CR_BYTES + (count as usize - 1) * INSTR_BYTES;
        img.truncate(ir_end); // also drops the PR
        img[12..16].copy_from_slice(&(ir_end as u32).to_le_bytes());
        let r = verify_image(&img);
        assert!(r.has_code(ErrorCode::DescUnbalancedBlocks), "{r}");
    }
}
