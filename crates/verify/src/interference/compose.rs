//! Compositional per-tenant bounds over the interleaved request stream.
//!
//! The certified kernel here is [`mealib_memsim::bounds::trace_bounds`];
//! composition adds nothing to it at the *set* level — the merged trace
//! produced by [`interleave_tenants`] is an ordinary trace, and the
//! engine replays it identically with or without tenant tags, so the
//! set-level intervals are the kernel's own guarantee. What composition
//! has to derive fresh are the **per-tenant** intervals, and those must
//! stay sound under interference:
//!
//! * **bytes and bursts** — exact. The engine attributes each burst to
//!   the tenant whose request produced it, and the burst stream of a
//!   tenant's subsequence is a pure function of its own trace and the
//!   mapping; co-tenants cannot change it.
//! * **activations** — `[0, own bursts]`. A tenant's *isolated*
//!   activation count is **not** a sound lower bound under composition:
//!   a co-tenant can open the very row a tenant needs (the engine
//!   charges the activation to whoever triggered it), so a tenant's
//!   attributed count can drop below its isolated count. Zero is the
//!   only sound floor; one per own burst is the engine's ceiling.
//! * **completion (cycles/elapsed)** — the lower bound is bus
//!   occupancy, the one resource interference cannot give back. Every
//!   burst advances its unit's bus-free pointer by at least `t_burst`,
//!   so the tenant's last burst on unit `u` completes no earlier than
//!   `own_bursts[u] * t_burst`. The *interference-aware* refinement:
//!   the final burst of the tenant's last merged request is issued
//!   after every other burst of the merged prefix ending there, so on
//!   its unit it also waits for **all prefix bursts on that unit**,
//!   co-tenants included, plus the cold-start activation
//!   (`t_rcd + t_cl`) the prefix's first burst on that unit must pay.
//!   The upper bound is the set-level ceiling: no burst completes after
//!   the whole merged replay goes idle.
//! * **energy** — the engine prices a tenant at
//!   `trace_energy(own_acts, own_bytes, own_elapsed)` and
//!   `trace_energy` is monotone in all three arguments, so mapping the
//!   interval endpoints through it is sound.
//!
//! The `interference_soundness` differential harness replays every
//! corpus manifest and random mix through
//! [`mealib_memsim::simulate_tenants`] and asserts
//! `lo <= measured <= hi` per tenant on every one of these counters.
//!
//! [`interleave_tenants`]: mealib_memsim::interleave_tenants

use mealib_accel::power;
use mealib_memsim::bounds::{trace_bounds, TraceBounds};
use mealib_memsim::{interleave_tenants, MemoryConfig, TenantStream, TraceBuffer};
use mealib_types::{BytesPerSec, ConfigError, Interval, Seconds};

use super::manifest::SessionSet;
use crate::bounds::elaborate;
use crate::bounds::BoundsEnv;
use crate::dataflow::{Budgets, MemLayer};

/// Certified composed bounds for one tenant of a session set.
#[derive(Debug, Clone)]
pub struct TenantBounds {
    /// Tenant name from the manifest.
    pub name: String,
    /// Bytes read by the tenant's own requests (exact).
    pub bytes_read: Interval,
    /// Bytes written by the tenant's own requests (exact).
    pub bytes_written: Interval,
    /// READ bursts of the tenant's subsequence (exact).
    pub read_bursts: Interval,
    /// WRITE bursts of the tenant's subsequence (exact).
    pub write_bursts: Interval,
    /// Row activations attributed to the tenant.
    pub activations: Interval,
    /// Completion cycle of the tenant's last burst under composition.
    pub cycles: Interval,
    /// `cycles` in wall-clock seconds.
    pub elapsed: Interval,
    /// DRAM energy attributed to the tenant.
    pub energy: Interval,
    /// Modeled accelerator energy (Table-5 datapath floor to
    /// datapath + leakage over the set-level elapsed ceiling).
    pub accel_energy: Interval,
    /// The tenant session's own declared budgets.
    pub budgets: Budgets,
    /// Buffers in the tenant's session without a declared extent —
    /// their traffic is absent from every interval above.
    pub missing_extents: Vec<String>,
}

impl TenantBounds {
    /// Total own bursts (exact).
    pub fn total_bursts(&self) -> f64 {
        self.read_bursts.lo + self.write_bursts.lo
    }
}

/// Composed bounds for the whole session set.
#[derive(Debug, Clone)]
pub struct SetBounds {
    /// Name of the resolved shared memory configuration.
    pub config_name: String,
    /// Roofline of the shared layer.
    pub peak_bandwidth: BytesPerSec,
    /// Certified kernel bounds over the merged interleaved trace.
    pub set: TraceBounds,
    /// Per-tenant composed bounds, in manifest order.
    pub tenants: Vec<TenantBounds>,
    /// Set-level envelope from the manifest header.
    pub budgets: Budgets,
}

impl SetBounds {
    /// Lower bound on the composed modeled energy: the certified DRAM
    /// floor of the merged trace plus every tenant's accelerator
    /// datapath floor.
    pub fn energy_floor(&self) -> f64 {
        self.set.energy.lo + self.tenants.iter().map(|t| t.accel_energy.lo).sum::<f64>()
    }

    /// Upper bound on the composed modeled energy.
    pub fn energy_ceiling(&self) -> f64 {
        self.set.energy.hi + self.tenants.iter().map(|t| t.accel_energy.hi).sum::<f64>()
    }
}

/// The memory configuration the set's header `MEM` directive resolves
/// to under `env` (interleaved stack when absent). This is the exact
/// configuration the soundness harness replays against.
pub fn resolved_set_config(set: &SessionSet, env: &BoundsEnv) -> MemoryConfig {
    let layer = set
        .mem_layer
        .map(|(_, l)| l)
        .unwrap_or(MemLayer::Interleaved);
    crate::bounds::summary::resolve_layer(layer, &env.stack, &env.host)
}

/// Elaborates every tenant session into the [`TenantStream`]s the
/// interleaver and the engine consume — the shared ground-truth input
/// for both the static bounds and the differential harness.
pub fn tenant_streams(set: &SessionSet) -> Vec<TenantStream> {
    set.tenants
        .iter()
        .map(|t| TenantStream {
            trace: elaborate(&t.session).trace,
            arrival: t.arrival,
        })
        .collect()
}

/// Derives the composed set and per-tenant bounds for `set` under
/// `env`.
///
/// # Errors
///
/// Propagates a [`ConfigError`] if the resolved shared configuration
/// fails validation; unreachable with [`BoundsEnv`]'s presets.
pub fn compose(set: &SessionSet, env: &BoundsEnv) -> Result<SetBounds, ConfigError> {
    let cfg = resolved_set_config(set, env);
    let streams = tenant_streams(set);
    let (merged, tags) = interleave_tenants(&streams);
    let set_tb = trace_bounds(&cfg, &merged)?;
    let t_ck = cfg.timing.t_ck.get();
    let t_burst = cfg.timing.t_burst as f64;
    let cold = (cfg.timing.t_rcd + cfg.timing.t_cl) as f64;

    let mut tenants = Vec::with_capacity(set.tenants.len());
    for (i, decl) in set.tenants.iter().enumerate() {
        let e = elaborate(&decl.session);
        let own_tb = trace_bounds(&cfg, &streams[i].trace)?;
        let own_bursts = own_tb.read_bursts.lo + own_tb.write_bursts.lo;

        // Bus-occupancy floor from the tenant's own traffic: its last
        // burst on the busiest unit waits for all its own bursts there.
        let own_occ = own_tb.unit_bursts.iter().copied().max().unwrap_or(0) as f64 * t_burst;

        // Interference-aware refinement: the final burst of the
        // tenant's last merged request is issued after every burst of
        // the merged prefix ending at that request, so it serializes
        // behind every prefix burst on its own unit — and the first
        // burst on that unit pays the cold activation.
        let mut prefix_occ = 0.0f64;
        if let Some(pos) = tags.iter().rposition(|&t| t as usize == i) {
            let last = merged.get(pos).expect("tag position in bounds");
            let final_byte = last.addr.get() + last.bytes.saturating_sub(1);
            let u_final = cfg
                .mapping
                .decode(mealib_types::PhysAddr::new(final_byte))
                .unit;
            let prefix: TraceBuffer = merged.iter().take(pos + 1).collect();
            let prefix_tb = trace_bounds(&cfg, &prefix)?;
            prefix_occ = cold + prefix_tb.unit_bursts[u_final] as f64 * t_burst;
        }

        let cycles = if own_bursts == 0.0 {
            Interval::ZERO
        } else {
            Interval::new(own_occ.max(prefix_occ), set_tb.cycles.hi)
        };
        let elapsed = Interval::new(cycles.lo * t_ck, set_tb.elapsed.hi.min(cycles.hi * t_ck));
        let own_bytes = (own_tb.bytes_read.lo + own_tb.bytes_written.lo) as u64;
        let energy = if own_bursts == 0.0 {
            Interval::ZERO
        } else {
            Interval::new(
                cfg.energy
                    .trace_energy(0, own_bytes, Seconds::new(elapsed.lo))
                    .get(),
                cfg.energy
                    .trace_energy(own_bursts as u64, own_bytes, Seconds::new(elapsed.hi))
                    .get(),
            )
        };

        // Modeled accelerator energy, same Table-5 pricing as the
        // single-program summary: datapath floor, leakage of deployed
        // kinds for at most the set-level elapsed ceiling.
        let mut datapath_j = 0.0;
        let mut leakage_w = 0.0;
        let mut seen = std::collections::BTreeSet::new();
        for phase in &e.phases {
            for &accel in &phase.accels {
                let prof = power::profile(accel);
                datapath_j += prof.e_byte_datapath.get() * phase.bytes as f64;
                if seen.insert(accel) {
                    leakage_w += prof.p_leakage.get();
                }
            }
        }

        tenants.push(TenantBounds {
            name: decl.name.clone(),
            bytes_read: own_tb.bytes_read,
            bytes_written: own_tb.bytes_written,
            read_bursts: own_tb.read_bursts,
            write_bursts: own_tb.write_bursts,
            activations: Interval::new(0.0, own_bursts),
            cycles,
            elapsed,
            energy,
            accel_energy: Interval::new(datapath_j, datapath_j + leakage_w * set_tb.elapsed.hi),
            budgets: decl.session.budgets,
            missing_extents: e.missing_extents,
        });
    }

    Ok(SetBounds {
        config_name: cfg.name.clone(),
        peak_bandwidth: cfg.peak_bandwidth(),
        set: set_tb,
        tenants,
        budgets: set.budgets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::manifest::parse_session_set;
    use mealib_memsim::{simulate_tenants, SimOptions};

    fn two_tenant_set() -> SessionSet {
        parse_session_set(
            "BUDGET TIME 1.0\n\
             TENANT a\n\
             PARTITION 0x0 0x1000000\n\
             BUF in 0x1000 0x40000\n\
             BUF out 0x80000 0x40000\n\
             PASS in=in out=out {\n  COMP FFT params=\"f\"\n}\n\
             TENANT b\n\
             PARTITION 0x1000000 0x1000000\n\
             ARRIVAL 1\n\
             BUF p 0x1001000 0x40000\n\
             BUF q 0x1080000 0x40000\n\
             LOOP 2 {\n  PASS in=p out=q {\n    COMP AXPY params=\"x\"\n  }\n}\n",
        )
        .unwrap()
    }

    #[test]
    fn composed_bounds_contain_the_interleaved_measurement() {
        let set = two_tenant_set();
        let env = BoundsEnv::default();
        let bounds = compose(&set, &env).unwrap();
        let cfg = resolved_set_config(&set, &env);
        let run = simulate_tenants(&cfg, &tenant_streams(&set), &SimOptions::dual_check()).unwrap();
        assert!(bounds.set.check_contains(&run.stats).is_none());
        for (tb, m) in bounds.tenants.iter().zip(&run.tenants) {
            assert!(
                tb.bytes_read.is_exact() && tb.read_bursts.is_exact(),
                "{}",
                tb.name
            );
            assert!(
                tb.bytes_read.contains(m.bytes_read.get() as f64),
                "{}",
                tb.name
            );
            assert!(
                tb.bytes_written.contains(m.bytes_written.get() as f64),
                "{}",
                tb.name
            );
            assert!(tb.read_bursts.contains(m.read_bursts as f64), "{}", tb.name);
            assert!(
                tb.write_bursts.contains(m.write_bursts as f64),
                "{}",
                tb.name
            );
            assert!(tb.activations.contains(m.activations as f64), "{}", tb.name);
            assert!(tb.cycles.contains(m.cycles.get() as f64), "{}", tb.name);
            assert!(tb.elapsed.contains(m.elapsed.get()), "{}", tb.name);
            assert!(tb.energy.contains(m.energy.get()), "{}", tb.name);
        }
    }

    #[test]
    fn later_tenant_lower_bound_sees_interference() {
        // Tenant b arrives after a's burst of traffic; its composed
        // completion floor must exceed its isolated occupancy alone.
        let set = two_tenant_set();
        let bounds = compose(&set, &BoundsEnv::default()).unwrap();
        let a = &bounds.tenants[0];
        let b = &bounds.tenants[1];
        // b's floor includes prefix bursts from a on its final unit,
        // so it is strictly above b's own per-unit occupancy.
        let cfg = resolved_set_config(&set, &BoundsEnv::default());
        let own = trace_bounds(&cfg, &tenant_streams(&set)[1].trace).unwrap();
        let own_occ =
            own.unit_bursts.iter().copied().max().unwrap() as f64 * cfg.timing.t_burst as f64;
        assert!(b.cycles.lo > own_occ, "{} <= {own_occ}", b.cycles.lo);
        assert!(a.cycles.lo > 0.0);
    }

    #[test]
    fn empty_tenant_composes_to_zero() {
        let set = parse_session_set(
            "TENANT a\nBUF in 0x1000 0x10000\nBUF out 0x20000 0x10000\nPASS in=in out=out {\n  \
             COMP FFT params=\"f\"\n}\nTENANT idle\n",
        )
        .unwrap();
        let bounds = compose(&set, &BoundsEnv::default()).unwrap();
        let idle = &bounds.tenants[1];
        assert_eq!(idle.cycles, Interval::ZERO);
        assert_eq!(idle.energy, Interval::ZERO);
        assert_eq!(idle.total_bursts(), 0.0);
    }
}
