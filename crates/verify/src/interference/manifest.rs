//! Session-set manifests: N tenant sessions sharing one device.
//!
//! A *session set* layers three directives over the PR-6 session
//! format to describe a multi-tenant deployment in one file:
//!
//! ```text
//! MEM INTERLEAVED            # optional set-level memory layer (header)
//! BUDGET TIME 1.0            # optional set-level wall-time envelope
//! BUDGET ENERGY 10.0         # optional set-level energy envelope
//!
//! TENANT dsp                 # starts tenant `dsp`'s section
//! PARTITION 0x1000 0x800000  # the tenant's physical vault partition
//! ARRIVAL 0                  # request-slot arrival offset (default 0)
//! BUF a 0x1000 0x10000       # ... ordinary session body follows ...
//! PASS in=a out=b { ... }
//!
//! TENANT radar               # next tenant, and so on
//! ...
//! ```
//!
//! Everything before the first `TENANT` line is the **header**: only
//! `MEM` and `BUDGET` directives (and blank lines) are legal there —
//! the header's budgets are the *aggregate* envelope the whole set is
//! judged against, and its `MEM` directive selects the one layer every
//! tenant shares. Each tenant section is re-parsed with
//! [`parse_session`] after the set-level directives are blanked, with
//! enough blank padding that every span in the parsed session refers
//! to the original manifest line — diagnostics point at the file the
//! user wrote.
//!
//! [`parse_session`]: crate::dataflow::parse_session

use mealib_tdl::ParseError;
use mealib_types::{AddrRange, Bytes, PhysAddr};

use crate::dataflow::{Budgets, MemLayer, Session};

/// One tenant's slice of the manifest.
#[derive(Debug, Clone)]
pub struct TenantDecl {
    /// Tenant name from the `TENANT` directive.
    pub name: String,
    /// 1-based manifest line of the `TENANT` directive.
    pub line: usize,
    /// Declared vault partition, with its directive line.
    pub partition: Option<(usize, AddrRange)>,
    /// Request-slot arrival offset (`ARRIVAL`, default 0).
    pub arrival: u64,
    /// The tenant's session body, spans relative to the manifest.
    pub session: Session,
}

/// A parsed session-set manifest.
#[derive(Debug, Clone)]
pub struct SessionSet {
    /// Tenants in manifest order.
    pub tenants: Vec<TenantDecl>,
    /// Set-level envelope from header `BUDGET` directives.
    pub budgets: Budgets,
    /// Shared memory layer from a header `MEM` directive.
    pub mem_layer: Option<(usize, MemLayer)>,
}

/// `true` when `text` looks like a session-set manifest (any line
/// starting with a `TENANT` directive). Plain sessions and TDL never
/// contain one, so this is the sniff `mealint` routes on.
pub fn looks_like_session_set(text: &str) -> bool {
    text.lines()
        .any(|l| l.split_whitespace().next() == Some("TENANT"))
}

fn directive_err(expected: &str, found: &str, line: usize) -> ParseError {
    ParseError::Unexpected {
        expected: expected.to_string(),
        found: found.to_string(),
        line,
    }
}

fn parse_number(tok: &str, line: usize) -> Result<u64, ParseError> {
    let parsed = match tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => tok.parse(),
    };
    parsed.map_err(|_| directive_err("a decimal or 0x-prefixed number", tok, line))
}

/// One tenant section before its body is handed to `parse_session`.
struct RawTenant {
    name: String,
    line: usize,
    partition: Option<(usize, AddrRange)>,
    arrival: Option<(usize, u64)>,
    /// Body text, blank-padded so line `n` of the manifest is line `n`
    /// of the body.
    body: String,
}

/// Parses a session-set manifest.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed set directives (`TENANT`
/// without a name, duplicate names, `PARTITION`/`ARRIVAL` outside a
/// tenant section or repeated within one, TDL before the first
/// `TENANT`, a tenant-level `MEM` directive) and for any parse error
/// inside a tenant's session body.
pub fn parse_session_set(src: &str) -> Result<SessionSet, ParseError> {
    let mut header = String::new();
    let mut tenants: Vec<RawTenant> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let toks: Vec<&str> = raw.split_whitespace().collect();
        match toks.as_slice() {
            ["TENANT", name] => {
                if tenants.iter().any(|t| t.name == *name) {
                    return Err(directive_err("a unique tenant name", raw, line));
                }
                tenants.push(RawTenant {
                    name: (*name).to_string(),
                    line,
                    partition: None,
                    arrival: None,
                    body: "\n".repeat(line),
                });
            }
            ["TENANT", ..] => return Err(directive_err("TENANT <name>", raw, line)),
            ["PARTITION", base, len] => {
                let Some(t) = tenants.last_mut() else {
                    return Err(directive_err("PARTITION after a TENANT line", raw, line));
                };
                if t.partition.is_some() {
                    return Err(directive_err("at most one PARTITION per tenant", raw, line));
                }
                let base = parse_number(base, line)?;
                let len = parse_number(len, line)?;
                if len == 0 {
                    return Err(directive_err("a non-empty partition", raw, line));
                }
                t.partition = Some((line, AddrRange::new(PhysAddr::new(base), Bytes::new(len))));
                t.body.push('\n');
            }
            ["PARTITION", ..] => {
                return Err(directive_err("PARTITION <base> <len>", raw, line));
            }
            ["ARRIVAL", off] => {
                let Some(t) = tenants.last_mut() else {
                    return Err(directive_err("ARRIVAL after a TENANT line", raw, line));
                };
                if t.arrival.is_some() {
                    return Err(directive_err("at most one ARRIVAL per tenant", raw, line));
                }
                t.arrival = Some((line, parse_number(off, line)?));
                t.body.push('\n');
            }
            ["ARRIVAL", ..] => return Err(directive_err("ARRIVAL <offset>", raw, line)),
            _ => match tenants.last_mut() {
                Some(t) => {
                    t.body.push_str(raw);
                    t.body.push('\n');
                }
                None => {
                    header.push_str(raw);
                    header.push('\n');
                }
            },
        }
    }
    if tenants.is_empty() {
        return Err(directive_err(
            "at least one TENANT section",
            "end of file",
            1,
        ));
    }

    // The header is itself a (program-free) session: that reuses the
    // existing BUDGET/MEM grammar and rejects anything else up front.
    let header_session = crate::dataflow::parse_session(&header)?;
    if !header_session.program.items.is_empty()
        || !header_session.host_ops.is_empty()
        || !header_session.extents.is_empty()
    {
        return Err(directive_err(
            "only MEM/BUDGET directives before the first TENANT",
            "TDL or session directives in the manifest header",
            1,
        ));
    }

    let mut out = SessionSet {
        tenants: Vec::with_capacity(tenants.len()),
        budgets: header_session.budgets,
        mem_layer: header_session.mem_layer,
    };
    for raw in tenants {
        let session = crate::dataflow::parse_session(&raw.body)?;
        if let Some((line, _)) = session.mem_layer {
            return Err(directive_err(
                "MEM in the manifest header (the layer is shared)",
                "a tenant-level MEM directive",
                line,
            ));
        }
        out.tenants.push(TenantDecl {
            name: raw.name,
            line: raw.line,
            partition: raw.partition,
            arrival: raw.arrival.map_or(0, |(_, a)| a),
            session,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_TENANTS: &str = "\
BUDGET TIME 1.0
BUDGET ENERGY 10.0

TENANT dsp
PARTITION 0x0 0x1000000
ARRIVAL 0
BUF a 0x1000 0x10000
BUF b 0x20000 0x10000
PASS in=a out=b {
  COMP FFT params=\"f\"
}

TENANT radar
PARTITION 0x1000000 0x1000000
ARRIVAL 64
BUF x 0x1001000 0x10000
BUF y 0x1020000 0x10000
PASS in=x out=y {
  COMP AXPY params=\"a\"
}
";

    #[test]
    fn manifest_parses_with_manifest_relative_spans() {
        let set = parse_session_set(TWO_TENANTS).unwrap();
        assert_eq!(set.budgets.time_s, Some(1.0));
        assert_eq!(set.budgets.energy_j, Some(10.0));
        assert_eq!(set.tenants.len(), 2);
        let dsp = &set.tenants[0];
        assert_eq!(dsp.name, "dsp");
        assert_eq!(dsp.line, 4);
        assert_eq!(dsp.arrival, 0);
        let (pline, part) = dsp.partition.unwrap();
        assert_eq!(pline, 5);
        assert_eq!(part.len().get(), 0x100_0000);
        let radar = &set.tenants[1];
        assert_eq!(radar.arrival, 64);
        // Spans survive the slicing: radar's PASS header sits on the
        // manifest line it was written on.
        match &radar.session.lines.items[0] {
            mealib_tdl::ItemLines::Pass(p) => assert_eq!(p.header, 18),
            other => panic!("expected pass lines, got {other:?}"),
        }
    }

    #[test]
    fn sniffer_spots_manifests_only() {
        assert!(looks_like_session_set(TWO_TENANTS));
        assert!(looks_like_session_set("x\nTENANT t\n"));
        assert!(!looks_like_session_set(
            "BUF a 0 16\nPASS in=a out=a {\n}\n"
        ));
        assert!(!looks_like_session_set("# TENANTs are described here\n"));
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        for bad in [
            "PASS in=a out=b {\n  COMP FFT params=\"f\"\n}\n", // no TENANT
            "TENANT\nPASS in=a out=b {\n  COMP FFT params=\"f\"\n}\n",
            "TENANT a b\n",
            "PARTITION 0 16\nTENANT t\n", // before TENANT
            "ARRIVAL 5\nTENANT t\n",
            "TENANT t\nPARTITION 0 0\n", // empty partition
            "TENANT t\nPARTITION 0 16\nPARTITION 16 16\n", // duplicate
            "TENANT t\nARRIVAL 1\nARRIVAL 2\n",
            "TENANT t\nARRIVAL lots\n",
            "TENANT t\nTENANT t\n",   // duplicate name
            "TENANT t\nMEM XOR\n",    // tenant-level MEM
            "BUF a 0 16\nTENANT t\n", // session dir in header
            "TENANT t\nPASS in=a out=b {\n  COMP WAT params=\"x\"\n}\n", // TDL error
        ] {
            assert!(parse_session_set(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn header_mem_layer_is_shared() {
        let src = "MEM XOR\nTENANT t\nBUF a 0x1000 0x100\nBUF b 0x2000 0x100\nPASS in=a out=b \
                   {\n  COMP FFT params=\"f\"\n}\n";
        let set = parse_session_set(src).unwrap();
        assert_eq!(set.mem_layer.map(|(_, l)| l), Some(MemLayer::Xor));
        assert!(set.tenants[0].session.mem_layer.is_none());
    }
}
