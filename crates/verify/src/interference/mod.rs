//! Multi-tenant interference certification: the MEA3xx pass family.
//!
//! A session-set manifest ([`manifest`]) declares N tenant sessions
//! sharing one memory layer, each with a vault partition, an arrival
//! phase, and optional per-tenant budgets, under an optional set-level
//! time/energy envelope. This module composes the per-program PR-6
//! interval summaries into **multi-tenant bounds** ([`compose`]) and
//! judges them ([`passes`]), ending in a three-valued admission
//! verdict:
//!
//! * [`Verdict::Reject`] — at least one MEA3xx violation is *proved*:
//!   partitions overlap or leak (MEA300), the summed demand
//!   oversubscribes the shared bus against the set envelope (MEA301),
//!   interference breaks a tenant's latency budget (MEA302), or the
//!   composed energy floor exceeds an envelope (MEA303). Every REJECT
//!   is backed by a lower bound, so the interleaved cycle engine must
//!   *confirm* it — the soundness harness checks exactly that.
//! * [`Verdict::Admit`] — the opposite is proved: partitions are
//!   declared, disjoint, and contain every buffer; every tenant's
//!   traffic is fully priced; and every declared budget is met by the
//!   corresponding certified **upper** bound. No measurable budget
//!   violation is possible for an admitted set.
//! * [`Verdict::Unknown`] — neither: something is undeclared or the
//!   interval is too wide to decide. The certifier never guesses.
//!
//! Ground truth is [`mealib_memsim::simulate_tenants`]: the
//! deterministic interleaver merges the tenants' traces by arrival
//! offset, the tagged engine attributes bytes, bursts, activations,
//! completion, and energy per tenant, and the
//! `interference_soundness` differential harness asserts
//! `static lower <= measured <= static upper` per tenant on every
//! corpus manifest and random mix — and that no ADMIT-ed set
//! measurably violates a budget.

pub mod compose;
pub mod manifest;
mod passes;

pub use compose::{compose, resolved_set_config, tenant_streams, SetBounds, TenantBounds};
pub use manifest::{looks_like_session_set, parse_session_set, SessionSet, TenantDecl};

use mealib_types::{ConfigError, Report};

use crate::bounds::BoundsEnv;

/// The admission-control verdict for a session set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proved safe: isolated partitions, fully priced traffic, every
    /// declared budget met by the certified upper bound.
    Admit,
    /// Proved unsafe: at least one MEA3xx violation (each backed by a
    /// lower bound the simulation confirms).
    Reject,
    /// Neither provable — undeclared partitions/extents or intervals
    /// too wide to decide.
    Unknown,
}

impl Verdict {
    /// Stable lowercase label (`admit`/`reject`/`unknown`) for JSON
    /// and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Admit => "admit",
            Verdict::Reject => "reject",
            Verdict::Unknown => "unknown",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Admit => "ADMIT",
            Verdict::Reject => "REJECT",
            Verdict::Unknown => "UNKNOWN",
        })
    }
}

/// A certified session set: the composed bounds, the MEA3xx findings,
/// and the admission verdict they imply.
#[derive(Debug, Clone)]
pub struct Certification {
    /// The admission-control verdict.
    pub verdict: Verdict,
    /// MEA3xx findings (empty for ADMIT and UNKNOWN).
    pub report: Report,
    /// The composed set and per-tenant bounds behind the verdict.
    pub bounds: SetBounds,
}

impl Certification {
    /// The distinct MEA3xx codes the certifier *proved* (first-seen
    /// order, deduplicated) — empty for ADMIT and UNKNOWN. Admission
    /// controllers attach these to every rejection so a shed session
    /// always names the violation the certificate established.
    pub fn codes(&self) -> Vec<mealib_types::ErrorCode> {
        let mut out = Vec::new();
        for d in self.report.diagnostics() {
            if !out.contains(&d.code) {
                out.push(d.code);
            }
        }
        out
    }
}

/// Runs the MEA3xx passes over `set` and derives the admission
/// verdict.
///
/// # Errors
///
/// Propagates a [`ConfigError`] if the shared memory configuration
/// fails validation; unreachable with [`BoundsEnv`]'s presets.
pub fn certify_set(set: &SessionSet, env: &BoundsEnv) -> Result<Certification, ConfigError> {
    let bounds = compose(set, env)?;
    let mut report = Report::new();
    passes::check_partitions(set, &mut report);
    passes::check_bus(&bounds, &mut report);
    passes::check_latency(set, &bounds, &mut report);
    passes::check_energy_envelope(set, &bounds, &mut report);

    let verdict = if !report.is_clean() {
        Verdict::Reject
    } else if proves_admissible(set, &bounds) {
        Verdict::Admit
    } else {
        Verdict::Unknown
    };
    Ok(Certification {
        verdict,
        report,
        bounds,
    })
}

/// `true` when the *upper* bounds prove the set safe: every tenant has
/// a declared partition (the passes already proved them disjoint and
/// leak-free if we got here clean), every tenant's traffic is fully
/// priced, and every declared budget is met by the certified ceiling.
fn proves_admissible(set: &SessionSet, bounds: &SetBounds) -> bool {
    let isolated = set.tenants.iter().all(|t| t.partition.is_some());
    let complete = bounds.tenants.iter().all(|t| t.missing_extents.is_empty());
    if !isolated || !complete {
        return false;
    }
    if let Some(time_s) = bounds.budgets.time_s {
        if bounds.set.elapsed.hi > time_s {
            return false;
        }
    }
    if let Some(envelope_j) = bounds.budgets.energy_j {
        if bounds.energy_ceiling() > envelope_j {
            return false;
        }
    }
    bounds.tenants.iter().all(|t| {
        t.budgets.time_s.is_none_or(|b| t.elapsed.hi <= b)
            && t.budgets
                .energy_j
                .is_none_or(|b| t.energy.hi + t.accel_energy.hi <= b)
    })
}

/// Parses `src` as a session-set manifest and certifies it; parse
/// errors yield an empty report (the caller surfaces those as usage
/// failures, matching [`crate::bounds::verify_source_bounds`]).
pub fn verify_source_set(src: &str) -> Report {
    match parse_session_set(src) {
        Ok(set) => match certify_set(&set, &BoundsEnv::default()) {
            Ok(cert) => cert.report,
            Err(_) => Report::new(),
        },
        Err(_) => Report::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_types::ErrorCode;

    fn certify(src: &str) -> Certification {
        let set = parse_session_set(src).unwrap();
        certify_set(&set, &BoundsEnv::default()).unwrap()
    }

    const CLEAN: &str = "\
BUDGET TIME 10.0
BUDGET ENERGY 100.0
TENANT a
PARTITION 0x0 0x1000000
BUF in 0x1000 0x40000
BUF out 0x80000 0x40000
PASS in=in out=out {
  COMP FFT params=\"f\"
}
TENANT b
PARTITION 0x1000000 0x1000000
ARRIVAL 2
BUF p 0x1001000 0x40000
BUF q 0x1080000 0x40000
PASS in=p out=q {
  COMP AXPY params=\"x\"
}
";

    #[test]
    fn disjoint_budgeted_set_admits() {
        let cert = certify(CLEAN);
        assert!(cert.report.is_clean(), "{}", cert.report.render());
        assert_eq!(cert.verdict, Verdict::Admit);
    }

    #[test]
    fn overlapping_partitions_reject_with_mea300() {
        let src = CLEAN.replace(
            "PARTITION 0x1000000 0x1000000",
            "PARTITION 0x800000 0x1000000",
        );
        let src = src
            .replace("BUF p 0x1001000", "BUF p 0x801000")
            .replace("BUF q 0x1080000", "BUF q 0x880000");
        let cert = certify(&src);
        assert_eq!(cert.verdict, Verdict::Reject);
        assert!(cert.report.has_code(ErrorCode::InterferePartitionOverlap));
    }

    #[test]
    fn buffer_leak_rejects_with_mea300() {
        let src = CLEAN.replace("BUF q 0x1080000", "BUF q 0x80000");
        let cert = certify(&src);
        assert_eq!(cert.verdict, Verdict::Reject);
        assert!(cert.report.has_code(ErrorCode::InterferePartitionOverlap));
    }

    #[test]
    fn impossible_set_envelope_rejects_with_mea301() {
        let cert = certify(&CLEAN.replace("BUDGET TIME 10.0", "BUDGET TIME 1e-9"));
        assert_eq!(cert.verdict, Verdict::Reject);
        assert!(cert.report.has_code(ErrorCode::InterfereBusOversubscribed));
    }

    #[test]
    fn impossible_tenant_latency_rejects_with_mea302() {
        let cert = certify(&CLEAN.replace(
            "PARTITION 0x1000000 0x1000000\n",
            "PARTITION 0x1000000 0x1000000\nBUDGET TIME 1e-9\n",
        ));
        assert_eq!(cert.verdict, Verdict::Reject);
        assert!(cert.report.has_code(ErrorCode::InterfereLatencyBudget));
    }

    #[test]
    fn impossible_energy_envelope_rejects_with_mea303() {
        let cert = certify(&CLEAN.replace("BUDGET ENERGY 100.0", "BUDGET ENERGY 1e-9"));
        assert_eq!(cert.verdict, Verdict::Reject);
        assert!(cert.report.has_code(ErrorCode::InterfereEnergyEnvelope));
    }

    #[test]
    fn missing_partition_is_unknown_not_admit() {
        let src = CLEAN.replace("PARTITION 0x1000000 0x1000000\n", "");
        let cert = certify(&src);
        assert!(cert.report.is_clean());
        assert_eq!(cert.verdict, Verdict::Unknown);
    }

    #[test]
    fn missing_extent_is_unknown_not_admit() {
        let src = CLEAN.replace("BUF q 0x1080000 0x40000\n", "");
        let cert = certify(&src);
        assert!(cert.report.is_clean());
        assert_eq!(cert.verdict, Verdict::Unknown);
    }

    #[test]
    fn tight_but_unprovable_budget_is_unknown() {
        // A set envelope between the certified lower and upper bounds:
        // neither a violation proof nor an admission proof exists.
        let set = parse_session_set(CLEAN).unwrap();
        let bounds = compose(&set, &BoundsEnv::default()).unwrap();
        let mid = (bounds.set.elapsed.lo + bounds.set.elapsed.hi) / 2.0;
        assert!(bounds.set.elapsed.lo < mid && mid < bounds.set.elapsed.hi);
        let cert = certify(&CLEAN.replace("BUDGET TIME 10.0", &format!("BUDGET TIME {mid:e}")));
        assert_eq!(cert.verdict, Verdict::Unknown);
    }

    #[test]
    fn rejection_codes_are_deduplicated_and_proved() {
        let cert = certify(CLEAN);
        assert!(cert.codes().is_empty(), "clean admit carries no codes");
        let src = CLEAN.replace("BUDGET TIME 10.0", "BUDGET TIME 1e-9");
        let cert = certify(&src);
        let codes = cert.codes();
        assert!(codes.contains(&ErrorCode::InterfereBusOversubscribed));
        let mut dedup = codes.clone();
        dedup.dedup();
        assert_eq!(codes, dedup);
        for code in codes {
            assert!(cert.report.has_code(code));
        }
    }

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(Verdict::Admit.label(), "admit");
        assert_eq!(format!("{}", Verdict::Reject), "REJECT");
        assert_eq!(Verdict::Unknown.label(), "unknown");
    }
}
