//! The MEA3xx diagnostic passes over a composed session set.
//!
//! Same contract as the MEA2xx family: every diagnostic is a **proof
//! of violation** — it fires only when a certified lower bound already
//! exceeds a declared budget, or when a declared-partition relation is
//! decidably broken. Absent partitions and absent budgets disable the
//! corresponding checks; the admission verdict (not a diagnostic)
//! distinguishes "proved clean" from "could not prove".
//!
//! | code   | meaning |
//! |--------|---------|
//! | MEA300 | tenant partitions overlap, or a buffer leaks outside its tenant's partition |
//! | MEA301 | summed demand oversubscribes the shared bus against the set-level time envelope |
//! | MEA302 | composed completion floor breaks a tenant's latency budget |
//! | MEA303 | composed energy floor exceeds the aggregate (or a tenant's) energy envelope |

use mealib_types::{Diagnostic, ErrorCode, Report};

use super::compose::SetBounds;
use super::manifest::SessionSet;

/// MEA300: declared partitions must be pairwise disjoint and must
/// contain every declared buffer extent of their tenant. Both
/// relations are decidable from the manifest alone, so each finding is
/// a certain isolation violation, not a heuristic.
pub(super) fn check_partitions(set: &SessionSet, report: &mut Report) {
    for (i, a) in set.tenants.iter().enumerate() {
        let Some((_, pa)) = a.partition else { continue };
        for b in set.tenants.iter().skip(i + 1) {
            let Some((line_b, pb)) = b.partition else {
                continue;
            };
            if pa.overlaps(&pb) {
                report.push(
                    Diagnostic::error(
                        ErrorCode::InterferePartitionOverlap,
                        format!(
                            "tenant {}'s partition {pb} overlaps tenant {}'s partition {pa}",
                            b.name, a.name,
                        ),
                    )
                    .at_line(line_b),
                );
            }
        }
        for (buf, ext) in &a.session.extents {
            if !ext.is_empty() && !pa.contains_range(ext) {
                report.push(
                    Diagnostic::error(
                        ErrorCode::InterferePartitionOverlap,
                        format!(
                            "tenant {}'s buffer `{buf}` {ext} leaks outside its partition {pa}",
                            a.name,
                        ),
                    )
                    .at_line(a.partition.map_or(a.line, |(l, _)| l)),
                );
            }
        }
    }
}

/// MEA301: the set's summed demand cannot fit the shared bus inside
/// the aggregate time envelope. Fires only under a header
/// `BUDGET TIME`: the certified lower bound on the merged replay —
/// bus occupancy of the interleaved trace, or aggregate bytes over the
/// layer roofline, whichever is larger — already exceeds the envelope,
/// so no schedule of these tenants on this layer can meet it.
pub(super) fn check_bus(bounds: &SetBounds, report: &mut Report) {
    let Some(time_s) = bounds.budgets.time_s else {
        return;
    };
    let bytes_lo = bounds.set.bytes_read.lo + bounds.set.bytes_written.lo;
    let t_min = bounds
        .set
        .elapsed
        .lo
        .max(bytes_lo / bounds.peak_bandwidth.get());
    if t_min > time_s {
        report.push(Diagnostic::error(
            ErrorCode::InterfereBusOversubscribed,
            format!(
                "{} tenants need at least {t_min:.3e} s of {} bus time but the set envelope is \
                 {time_s:.3e} s (summed demand {:.1} GB/s vs {:.1} GB/s roofline)",
                bounds.tenants.len(),
                bounds.config_name,
                bytes_lo / time_s * 1e-9,
                bounds.peak_bandwidth.as_gb_per_sec(),
            ),
        ));
    }
}

/// MEA302: a tenant's composed completion floor — its own bus
/// occupancy plus the interference of every co-tenant burst sequenced
/// before its last request on that unit — already exceeds the
/// tenant's own `BUDGET TIME`.
pub(super) fn check_latency(set: &SessionSet, bounds: &SetBounds, report: &mut Report) {
    for (decl, tb) in set.tenants.iter().zip(&bounds.tenants) {
        let Some(time_s) = tb.budgets.time_s else {
            continue;
        };
        if tb.elapsed.lo > time_s {
            report.push(
                Diagnostic::error(
                    ErrorCode::InterfereLatencyBudget,
                    format!(
                        "tenant {}'s last request cannot complete before {:.3e} s under this mix \
                         (co-tenant interference included) but its latency budget is {time_s:.3e} s",
                        tb.name, tb.elapsed.lo,
                    ),
                )
                .at_line(decl.line),
            );
        }
    }
}

/// MEA303: the composed energy floor — certified DRAM floor of the
/// merged trace plus every tenant's Table-5 datapath floor — exceeds
/// the aggregate envelope; or one tenant's attributed floor exceeds
/// its own `BUDGET ENERGY`.
pub(super) fn check_energy_envelope(set: &SessionSet, bounds: &SetBounds, report: &mut Report) {
    if let Some(envelope_j) = bounds.budgets.energy_j {
        let floor_j = bounds.energy_floor();
        if floor_j > envelope_j {
            report.push(Diagnostic::error(
                ErrorCode::InterfereEnergyEnvelope,
                format!(
                    "composed energy floor {floor_j:.3e} J (DRAM {:.3e} J + accelerator \
                     {:.3e} J across {} tenants) exceeds the aggregate envelope {envelope_j:.3e} J",
                    bounds.set.energy.lo,
                    floor_j - bounds.set.energy.lo,
                    bounds.tenants.len(),
                ),
            ));
        }
    }
    for (decl, tb) in set.tenants.iter().zip(&bounds.tenants) {
        let Some(budget_j) = tb.budgets.energy_j else {
            continue;
        };
        let floor_j = tb.energy.lo + tb.accel_energy.lo;
        if floor_j > budget_j {
            report.push(
                Diagnostic::error(
                    ErrorCode::InterfereEnergyEnvelope,
                    format!(
                        "tenant {}'s attributed energy floor {floor_j:.3e} J exceeds its declared \
                         budget {budget_j:.3e} J",
                        tb.name,
                    ),
                )
                .at_line(decl.line),
            );
        }
    }
}
