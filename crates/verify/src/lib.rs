//! Cross-layer static verifier for the MEALib stack (`mealint`).
//!
//! The paper's toolchain hands artifacts across four trust boundaries:
//! the compiler emits **TDL text**, the runtime encodes it into a binary
//! **accelerator descriptor**, the descriptor is placed into **physical
//! memory** the accelerators address directly (no MMU, §3.3), and every
//! experiment prices traffic through a **memory-simulator
//! configuration**. A defect at any boundary used to surface as a panic
//! deep inside the consumer. This crate verifies each artifact *before*
//! it crosses its boundary, reporting findings through the shared
//! [`mealib_types::diag`] vocabulary with stable `MEA0xx` codes.
//!
//! Four passes:
//!
//! * [`tdl`] — TDL semantic checks beyond parsing (`MEA001`–`MEA009`):
//!   chain legality per §2.3, aliasing hazards, dangling `params=`
//!   references, trip-count sanity;
//! * [`descriptor`] — binary descriptor image checks
//!   (`MEA010`–`MEA019`): control-region decode, region layout and
//!   alignment, opcode and nesting legality, parameter-region bounds;
//! * [`memsim`] — simulator configuration checks (`MEA020`–`MEA029`):
//!   DRAM timing inequalities and an exhaustive bijectivity proof of the
//!   address-interleaving map (every physical byte lands on exactly one
//!   device location), including the asymmetric mode of §4.2;
//! * [`physmem`] — physical-memory checks (`MEA030`–`MEA039`) over a
//!   [`MemSnapshot`] of the driver's allocator and mapping state;
//! * [`dataflow`] — buffer-level dataflow & coherence analysis
//!   (`MEA100`–`MEA109`): uninitialized/dead buffers, alias/overlap
//!   conflicts, stale reads across the host↔accelerator cache boundary,
//!   and chain-capacity/progress violations.  The runtime's `Sanitizer`
//!   replays the same state machine dynamically so static and dynamic
//!   verdicts can be cross-validated;
//! * [`bounds`] — symbolic cost & capacity certification
//!   (`MEA200`–`MEA219`): interval bounds on bytes moved, DRAM
//!   commands, peak footprint, and modeled energy, proven sound against
//!   the cycle engine by a differential test harness, with diagnostics
//!   for capacity overflow, bandwidth-infeasible programs, degenerate
//!   vault skew, and energy-budget violations;
//! * [`interference`] — multi-tenant interference certification
//!   (`MEA300`–`MEA319`): session-set manifests (`TENANT`/`PARTITION`/
//!   `ARRIVAL` over the session format) are composed into per-tenant
//!   bandwidth/latency/energy bounds and an ADMIT/REJECT/UNKNOWN
//!   admission verdict, proven sound against the tagged interleaved
//!   cycle engine ([`mealib_memsim::simulate_tenants`]).
//!
//! The `mealint` binary runs the right pass over files given on the
//! command line. The runtime and the experiment harness run the same
//! passes by default (with an escape hatch) before encoding descriptors
//! or launching simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod dataflow;
pub mod descriptor;
pub mod interference;
pub mod memconfig;
pub mod memsim;
pub mod physmem;
pub mod tdl;

pub use bounds::{BoundsEnv, ResourceSummary};
pub use dataflow::{
    fusion_legal, AliasOracle, Budgets, CoherenceMachine, DataflowEnv, DataflowLimits, FusionStage,
    MemLayer, Session,
};
pub use interference::{Certification, SessionSet, Verdict};
pub use mealib_types::{Diagnostic, ErrorCode, Report, Severity, Span};
pub use physmem::{MemSnapshot, StackSnapshot};
pub use tdl::TdlLimits;

/// Renders the full `MEA0xx` error-code table (the `mealint --codes`
/// listing; also embedded in DESIGN.md).
pub fn error_code_table() -> String {
    let mut out = String::new();
    for code in ErrorCode::ALL {
        out.push_str(&format!("{}  {}\n", code.as_str(), code.title()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_table_lists_every_code_once() {
        let table = error_code_table();
        for code in ErrorCode::ALL {
            assert_eq!(table.matches(code.as_str()).count(), 1, "{code}");
        }
    }
}
