//! Text format for memory-simulator configurations.
//!
//! `mealint` lints configuration *files*, so it needs a concrete
//! on-disk syntax for [`MemoryConfig`]: one `key = value` pair per
//! line, `#` comments, starting from a named preset (`base = …`) and
//! overriding individual parameters. Example:
//!
//! ```text
//! # the dual-channel Haswell baseline, overclocked rows
//! base = ddr_dual_channel
//! t_ras = 20
//! mapping = xor
//! ```
//!
//! Parsing is deliberately strict — an unknown key or a malformed value
//! is an error, because a silently ignored override would make every
//! downstream diagnostic a lie.

use mealib_memsim::address::AddressMapping;
use mealib_memsim::config::MemoryConfig;
use mealib_types::{Hertz, PhysAddr};

/// Keys the format understands, for error messages and docs.
pub const KNOWN_KEYS: &[&str] = &[
    "base",
    "name",
    "t_ck_mhz",
    "t_rcd",
    "t_cl",
    "t_rp",
    "t_ras",
    "t_burst",
    "burst_bytes",
    "t_wr",
    "t_faw",
    "t_refi",
    "t_rfc",
    "mapping",
    "units",
    "low_units",
    "banks_per_unit",
    "row_bytes",
    "line_bytes",
    "split",
];

fn preset(name: &str) -> Option<MemoryConfig> {
    Some(match name {
        "hmc_stack" => MemoryConfig::hmc_stack(),
        "hmc_stack_external" => MemoryConfig::hmc_stack_external(),
        "hmc_stack_gen1" => MemoryConfig::hmc_stack_gen1(),
        "hmc_stack_remote" => MemoryConfig::hmc_stack_remote(),
        "ddr_dual_channel" => MemoryConfig::ddr_dual_channel(),
        "msas_dram" => MemoryConfig::msas_dram(),
        _ => return None,
    })
}

/// Returns `true` if `text` looks like a memconfig file (its first
/// significant line is a `key = value` pair with a known key) — used by
/// `mealint` to sniff file kinds.
pub fn looks_like_memconfig(text: &str) -> bool {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.split_once('='))
        .is_some_and(|(k, _)| KNOWN_KEYS.contains(&k.trim()))
}

/// Parses the `key = value` format into a [`MemoryConfig`].
///
/// # Errors
///
/// Returns a message naming the offending line for unknown keys,
/// unparseable values, or unknown presets / mapping kinds.
pub fn parse_memconfig(text: &str) -> Result<MemoryConfig, String> {
    let mut config = MemoryConfig::ddr_dual_channel();
    // Mapping overrides are collected and applied at the end so the
    // kind and its parameters can arrive in any order.
    let mut mapping_kind: Option<String> = None;
    let mut units: Option<usize> = None;
    let mut banks: Option<usize> = None;
    let mut row_bytes: Option<u64> = None;
    let mut line_bytes: Option<u64> = None;
    let mut split: Option<u64> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{line}`", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let bad = |what: &str| format!("line {}: {what} `{value}` for key `{key}`", lineno + 1);
        let int = |value: &str| {
            value
                .replace('_', "")
                .parse::<u64>()
                .map_err(|_| bad("bad integer"))
        };
        match key {
            "base" => {
                config = preset(value).ok_or_else(|| bad("unknown preset"))?;
            }
            "name" => config.name = value.to_string(),
            "t_ck_mhz" => {
                let mhz: f64 = value.parse().map_err(|_| bad("bad number"))?;
                if mhz.is_nan() || mhz <= 0.0 {
                    return Err(bad("non-positive clock"));
                }
                config.timing.t_ck = Hertz::from_mhz(mhz).period();
            }
            "t_rcd" => config.timing.t_rcd = int(value)?,
            "t_cl" => config.timing.t_cl = int(value)?,
            "t_rp" => config.timing.t_rp = int(value)?,
            "t_ras" => config.timing.t_ras = int(value)?,
            "t_burst" => config.timing.t_burst = int(value)?,
            "burst_bytes" => config.timing.burst_bytes = int(value)?,
            "t_wr" => config.timing.t_wr = int(value)?,
            "t_faw" => config.timing.t_faw = int(value)?,
            "t_refi" => config.timing.t_refi = int(value)?,
            "t_rfc" => config.timing.t_rfc = int(value)?,
            "mapping" => mapping_kind = Some(value.to_string()),
            "units" | "low_units" => units = Some(int(value)? as usize),
            "banks_per_unit" => banks = Some(int(value)? as usize),
            "row_bytes" => row_bytes = Some(int(value)?),
            "line_bytes" => line_bytes = Some(int(value)?),
            "split" => split = Some(int(value)?),
            _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
        }
    }

    let any_mapping_override = mapping_kind.is_some()
        || units.is_some()
        || banks.is_some()
        || row_bytes.is_some()
        || line_bytes.is_some()
        || split.is_some();
    if any_mapping_override {
        // Defaults come from whatever mapping the base config carries.
        let (base_units, base_banks, base_row, base_line) = match config.mapping {
            AddressMapping::Interleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            }
            | AddressMapping::XorInterleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            } => (units, banks_per_unit, row_bytes, line_bytes),
            AddressMapping::Asymmetric {
                low_units,
                banks_per_unit,
                row_bytes,
                line_bytes,
                ..
            } => (low_units, banks_per_unit, row_bytes, line_bytes),
        };
        let units = units.unwrap_or(base_units);
        let banks_per_unit = banks.unwrap_or(base_banks);
        let row_bytes = row_bytes.unwrap_or(base_row);
        let line_bytes = line_bytes.unwrap_or(base_line);
        let kind = match &mapping_kind {
            Some(k) => k.as_str(),
            None => match config.mapping {
                AddressMapping::Interleaved { .. } => "interleaved",
                AddressMapping::XorInterleaved { .. } => "xor",
                AddressMapping::Asymmetric { .. } => "asymmetric",
            },
        };
        config.mapping = match kind {
            "interleaved" => AddressMapping::Interleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            },
            "xor" => AddressMapping::XorInterleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            },
            "asymmetric" => AddressMapping::Asymmetric {
                low_units: units,
                banks_per_unit,
                row_bytes,
                line_bytes,
                split: PhysAddr::new(
                    split.ok_or("asymmetric mapping requires `split = <addr>`".to_string())?,
                ),
            },
            other => {
                return Err(format!(
                    "unknown mapping kind `{other}` (expected interleaved, xor, or asymmetric)"
                ))
            }
        };
    }

    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_preset_round_trips() {
        let c = parse_memconfig("base = hmc_stack").unwrap();
        assert_eq!(c, MemoryConfig::hmc_stack());
    }

    #[test]
    fn overrides_apply_with_comments_and_underscores() {
        let c = parse_memconfig(
            "# tweaked baseline\n\
             base = ddr_dual_channel\n\
             name = tweaked\n\
             t_ras = 30   # longer rows\n\
             row_bytes = 16_384\n",
        )
        .unwrap();
        assert_eq!(c.name, "tweaked");
        assert_eq!(c.timing.t_ras, 30);
        assert_eq!(c.mapping.row_bytes(), 16_384);
        // Untouched mapping parameters keep the preset values.
        assert_eq!(c.mapping.units(), 2);
    }

    #[test]
    fn asymmetric_mapping_needs_a_split() {
        let err = parse_memconfig("mapping = asymmetric").unwrap_err();
        assert!(err.contains("split"), "{err}");
        let c = parse_memconfig("mapping = asymmetric\nsplit = 4096\nlow_units = 2").unwrap();
        assert_eq!(c.mapping.units(), 3);
    }

    #[test]
    fn unknown_keys_and_values_rejected_with_line_numbers() {
        let err = parse_memconfig("base = ddr_dual_channel\nfrobnicate = 7").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_memconfig("t_ras = fast").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_memconfig("base = pentium").unwrap_err();
        assert!(err.contains("unknown preset"), "{err}");
    }

    #[test]
    fn sniffer_recognizes_the_format() {
        assert!(looks_like_memconfig("# c\nbase = hmc_stack"));
        assert!(looks_like_memconfig("t_rcd = 11"));
        assert!(!looks_like_memconfig("PASS in=a out=b { }"));
        assert!(!looks_like_memconfig("hello world"));
    }
}
