//! Memory-simulator configuration verification (`MEA020`–`MEA029`).
//!
//! `DramTiming::validate` and `AddressMapping::validate` stop at the
//! first structural defect. This pass collects *every* finding, adds the
//! timing inequalities a real device must satisfy (a row cannot close
//! before the read it serves: `tRAS ≥ tRCD + tCL`; refresh must leave
//! the bank available: `tREFI > tRFC`), and proves the address mapping
//! bijective by exhaustive decode over one full interleaving rotation —
//! every physical byte must land on exactly one `(unit, bank, row, col)`
//! device location, including the asymmetric split mode of §4.2.

use mealib_memsim::address::AddressMapping;
use mealib_memsim::config::MemoryConfig;
use mealib_memsim::energy::DramEnergy;
use mealib_memsim::timing::DramTiming;
use mealib_types::{Diagnostic, ErrorCode, PhysAddr, Report};

use std::collections::HashMap;

/// Verifies a complete memory configuration: timing, energy, and the
/// address mapping (structure + bijectivity).
pub fn verify_memconfig(config: &MemoryConfig) -> Report {
    let mut report = Report::new();
    verify_timing(&config.timing, &mut report);
    verify_energy(&config.energy, &mut report);
    report.merge(verify_mapping(&config.mapping));
    report
}

fn verify_timing(t: &DramTiming, report: &mut Report) {
    if t.t_ck.get().is_nan() || t.t_ck.get() <= 0.0 {
        report.push(Diagnostic::error(
            ErrorCode::MemZeroParameter,
            format!(
                "t_ck is {}; the command clock must have a positive period",
                t.t_ck.get()
            ),
        ));
    }
    for (name, v) in [
        ("t_rcd", t.t_rcd),
        ("t_cl", t.t_cl),
        ("t_rp", t.t_rp),
        ("t_ras", t.t_ras),
        ("t_burst", t.t_burst),
        ("burst_bytes", t.burst_bytes),
        ("t_wr", t.t_wr),
        ("t_faw", t.t_faw),
        ("t_refi", t.t_refi),
        ("t_rfc", t.t_rfc),
    ] {
        if v == 0 {
            report.push(Diagnostic::error(
                ErrorCode::MemZeroParameter,
                format!("{name} is zero; every interval must be at least one cycle"),
            ));
        }
    }
    // A row must stay open long enough to deliver the column read that
    // activated it.
    if t.t_ras < t.t_rcd + t.t_cl {
        report.push(Diagnostic::error(
            ErrorCode::MemTimingInequality,
            format!(
                "t_ras ({}) < t_rcd + t_cl ({} + {}); the row would precharge \
                 before its first read completes",
                t.t_ras, t.t_rcd, t.t_cl
            ),
        ));
    }
    if t.t_refi <= t.t_rfc {
        report.push(Diagnostic::error(
            ErrorCode::MemTimingInequality,
            format!(
                "t_refi ({}) <= t_rfc ({}); the bank would spend its whole life refreshing",
                t.t_refi, t.t_rfc
            ),
        ));
    }
    // tFAW gates four activations, so a window shorter than one row
    // cycle makes it vacuous — suspicious but not fatal.
    if t.t_faw != 0 && t.t_faw > 4 * t.t_rc() {
        report.push(Diagnostic::warning(
            ErrorCode::MemTimingInequality,
            format!(
                "t_faw ({}) exceeds four row cycles ({}); activations would be \
                 current-limited even when banks are idle",
                t.t_faw,
                4 * t.t_rc()
            ),
        ));
    }
}

fn verify_energy(e: &DramEnergy, report: &mut Report) {
    for (name, v) in [
        ("e_act", e.e_act.get()),
        ("e_byte_core", e.e_byte_core.get()),
        ("e_byte_transport", e.e_byte_transport.get()),
        ("e_byte_link", e.e_byte_link.get()),
        ("p_background", e.p_background.get()),
    ] {
        if !v.is_finite() || v < 0.0 {
            report.push(Diagnostic::error(
                ErrorCode::MemBadEnergy,
                format!("{name} is {v}; energy parameters must be finite and non-negative"),
            ));
        }
    }
}

/// Cap on the number of lines decoded by the bijectivity proof. One
/// rotation of every realistic mapping is a few thousand lines; a
/// pathological configuration (huge rows, tiny lines) is sampled up to
/// this many lines and the truncation reported as a warning.
const BIJECTIVITY_LINE_CAP: u64 = 1 << 20;

/// Verifies an address mapping: structural parameters, then a
/// byte-accounting proof that decoding is injective over one full
/// rotation window (`units * banks * row_bytes` bytes — after which the
/// plain interleavings repeat with only the row index advancing).
pub fn verify_mapping(mapping: &AddressMapping) -> Report {
    let mut report = Report::new();

    let (units, banks, row_bytes, line_bytes) = match *mapping {
        AddressMapping::Interleaved {
            units,
            banks_per_unit,
            row_bytes,
            line_bytes,
        }
        | AddressMapping::XorInterleaved {
            units,
            banks_per_unit,
            row_bytes,
            line_bytes,
        } => (units, banks_per_unit, row_bytes, line_bytes),
        AddressMapping::Asymmetric {
            low_units,
            banks_per_unit,
            row_bytes,
            line_bytes,
            ..
        } => (low_units, banks_per_unit, row_bytes, line_bytes),
    };

    let mut structural_ok = true;
    let fail = |report: &mut Report, msg: String| {
        report.push(Diagnostic::error(ErrorCode::MemMappingParam, msg));
    };
    if units == 0 {
        fail(
            &mut report,
            "units is zero; at least one channel/vault is required".into(),
        );
        structural_ok = false;
    }
    if banks == 0 {
        fail(
            &mut report,
            "banks_per_unit is zero; at least one bank is required".into(),
        );
        structural_ok = false;
    }
    if !row_bytes.is_power_of_two() {
        fail(
            &mut report,
            format!("row_bytes ({row_bytes}) must be a power of two"),
        );
        structural_ok = false;
    }
    if !line_bytes.is_power_of_two() || line_bytes > row_bytes {
        fail(
            &mut report,
            format!(
                "line_bytes ({line_bytes}) must be a power of two no larger than \
                 row_bytes ({row_bytes})"
            ),
        );
        structural_ok = false;
    }
    if !structural_ok {
        // Decoding divides by these parameters; the proof cannot run.
        return report;
    }

    match *mapping {
        AddressMapping::Asymmetric {
            low_units, split, ..
        } => {
            if !split.get().is_multiple_of(line_bytes) {
                report.push(Diagnostic::error(
                    ErrorCode::MemBadAsymmetricSplit,
                    format!(
                        "asymmetric split {split} is not aligned to the {line_bytes}-byte \
                         interleaving granularity; the line straddling it would decode \
                         to two units"
                    ),
                ));
                return report;
            }
            // Low region: a plain interleave, but the proof window must
            // not cross the split.
            let window = (units as u64 * banks as u64 * row_bytes).min(split.get());
            check_injective(mapping, 0, window, line_bytes, &mut report);
            // High region: must be contiguous within the single dedicated
            // unit `low_units` (what the accelerators require, §3.3).
            let probe = row_bytes.min(split.get().max(line_bytes));
            for offset in [0, line_bytes, probe - line_bytes] {
                let addr = PhysAddr::new(split.get() + offset);
                let loc = mapping.decode(addr);
                if loc.unit != low_units {
                    report.push(Diagnostic::error(
                        ErrorCode::MemMappingNotBijective,
                        format!(
                            "address {addr} is above the split but decodes to unit \
                             {} instead of the dedicated unit {low_units}",
                            loc.unit
                        ),
                    ));
                }
            }
            let base = mapping.decode(split);
            if base.row != 0 || base.col_byte != 0 {
                report.push(Diagnostic::error(
                    ErrorCode::MemMappingNotBijective,
                    format!(
                        "the split address {split} should start the dedicated unit at \
                         row 0, byte 0 but decodes to row {}, byte {}",
                        base.row, base.col_byte
                    ),
                ));
            }
        }
        _ => {
            // One rotation suffices for the plain interleave (beyond it
            // only the row index advances). The XOR folds key on higher
            // bits, so defects can first appear once rows advance — give
            // the proof four rotations to see them.
            let rotations = if matches!(mapping, AddressMapping::XorInterleaved { .. }) {
                4
            } else {
                1
            };
            let window = units as u64 * banks as u64 * row_bytes * rotations;
            check_injective(mapping, 0, window, line_bytes, &mut report);
        }
    }

    report
}

/// Decodes every line in `[base, base + window)` and reports the first
/// pair of addresses that land on the same device location (`MEA024`),
/// plus any line whose interior bytes scatter across locations.
fn check_injective(
    mapping: &AddressMapping,
    base: u64,
    window: u64,
    line_bytes: u64,
    report: &mut Report,
) {
    let mut lines = window / line_bytes;
    if lines > BIJECTIVITY_LINE_CAP {
        report.push(Diagnostic::warning(
            ErrorCode::MemMappingNotBijective,
            format!(
                "rotation window has {lines} lines; bijectivity checked for the \
                 first {BIJECTIVITY_LINE_CAP} only"
            ),
        ));
        lines = BIJECTIVITY_LINE_CAP;
    }
    let mut seen: HashMap<(usize, usize, u64, u64), u64> = HashMap::with_capacity(lines as usize);
    for i in 0..lines {
        let addr = base + i * line_bytes;
        let loc = mapping.decode(PhysAddr::new(addr));
        let key = (loc.unit, loc.bank, loc.row, loc.col_byte);
        if let Some(prev) = seen.insert(key, addr) {
            report.push(Diagnostic::error(
                ErrorCode::MemMappingNotBijective,
                format!(
                    "addresses {prev:#x} and {addr:#x} both decode to unit {}, bank {}, \
                     row {}, byte {} — the mapping loses capacity",
                    loc.unit, loc.bank, loc.row, loc.col_byte
                ),
            ));
            return;
        }
        // The last byte of the line must sit in the same row, at the
        // expected column — lines are the unit of transfer and must not
        // straddle device locations.
        let tail = mapping.decode(PhysAddr::new(addr + line_bytes - 1));
        if tail.unit != loc.unit
            || tail.bank != loc.bank
            || tail.row != loc.row
            || tail.col_byte != loc.col_byte + (line_bytes - 1)
        {
            report.push(Diagnostic::error(
                ErrorCode::MemMappingNotBijective,
                format!(
                    "line at {addr:#x} is torn: byte 0 decodes to unit {} bank {} row {} \
                     col {}, byte {} to unit {} bank {} row {} col {}",
                    loc.unit,
                    loc.bank,
                    loc.row,
                    loc.col_byte,
                    line_bytes - 1,
                    tail.unit,
                    tail.bank,
                    tail.row,
                    tail.col_byte
                ),
            ));
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_memsim::address::{asymmetric_dimms, dual_channel_dimms, hmc_vaults};

    #[test]
    fn every_preset_is_clean() {
        for c in [
            MemoryConfig::hmc_stack(),
            MemoryConfig::hmc_stack_external(),
            MemoryConfig::hmc_stack_gen1(),
            MemoryConfig::hmc_stack_remote(),
            MemoryConfig::ddr_dual_channel(),
            MemoryConfig::msas_dram(),
        ] {
            let r = verify_memconfig(&c);
            assert!(r.is_clean(), "{}: {r}", c.name);
        }
    }

    #[test]
    fn zero_and_inconsistent_timings_all_reported() {
        let mut c = MemoryConfig::ddr_dual_channel();
        c.timing.t_rcd = 0;
        c.timing.t_refi = c.timing.t_rfc; // refresh starves the bank
        let r = verify_memconfig(&c);
        assert!(r.has_code(ErrorCode::MemZeroParameter));
        assert!(r.has_code(ErrorCode::MemTimingInequality));
        // Collect-all: both findings, not just the first.
        assert!(r.error_count() >= 2, "{r}");
    }

    #[test]
    fn row_closing_before_first_read_flagged() {
        let mut c = MemoryConfig::hmc_stack();
        c.timing.t_ras = c.timing.t_rcd + c.timing.t_cl - 1;
        let r = verify_memconfig(&c);
        assert!(r.has_code(ErrorCode::MemTimingInequality), "{r}");
    }

    #[test]
    fn bad_energy_reported() {
        let mut c = MemoryConfig::hmc_stack();
        c.energy.e_act = mealib_types::Joules::new(-1.0);
        c.energy.p_background = mealib_types::Watts::new(f64::NAN);
        let r = verify_memconfig(&c);
        assert!(r.has_code(ErrorCode::MemBadEnergy));
        assert_eq!(r.error_count(), 2, "{r}");
    }

    #[test]
    fn standard_mappings_prove_bijective() {
        for m in [
            dual_channel_dimms(),
            hmc_vaults(),
            asymmetric_dimms(PhysAddr::new(8 << 30)),
            AddressMapping::XorInterleaved {
                units: 4,
                banks_per_unit: 8,
                row_bytes: 4096,
                line_bytes: 64,
            },
        ] {
            let r = verify_mapping(&m);
            assert!(r.is_clean(), "{m:?}: {r}");
        }
    }

    #[test]
    fn structural_defects_stop_the_proof() {
        let r = verify_mapping(&AddressMapping::Interleaved {
            units: 0,
            banks_per_unit: 0,
            row_bytes: 100,
            line_bytes: 7,
        });
        assert!(r.has_code(ErrorCode::MemMappingParam));
        assert_eq!(r.error_count(), 4, "all four parameters reported: {r}");
        assert!(!r.has_code(ErrorCode::MemMappingNotBijective));
    }

    #[test]
    fn xor_fold_with_non_pow2_units_loses_capacity() {
        // With three units the XOR fold is not a permutation: two lines
        // in one rotation group land on the same unit.
        let r = verify_mapping(&AddressMapping::XorInterleaved {
            units: 3,
            banks_per_unit: 4,
            row_bytes: 1024,
            line_bytes: 64,
        });
        assert!(r.has_code(ErrorCode::MemMappingNotBijective), "{r}");
    }

    #[test]
    fn misaligned_asymmetric_split_flagged() {
        let r = verify_mapping(&asymmetric_dimms(PhysAddr::new((8 << 30) + 17)));
        assert!(r.has_code(ErrorCode::MemBadAsymmetricSplit), "{r}");
    }

    #[test]
    fn asymmetric_high_region_must_start_the_dedicated_unit() {
        // A split smaller than one rotation window still verifies: the
        // low-region proof window shrinks to the split.
        let r = verify_mapping(&asymmetric_dimms(PhysAddr::new(4096)));
        assert!(r.is_clean(), "{r}");
    }
}
