//! Physical-memory consistency verification (`MEA030`–`MEA039`).
//!
//! The accelerators address physical memory directly — no MMU stands
//! between a descriptor and the DRAM it names (§3.3), so an allocator
//! bug becomes silent data corruption rather than a fault. This pass
//! audits a [`MemSnapshot`] of the driver's state: block disjointness
//! and containment per stack, byte-exact free/live accounting, the
//! host-side virtual map, and (when the platform's address mapping is
//! known) that descriptor storage is reachable under single-unit
//! accelerator physical addressing.
//!
//! The snapshot is plain data (`mealib-types` address vocabulary only)
//! so the runtime can depend on this crate without a cycle:
//! `MealibDriver::snapshot()` produces one.

use mealib_memsim::address::AddressMapping;
use mealib_types::{AddrRange, Diagnostic, ErrorCode, PhysAddr, Report, VirtAddr};

/// The allocator state of one memory stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackSnapshot {
    /// The stack's data region (everything the allocator manages).
    pub region: AddrRange,
    /// Allocation granularity the stack promises.
    pub align: u64,
    /// Free blocks.
    pub free: Vec<AddrRange>,
    /// Live (handed-out) blocks.
    pub live: Vec<AddrRange>,
}

/// A point-in-time view of the driver's physical-memory bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Where descriptors are written for the Configuration Unit to fetch.
    pub command_space: AddrRange,
    /// Per-stack allocator state, stack 0 first.
    pub stacks: Vec<StackSnapshot>,
    /// Host-side virtual mappings.
    pub vmap: Vec<(VirtAddr, AddrRange)>,
}

/// Verifies a snapshot. Pass the platform's [`AddressMapping`] to also
/// prove the command space reachable by single-unit accelerator
/// addressing (`MEA033`); without it that check is skipped.
pub fn verify_snapshot(snap: &MemSnapshot, mapping: Option<&AddressMapping>) -> Report {
    let mut report = Report::new();

    for (si, stack) in snap.stacks.iter().enumerate() {
        verify_stack(si, stack, &mut report);
        if si == 0 && snap.command_space.overlaps(&stack.region) {
            report.push(Diagnostic::error(
                ErrorCode::PhysOutOfRegion,
                format!(
                    "command space {} overlaps stack 0's data region {}; a descriptor \
                     write would clobber allocated data",
                    snap.command_space, stack.region
                ),
            ));
        }
    }

    verify_vmap(snap, &mut report);

    if let Some(mapping) = mapping {
        let cs = &snap.command_space;
        if !cs.is_empty() {
            let first = cs.start();
            let last = PhysAddr::new(cs.end().get() - 1);
            if !mapping.is_single_unit(first) || !mapping.is_single_unit(last) {
                report.push(Diagnostic::error(
                    ErrorCode::PhysUnreachableDescriptor,
                    format!(
                        "command space {cs} is not physically contiguous within one \
                         unit under the platform mapping; the Configuration Unit \
                         cannot fetch descriptors from interleaved memory"
                    ),
                ));
            }
        }
    }

    report
}

fn verify_stack(si: usize, stack: &StackSnapshot, report: &mut Report) {
    if !stack.align.is_power_of_two() {
        report.push(Diagnostic::error(
            ErrorCode::PhysMisaligned,
            format!(
                "stack {si}: alignment {} is not a power of two",
                stack.align
            ),
        ));
        return;
    }
    if !stack.region.start().is_aligned(stack.align) {
        report.push(Diagnostic::error(
            ErrorCode::PhysMisaligned,
            format!(
                "stack {si}: region base {} is not {}-byte aligned",
                stack.region.start(),
                stack.align
            ),
        ));
    }

    // Every block must sit inside the region; live blocks must honour
    // the promised alignment (free blocks may be odd-sized remainders).
    for (kind, blocks) in [("free", &stack.free), ("live", &stack.live)] {
        for b in blocks {
            if !stack.region.contains_range(b) {
                report.push(Diagnostic::error(
                    ErrorCode::PhysOutOfRegion,
                    format!(
                        "stack {si}: {kind} block {b} escapes the region {}",
                        stack.region
                    ),
                ));
            }
        }
    }
    for b in &stack.live {
        if !b.start().is_aligned(stack.align) {
            report.push(Diagnostic::error(
                ErrorCode::PhysMisaligned,
                format!(
                    "stack {si}: live block {b} violates the {}-byte allocation granularity",
                    stack.align
                ),
            ));
        }
    }

    // Disjointness: no two blocks (of any kind) may cover the same byte.
    let mut all: Vec<(&'static str, &AddrRange)> = Vec::new();
    all.extend(stack.free.iter().map(|b| ("free", b)));
    all.extend(stack.live.iter().map(|b| ("live", b)));
    for (i, (ka, a)) in all.iter().enumerate() {
        for (kb, b) in &all[i + 1..] {
            if a.overlaps(b) {
                report.push(Diagnostic::error(
                    ErrorCode::PhysOverlap,
                    format!("stack {si}: {ka} block {a} overlaps {kb} block {b}"),
                ));
            }
        }
    }

    // Byte-exact accounting: free + live must tile the region.
    let free: u64 = stack.free.iter().map(|b| b.len().get()).sum();
    let live: u64 = stack.live.iter().map(|b| b.len().get()).sum();
    let total = stack.region.len().get();
    if free + live != total {
        report.push(Diagnostic::error(
            ErrorCode::PhysAccounting,
            format!(
                "stack {si}: free ({free} B) + live ({live} B) covers {} B but the \
                 region holds {total} B — {} B leaked",
                free + live,
                total as i128 - (free + live) as i128
            ),
        ));
    }
}

fn verify_vmap(snap: &MemSnapshot, report: &mut Report) {
    for (i, (va, pa)) in snap.vmap.iter().enumerate() {
        // The physical side of every mapping must be backed by a live
        // allocation (or be the command space itself).
        let backed = snap.command_space.contains_range(pa)
            || snap
                .stacks
                .iter()
                .flat_map(|s| s.live.iter())
                .any(|b| b.contains_range(pa));
        if !backed {
            report.push(Diagnostic::error(
                ErrorCode::PhysVmapInconsistent,
                format!(
                    "virtual mapping {va} -> {pa} targets physical memory no live \
                     allocation backs"
                ),
            ));
        }
        // Virtual ranges must not alias each other.
        for (vb, pb) in &snap.vmap[i + 1..] {
            let a_end = va.get() + pa.len().get();
            let b_end = vb.get() + pb.len().get();
            if va.get() < b_end && vb.get() < a_end {
                report.push(Diagnostic::error(
                    ErrorCode::PhysVmapInconsistent,
                    format!(
                        "virtual ranges {va}+{} and {vb}+{} overlap",
                        pa.len(),
                        pb.len()
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_types::Bytes;

    fn range(start: u64, len: u64) -> AddrRange {
        AddrRange::new(PhysAddr::new(start), Bytes::new(len))
    }

    fn healthy() -> MemSnapshot {
        MemSnapshot {
            command_space: range(0, 4096),
            stacks: vec![StackSnapshot {
                region: range(4096, 61440),
                align: 64,
                free: vec![range(4096 + 128, 61440 - 128)],
                live: vec![range(4096, 128)],
            }],
            vmap: vec![
                (VirtAddr::new(0x1000_0000), range(4096, 128)),
                (VirtAddr::new(0x2000_0000), range(0, 4096)),
            ],
        }
    }

    #[test]
    fn healthy_snapshot_is_clean() {
        let r = verify_snapshot(&healthy(), None);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn overlapping_blocks_flagged() {
        let mut s = healthy();
        s.stacks[0].live.push(range(4096 + 64, 128));
        let r = verify_snapshot(&s, None);
        assert!(r.has_code(ErrorCode::PhysOverlap), "{r}");
        // The extra block also breaks accounting.
        assert!(r.has_code(ErrorCode::PhysAccounting));
    }

    #[test]
    fn escaping_block_flagged() {
        let mut s = healthy();
        s.stacks[0].live[0] = range(128, 128); // below the region base
        let r = verify_snapshot(&s, None);
        assert!(r.has_code(ErrorCode::PhysOutOfRegion), "{r}");
    }

    #[test]
    fn misaligned_live_block_flagged() {
        let mut s = healthy();
        s.stacks[0].live[0] = range(4096 + 8, 120);
        s.stacks[0].free = vec![range(4096, 8), range(4096 + 128, 61440 - 128)];
        s.vmap.clear();
        let r = verify_snapshot(&s, None);
        assert!(r.has_code(ErrorCode::PhysMisaligned), "{r}");
    }

    #[test]
    fn command_space_colliding_with_data_flagged() {
        let mut s = healthy();
        s.command_space = range(4096, 4096); // sits on the data region
        s.vmap.clear();
        let r = verify_snapshot(&s, None);
        assert!(r.has_code(ErrorCode::PhysOutOfRegion), "{r}");
    }

    #[test]
    fn leaked_bytes_flagged() {
        let mut s = healthy();
        s.stacks[0].free[0] = range(4096 + 256, 61440 - 256); // 128 B vanish
        let r = verify_snapshot(&s, None);
        assert!(r.has_code(ErrorCode::PhysAccounting), "{r}");
    }

    #[test]
    fn vmap_must_be_backed_and_disjoint() {
        let mut s = healthy();
        s.vmap.push((VirtAddr::new(0x3000_0000), range(50_000, 64)));
        let r = verify_snapshot(&s, None);
        assert!(r.has_code(ErrorCode::PhysVmapInconsistent), "{r}");

        let mut s2 = healthy();
        s2.vmap.push((VirtAddr::new(0x1000_0040), range(4096, 64)));
        let r2 = verify_snapshot(&s2, None);
        assert!(r2.has_code(ErrorCode::PhysVmapInconsistent), "{r2}");
    }

    #[test]
    fn interleaved_command_space_unreachable_by_accelerators() {
        let s = healthy();
        let interleaved = mealib_memsim::address::dual_channel_dimms();
        let r = verify_snapshot(&s, Some(&interleaved));
        assert!(r.has_code(ErrorCode::PhysUnreachableDescriptor), "{r}");

        // The asymmetric mode dedicates a contiguous unit: place the
        // command space above the split and it becomes reachable.
        let asym = mealib_memsim::address::asymmetric_dimms(PhysAddr::new(0));
        let r2 = verify_snapshot(&s, Some(&asym));
        assert!(!r2.has_code(ErrorCode::PhysUnreachableDescriptor), "{r2}");
    }
}
