//! TDL semantic verification (`MEA001`–`MEA009`).
//!
//! The parser already rejects syntactic junk; this pass checks the
//! properties that make a *parseable* program unrunnable or suspicious:
//! chain legality against the tile-switch fan-in (§2.3), in-place
//! aliasing of chained passes, references to parameter files the bag
//! cannot satisfy, loop trip counts outside the descriptor's sequencing
//! range, and buffer def-use hazards across passes.

use std::collections::BTreeSet;

use mealib_tdl::{
    parse_with_lines, AcceleratorKind, ItemLines, ParamBag, ParseError, PassBlock, PassLines,
    ProgramLines, TdlItem, TdlProgram,
};
use mealib_types::{Diagnostic, ErrorCode, Report};

/// Hardware limits the program must respect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdlLimits {
    /// Maximum accelerators one `PASS` may chain (tile-switch fan-in).
    pub max_chain: usize,
    /// Dynamic invocation count above which the program draws a
    /// footprint warning (the paper compacts 16 M calls into one
    /// descriptor; an order of magnitude beyond that is suspicious).
    pub warn_invocations: u64,
}

impl Default for TdlLimits {
    fn default() -> Self {
        Self {
            max_chain: 4,
            warn_invocations: 1 << 28,
        }
    }
}

/// Verifies TDL source text: parses it, then runs every semantic check.
///
/// # Errors
///
/// Returns the [`ParseError`] if the text does not parse at all;
/// semantic findings land in the returned [`Report`].
pub fn verify_source(
    src: &str,
    params: Option<&ParamBag>,
    limits: &TdlLimits,
) -> Result<Report, ParseError> {
    let (program, lines) = parse_with_lines(src)?;
    Ok(verify_program(&program, Some(&lines), params, limits))
}

/// Verifies an already-parsed program. `lines` (from
/// [`parse_with_lines`]) attaches source spans to findings; `params`
/// enables dangling-reference checks against a concrete parameter bag.
pub fn verify_program(
    program: &TdlProgram,
    lines: Option<&ProgramLines>,
    params: Option<&ParamBag>,
    limits: &TdlLimits,
) -> Report {
    let mut report = Report::new();
    let mut written: BTreeSet<&str> = BTreeSet::new();
    let mut read_since_write: BTreeSet<&str> = BTreeSet::new();

    for (idx, item) in program.items.iter().enumerate() {
        let item_lines = lines.and_then(|l| l.items.get(idx));
        match item {
            TdlItem::Pass(pass) => {
                let pass_lines = match item_lines {
                    Some(ItemLines::Pass(p)) => Some(p),
                    _ => None,
                };
                check_pass(pass, pass_lines, params, limits, &mut report);
                track_hazards(
                    pass,
                    pass_lines,
                    &mut written,
                    &mut read_since_write,
                    &mut report,
                );
            }
            TdlItem::Loop(l) => {
                let (header, body_lines) = match item_lines {
                    Some(ItemLines::Loop { header, body }) => (Some(*header), Some(body)),
                    _ => (None, None),
                };
                if l.count == 0 {
                    let mut d = Diagnostic::error(
                        ErrorCode::TdlLoopTripCount,
                        "LOOP trip count is zero; the loop body can never execute",
                    );
                    if let Some(line) = header {
                        d = d.at_line(line);
                    }
                    report.push(d);
                }
                for (pidx, pass) in l.body.iter().enumerate() {
                    let pass_lines = body_lines.and_then(|b| b.get(pidx));
                    check_pass(pass, pass_lines, params, limits, &mut report);
                    track_hazards(
                        pass,
                        pass_lines,
                        &mut written,
                        &mut read_since_write,
                        &mut report,
                    );
                }
            }
        }
    }

    check_invocation_range(program, limits, &mut report);
    report
}

fn check_pass(
    pass: &PassBlock,
    lines: Option<&PassLines>,
    params: Option<&ParamBag>,
    limits: &TdlLimits,
    report: &mut Report,
) {
    let header = lines.map(|l| l.header);
    let at = |d: Diagnostic, line: Option<usize>| match line {
        Some(line) => d.at_line(line),
        None => d,
    };

    if pass.comps.len() > limits.max_chain {
        report.push(at(
            Diagnostic::error(
                ErrorCode::TdlChainTooLong,
                format!(
                    "pass `{} -> {}` chains {} accelerators but the tile switch fans in {}",
                    pass.input,
                    pass.output,
                    pass.comps.len(),
                    limits.max_chain
                ),
            ),
            header,
        ));
    }

    if pass.is_chained() && pass.input == pass.output {
        report.push(at(
            Diagnostic::error(
                ErrorCode::TdlInPlaceChain,
                format!(
                    "chained pass cannot stream in place: buffer `{}` is both input and output",
                    pass.input
                ),
            ),
            header,
        ));
    }

    // §2.3 chain legality: data flows first comp -> last comp, so a
    // reducing accelerator (DOT collapses its stream to a scalar) can
    // only terminate a chain — nothing can stream out of it.
    for (i, comp) in pass.comps.iter().enumerate() {
        let comp_line = lines.and_then(|l| l.comps.get(i)).copied();
        if comp.accel == AcceleratorKind::Dot && i + 1 < pass.comps.len() {
            report.push(at(
                Diagnostic::error(
                    ErrorCode::TdlIllegalChain,
                    format!(
                        "DOT reduces its stream to a scalar and must terminate the chain, \
                         but `{}` follows it",
                        pass.comps[i + 1].accel
                    ),
                ),
                comp_line,
            ));
        }
        if comp.params.is_empty() {
            report.push(at(
                Diagnostic::error(
                    ErrorCode::TdlDanglingParams,
                    format!("COMP {} has an empty params= reference", comp.accel),
                ),
                comp_line,
            ));
        } else if let Some(bag) = params {
            if !bag.contains_key(&comp.params) {
                report.push(at(
                    Diagnostic::error(
                        ErrorCode::TdlDanglingParams,
                        format!(
                            "COMP {} references parameter file `{}` absent from the bag",
                            comp.accel, comp.params
                        ),
                    ),
                    comp_line,
                ));
            }
        }
    }
}

fn track_hazards<'p>(
    pass: &'p PassBlock,
    lines: Option<&PassLines>,
    written: &mut BTreeSet<&'p str>,
    read_since_write: &mut BTreeSet<&'p str>,
    report: &mut Report,
) {
    if written.contains(pass.output.as_str()) && !read_since_write.contains(pass.output.as_str()) {
        let mut d = Diagnostic::warning(
            ErrorCode::TdlBufferHazard,
            format!(
                "buffer `{}` is written again before any pass reads it; \
                 the earlier result is dead",
                pass.output
            ),
        );
        if let Some(l) = lines {
            d = d.at_line(l.header);
        }
        report.push(d);
    }
    read_since_write.insert(pass.input.as_str());
    written.insert(pass.output.as_str());
    read_since_write.remove(pass.output.as_str());
}

fn check_invocation_range(program: &TdlProgram, limits: &TdlLimits, report: &mut Report) {
    // Widened arithmetic: TdlProgram::total_invocations would itself
    // overflow on adversarial counts.
    let mut total: u128 = 0;
    for item in &program.items {
        total += match item {
            TdlItem::Pass(p) => p.invocations() as u128,
            TdlItem::Loop(l) => {
                l.count as u128 * l.body.iter().map(|p| p.invocations() as u128).sum::<u128>()
            }
        };
    }
    if total > u64::MAX as u128 {
        report.push(Diagnostic::error(
            ErrorCode::TdlLoopTripCount,
            format!(
                "program performs {total} dynamic invocations, beyond the descriptor's \
                 64-bit sequencing range"
            ),
        ));
    } else if total > limits.warn_invocations as u128 {
        report.push(Diagnostic::warning(
            ErrorCode::TdlLoopTripCount,
            format!(
                "program performs {total} dynamic invocations (> {}); check the loop counts",
                limits.warn_invocations
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(src: &str) -> Report {
        verify_source(src, None, &TdlLimits::default()).unwrap()
    }

    #[test]
    fn clean_program_passes() {
        let r = verify(
            r#"
            PASS in=a out=b {
                COMP RESHP params="r.para"
                COMP FFT params="f.para"
            }
            LOOP 128 {
                PASS in=b out=c { COMP DOT params="d.para" }
            }
            "#,
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn in_place_chain_flagged_with_line() {
        let r = verify("PASS in=x out=x {\n COMP RESHP params=\"r\"\n COMP FFT params=\"f\" }");
        assert!(r.has_code(ErrorCode::TdlInPlaceChain));
        assert!(r.render().contains("line 1"), "{r}");
    }

    #[test]
    fn overlong_chain_flagged() {
        let r = verify(
            "PASS in=a out=b { COMP FFT params=\"f\" COMP FFT params=\"f\" \
             COMP FFT params=\"f\" COMP FFT params=\"f\" COMP FFT params=\"f\" }",
        );
        assert!(r.has_code(ErrorCode::TdlChainTooLong));
    }

    #[test]
    fn dot_must_terminate_chain() {
        let r = verify("PASS in=a out=b {\n COMP DOT params=\"d\"\n COMP FFT params=\"f\" }");
        assert!(r.has_code(ErrorCode::TdlIllegalChain));
        assert!(r.render().contains("line 2"), "{r}");
        // DOT in last position is fine.
        let ok = verify("PASS in=a out=b { COMP FFT params=\"f\" COMP DOT params=\"d\" }");
        assert!(!ok.has_code(ErrorCode::TdlIllegalChain));
    }

    #[test]
    fn dangling_params_needs_a_bag() {
        let src = "PASS in=a out=b { COMP FFT params=\"missing.para\" }";
        assert!(!verify(src).has_code(ErrorCode::TdlDanglingParams));
        let bag = ParamBag::new();
        let r = verify_source(src, Some(&bag), &TdlLimits::default()).unwrap();
        assert!(r.has_code(ErrorCode::TdlDanglingParams));
    }

    #[test]
    fn dead_store_warns_but_reads_clear_it() {
        let dead = verify(
            "PASS in=a out=b { COMP FFT params=\"f\" }\n\
             PASS in=a out=b { COMP FFT params=\"f\" }",
        );
        assert!(dead.has_code(ErrorCode::TdlBufferHazard));
        assert!(!dead.has_errors(), "hazard is a warning");
        let live = verify(
            "PASS in=a out=b { COMP FFT params=\"f\" }\n\
             PASS in=b out=c { COMP FFT params=\"f\" }\n\
             PASS in=a out=b { COMP FFT params=\"f\" }",
        );
        assert!(!live.has_code(ErrorCode::TdlBufferHazard), "{live}");
    }

    #[test]
    fn huge_invocation_counts_warn() {
        let r = verify("LOOP 9999999999 { PASS in=a out=b { COMP FFT params=\"f\" } }");
        assert!(r.has_code(ErrorCode::TdlLoopTripCount));
        assert!(!r.has_errors());
    }

    #[test]
    fn zero_loop_built_programmatically_is_an_error() {
        // The parser rejects LOOP 0, but programs can be built via the
        // AST; the pass must not rely on parser invariants.
        let program = TdlProgram {
            items: vec![TdlItem::Loop(mealib_tdl::LoopBlock {
                count: 0,
                body: vec![PassBlock::new(
                    "a",
                    "b",
                    vec![mealib_tdl::CompBlock::new(AcceleratorKind::Fft, "f")],
                )],
            })],
        };
        let r = verify_program(&program, None, None, &TdlLimits::default());
        assert!(r.has_code(ErrorCode::TdlLoopTripCount));
        assert!(r.has_errors());
    }
}
