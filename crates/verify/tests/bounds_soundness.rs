//! Differential soundness harness for the MEA2xx bounds certifier.
//!
//! Every corpus program (bad *and* clean — soundness does not care
//! whether the program violates a budget) and every example session is
//! elaborated into its canonical trace, priced by the static analyzer,
//! and replayed through the cycle engine against the *same* resolved
//! memory configuration. The harness requires
//! `lower <= measured <= upper` on every certified counter: bytes
//! moved, DRAM activations, cycles, elapsed time, and DRAM energy —
//! with bytes and burst commands exact.

use std::fs;
use std::path::PathBuf;

use mealib_memsim::bounds::trace_bounds;
use mealib_memsim::engine::{simulate, SimOptions};
use mealib_verify::bounds::{self, BoundsEnv};
use mealib_verify::dataflow::parse_session;

fn manifest_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// All `.tdl` sources the harness certifies: both corpus halves plus
/// the repo examples.
fn tdl_sources() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for dir in [
        manifest_path("corpus/bad"),
        manifest_path("corpus/clean"),
        manifest_path("../../examples/tdl"),
    ] {
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "tdl"))
            .collect();
        files.sort();
        for path in files {
            let src = fs::read_to_string(&path).expect("tdl file reads");
            out.push((path.display().to_string(), src));
        }
    }
    assert!(
        out.len() >= 34,
        "expected the full corpus, got {}",
        out.len()
    );
    out
}

#[test]
fn every_corpus_and_example_program_is_certified_soundly() {
    let env = BoundsEnv::default();
    for (name, src) in tdl_sources() {
        let session = parse_session(&src).expect("corpus/example sources parse");
        let cfg = bounds::resolved_config(&session, &env);
        let elab = bounds::elaborate(&session);
        let static_bounds = trace_bounds(&cfg, &elab.trace).expect("resolved configs validate");
        let run = simulate(&cfg, &elab.trace, &SimOptions::dual_check())
            .expect("resolved configs validate");
        assert!(
            static_bounds.check_contains(&run.stats).is_none(),
            "{name}: {}",
            static_bounds.check_contains(&run.stats).unwrap()
        );
        // Burst commands and per-unit traffic are certified exactly.
        let reads: u64 = run.vaults.iter().map(|v| v.read_bursts).sum();
        let writes: u64 = run.vaults.iter().map(|v| v.write_bursts).sum();
        assert!(static_bounds.read_bursts.is_exact() && static_bounds.write_bursts.is_exact());
        assert_eq!(static_bounds.read_bursts.lo, reads as f64, "{name}");
        assert_eq!(static_bounds.write_bursts.lo, writes as f64, "{name}");
        let per_unit: Vec<u64> = run
            .vaults
            .iter()
            .map(|v| v.read_bursts + v.write_bursts)
            .collect();
        assert_eq!(static_bounds.unit_bursts, per_unit, "{name}");

        // The ResourceSummary pathway (what the passes consume) must
        // carry exactly the kernel's intervals — no drift between the
        // public API and the proven kernel.
        let summary = bounds::summarize_session(&session, &env).expect("summarize");
        assert_eq!(summary.dram.cycles, static_bounds.cycles, "{name}");
        assert_eq!(summary.dram.energy, static_bounds.energy, "{name}");
        assert_eq!(
            summary.dram.unit_bursts, static_bounds.unit_bursts,
            "{name}"
        );
        assert!(
            summary.total_energy().lo >= summary.dram.energy.lo,
            "{name}"
        );
    }
}

#[test]
fn clean_corpus_and_examples_draw_zero_mea2xx() {
    let env = BoundsEnv::default();
    for dir in ["corpus/clean", "../../examples/tdl"] {
        let dir = manifest_path(dir);
        for entry in fs::read_dir(&dir).expect("dir reads") {
            let path = entry.expect("entry").path();
            if path.extension().is_none_or(|e| e != "tdl") {
                continue;
            }
            let src = fs::read_to_string(&path).expect("reads");
            let session = parse_session(&src).expect("parses");
            let report = bounds::verify_session_bounds(&session, &env);
            assert!(
                report.is_clean(),
                "{}: expected zero MEA2xx, got:\n{report}",
                path.display()
            );
        }
    }
}
