//! Known-bad corpus: every entry is a realistic defect and must draw the
//! exact `MEA0xx` code the documentation promises — the codes are a
//! stable interface, so a check that starts firing under a different
//! code is a regression even if it still fires.

use std::collections::BTreeMap;

use mealib_tdl::descriptor::{CR_BYTES, INSTR_BYTES, OP_PASS_END};
use mealib_tdl::{parse, Descriptor, ParamBag};
use mealib_verify::{descriptor, tdl, ErrorCode, TdlLimits};

fn tdl_report(src: &str) -> mealib_verify::Report {
    tdl::verify_source(src, None, &TdlLimits::default()).expect("corpus entries must parse")
}

#[test]
fn tdl_corpus_draws_exact_codes() {
    let corpus: &[(&str, &str, ErrorCode)] = &[
        (
            "in-place chain",
            r#"PASS in=x out=x { COMP RESHP params="r.para" COMP FFT params="f.para" }"#,
            ErrorCode::TdlInPlaceChain,
        ),
        (
            "chain beyond the tile-switch fan-in",
            r#"PASS in=x out=y {
                COMP FFT params="a.para"
                COMP FFT params="b.para"
                COMP FFT params="c.para"
                COMP FFT params="d.para"
                COMP FFT params="e.para"
            }"#,
            ErrorCode::TdlChainTooLong,
        ),
        (
            "reduction feeding a downstream stage",
            r#"PASS in=x out=y { COMP DOT params="d.para" COMP FFT params="f.para" }"#,
            ErrorCode::TdlIllegalChain,
        ),
        (
            "absurd trip count",
            r#"LOOP 400000000 { PASS in=x out=y { COMP FFT params="f.para" } }"#,
            ErrorCode::TdlLoopTripCount,
        ),
        (
            "overwritten before anyone reads it",
            r#"PASS in=a out=b { COMP FFT params="f.para" }
               PASS in=c out=b { COMP RESHP params="r.para" }"#,
            ErrorCode::TdlBufferHazard,
        ),
    ];
    for (what, src, code) in corpus {
        let report = tdl_report(src);
        assert!(
            report.has_code(*code),
            "{what}: expected {code}, got:\n{report}"
        );
        assert!(!report.is_clean(), "{what}");
    }
}

#[test]
fn dangling_param_reference_needs_the_bag() {
    let src = r#"PASS in=x out=y { COMP FFT params="missing.para" }"#;
    // Without a bag the reference cannot be judged.
    assert!(tdl_report(src).is_clean());
    let bag = ParamBag::new();
    let report = tdl::verify_source(src, Some(&bag), &TdlLimits::default()).unwrap();
    assert!(report.has_code(ErrorCode::TdlDanglingParams), "{report}");
}

/// A well-formed two-item descriptor to corrupt.
fn good_image() -> Vec<u8> {
    let program = parse(
        r#"
        PASS in=a out=b {
            COMP RESHP params="r.para"
            COMP FFT params="f.para"
        }
        LOOP 16 { PASS in=b out=c { COMP DOT params="d.para" } }
        "#,
    )
    .unwrap();
    let mut params = ParamBag::new();
    params.insert("r.para".into(), vec![1; 5]);
    params.insert("f.para".into(), vec![2; 16]);
    params.insert("d.para".into(), vec![3; 12]);
    let buffers: BTreeMap<String, u64> = [
        ("a".into(), 0x1000u64),
        ("b".into(), 0x2000),
        ("c".into(), 0x3000),
    ]
    .into_iter()
    .collect();
    Descriptor::encode(&program, &params, &buffers)
        .unwrap()
        .as_bytes()
        .to_vec()
}

fn patch_pr_offset(img: &mut [u8], delta: i64) {
    let pr = u32::from_le_bytes(img[12..16].try_into().unwrap());
    img[12..16].copy_from_slice(&((pr as i64 + delta) as u32).to_le_bytes());
}

#[test]
fn descriptor_corpus_draws_exact_codes() {
    type Corruption = fn(&mut Vec<u8>);
    let corpus: &[(&str, Corruption, ErrorCode)] = &[
        (
            "truncated below the control region",
            |img| img.truncate(8),
            ErrorCode::DescTruncated,
        ),
        (
            "flipped magic",
            |img| img[0] ^= 0xff,
            ErrorCode::DescBadMagic,
        ),
        (
            "undefined command word",
            |img| img[4] = 9,
            ErrorCode::DescBadCommand,
        ),
        (
            "instruction count past the end of the image",
            |img| img[8..12].copy_from_slice(&10_000u32.to_le_bytes()),
            ErrorCode::DescTruncated,
        ),
        (
            "parameter region overlapping the instruction region",
            |img| patch_pr_offset(img, -(INSTR_BYTES as i64)),
            ErrorCode::DescRegionOverlap,
        ),
        (
            "misaligned parameter region",
            |img| {
                patch_pr_offset(img, 4);
                img.extend_from_slice(&[0; 4]);
            },
            ErrorCode::DescMisalignedPr,
        ),
        (
            "opcode outside the ISA",
            |img| img[CR_BYTES + INSTR_BYTES] = 0xee,
            ErrorCode::DescUnknownOpcode,
        ),
        (
            "PASS_END with no open pass",
            |img| img[CR_BYTES] = OP_PASS_END,
            ErrorCode::DescUnbalancedBlocks,
        ),
        (
            "parameter pointer past the parameter region",
            |img| {
                let base = CR_BYTES + INSTR_BYTES;
                img[base + 8..base + 16].copy_from_slice(&0xffff_u64.to_le_bytes());
            },
            ErrorCode::DescParamOutOfRange,
        ),
        (
            "parameter pointer off the 8-byte grid",
            |img| {
                let base = CR_BYTES + INSTR_BYTES;
                img[base + 8..base + 16].copy_from_slice(&3u64.to_le_bytes());
            },
            ErrorCode::DescParamMisaligned,
        ),
    ];

    assert!(descriptor::verify_image(&good_image()).is_clean());
    for (what, corrupt, code) in corpus {
        let mut img = good_image();
        corrupt(&mut img);
        let report = descriptor::verify_image(&img);
        assert!(
            report.has_code(*code),
            "{what}: expected {code}, got:\n{report}"
        );
        assert!(report.has_errors(), "{what}");
    }
}

mod dataflow_corpus {
    //! The MEA1xx/MEA2xx disk corpus: every bad program must draw the
    //! exact code its filename promises, and every clean twin must lint
    //! fully clean (TDL, dataflow, *and* bounds passes).

    use std::fs;
    use std::path::{Path, PathBuf};

    use mealib_verify::dataflow::{self, DataflowEnv};
    use mealib_verify::{bounds, tdl, BoundsEnv, ErrorCode, Report, TdlLimits};

    fn corpus_dir(kind: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(kind)
    }

    pub(super) fn corpus_files(kind: &str) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir(kind))
            .expect("corpus directory exists")
            .map(|e| e.expect("corpus entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "tdl"))
            .collect();
        files.sort();
        files
    }

    /// `mea103_missing_flush.tdl` promises `MEA103`.
    fn expected_code(path: &Path) -> ErrorCode {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 file name");
        let number: u16 = name[3..6].parse().expect("meaNNN_ filename prefix");
        *ErrorCode::ALL
            .iter()
            .find(|c| c.number() == number)
            .expect("prefix names a known code")
    }

    /// Exactly what `mealint` computes for a `.tdl` file: TDL semantics
    /// merged with the session-aware dataflow analysis and the MEA2xx
    /// bounds certification.
    fn full_lint(src: &str) -> Report {
        let session = dataflow::parse_session(src).expect("corpus entries parse");
        let mut report = tdl::verify_program(
            &session.program,
            Some(&session.lines),
            None,
            &TdlLimits::default(),
        );
        report.merge(dataflow::verify_session(&session, &DataflowEnv::default()));
        report.merge(bounds::verify_session_bounds(
            &session,
            &BoundsEnv::default(),
        ));
        report
    }

    #[test]
    fn bad_corpus_draws_the_code_its_name_promises() {
        let files = corpus_files("bad");
        assert!(
            files.len() >= 8,
            "corpus holds {} bad programs",
            files.len()
        );
        for path in files {
            let src = fs::read_to_string(&path).expect("corpus file reads");
            let code = expected_code(&path);
            let report = full_lint(&src);
            assert!(
                report.has_code(code),
                "{}: expected {code}, got:\n{report}",
                path.display()
            );
        }
    }

    #[test]
    fn clean_twins_lint_fully_clean() {
        let files = corpus_files("clean");
        assert!(files.len() >= 8);
        for path in files {
            let twin = corpus_dir("bad").join(path.file_name().expect("file name"));
            assert!(twin.exists(), "{} has no bad counterpart", path.display());
            let src = fs::read_to_string(&path).expect("corpus file reads");
            let report = full_lint(&src);
            assert!(
                report.is_clean(),
                "{}: clean twin must be clean, got:\n{report}",
                path.display()
            );
        }
    }

    #[test]
    fn every_dataflow_code_is_exercised() {
        let exercised: Vec<ErrorCode> = corpus_files("bad")
            .iter()
            .map(|p| expected_code(p))
            .collect();
        for code in [
            ErrorCode::DfUninitRead,
            ErrorCode::DfDeadBuffer,
            ErrorCode::DfOverlap,
            ErrorCode::DfStaleRead,
            ErrorCode::DfChainOverCapacity,
            ErrorCode::DfCyclicDependence,
        ] {
            assert!(exercised.contains(&code), "no bad program exercises {code}");
        }
    }
}

mod cli {
    //! End-to-end runs of the `mealint` binary over corpus files.

    use std::path::PathBuf;
    use std::process::Command;

    fn scratch(name: &str, contents: &[u8]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mealint-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn mealint(args: &[&str]) -> (i32, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_mealint"))
            .args(args)
            .output()
            .expect("mealint runs");
        (
            out.status.code().expect("exit code"),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }

    #[test]
    fn clean_files_of_every_kind_exit_zero() {
        let tdl = scratch(
            "good.tdl",
            br#"PASS in=x out=y { COMP FFT params="f.para" }"#,
        );
        let desc = scratch("good.meal", &super::good_image());
        let cfg = scratch("good.memcfg", b"base = hmc_stack\n");
        let (code, stdout, _) = mealint(&[
            tdl.to_str().unwrap(),
            desc.to_str().unwrap(),
            cfg.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{stdout}");
        assert_eq!(stdout.matches(": ok").count(), 3, "{stdout}");
    }

    #[test]
    fn coded_errors_exit_one_and_name_the_code() {
        let bad_tdl = scratch(
            "bad.tdl",
            br#"PASS in=x out=x { COMP RESHP params="r.para" COMP FFT params="f.para" }"#,
        );
        let (code, stdout, _) = mealint(&[bad_tdl.to_str().unwrap()]);
        assert_eq!(code, 1, "{stdout}");
        assert!(stdout.contains("MEA001"), "{stdout}");

        let mut img = super::good_image();
        img[4] = 9;
        let bad_desc = scratch("bad.meal", &img);
        let (code, stdout, _) = mealint(&[bad_desc.to_str().unwrap()]);
        assert_eq!(code, 1, "{stdout}");
        assert!(stdout.contains("MEA012"), "{stdout}");

        let bad_cfg = scratch("bad.memcfg", b"base = hmc_stack\nt_rcd = 0\n");
        let (code, stdout, _) = mealint(&[bad_cfg.to_str().unwrap()]);
        assert_eq!(code, 1, "{stdout}");
        assert!(stdout.contains("MEA020"), "{stdout}");
    }

    #[test]
    fn one_bad_file_taints_a_batch() {
        let good = scratch(
            "also-good.tdl",
            br#"PASS in=x out=y { COMP FFT params="f.para" }"#,
        );
        let bad = scratch(
            "also-bad.tdl",
            br#"PASS in=x out=x { COMP RESHP params="r.para" COMP FFT params="f.para" }"#,
        );
        let (code, stdout, _) = mealint(&[good.to_str().unwrap(), bad.to_str().unwrap()]);
        assert_eq!(code, 1, "{stdout}");
        assert!(stdout.contains(": ok"), "{stdout}");
    }

    #[test]
    fn unusable_inputs_exit_two() {
        let garbage = scratch("garbage.tdl", b"PASS oops");
        let (code, _, stderr) = mealint(&[garbage.to_str().unwrap()]);
        assert_eq!(code, 2, "{stderr}");
        assert!(stderr.contains("parse error"), "{stderr}");

        let (code, _, stderr) = mealint(&[]);
        assert_eq!(code, 2);
        assert!(stderr.contains("usage"), "{stderr}");

        let (code, _, _) = mealint(&["/nonexistent/mealint-no-such-file"]);
        assert_eq!(code, 2);
    }

    #[test]
    fn json_format_round_trips_through_the_obs_parser() {
        let bad = scratch(
            "json-bad.tdl",
            b"HOST WRITE x\nPASS in=x out=y {\n  COMP AXPY params=\"a.para\"\n}\nFLUSH\nHOST READ y\n",
        );
        let (code, stdout, _) = mealint(&["--format", "json", bad.to_str().unwrap()]);
        assert_eq!(code, 1, "{stdout}");
        let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
        assert!(!lines.is_empty(), "{stdout}");
        for line in lines {
            let v = mealib_obs::json::parse(line).expect("each line is one JSON object");
            let code = v.get("code").and_then(|c| c.as_str()).expect("code field");
            assert!(code.starts_with("MEA"), "{line}");
            let number = v
                .get("number")
                .and_then(|n| n.as_f64())
                .expect("number field");
            assert_eq!(number as u16, code[3..].parse::<u16>().unwrap(), "{line}");
            let severity = v
                .get("severity")
                .and_then(|s| s.as_str())
                .expect("severity");
            assert!(severity == "error" || severity == "warning", "{line}");
            let span = v.get("span").expect("span field");
            let kind = span
                .get("kind")
                .and_then(|k| k.as_str())
                .expect("span kind");
            match kind {
                "line" => {
                    span.get("line")
                        .and_then(|l| l.as_f64())
                        .expect("line number");
                }
                "bytes" => {
                    span.get("offset").and_then(|o| o.as_f64()).expect("offset");
                    span.get("len").and_then(|l| l.as_f64()).expect("len");
                }
                "none" => {}
                other => panic!("unknown span kind {other} in {line}"),
            }
            assert!(
                v.get("message").and_then(|m| m.as_str()).is_some(),
                "{line}"
            );
            assert!(v.get("file").and_then(|f| f.as_str()).is_some(), "{line}");
        }

        // The stale read fires at the device read site (the PASS header on
        // line 2) and must survive the round trip with its span intact.
        assert!(
            stdout.lines().any(|l| {
                mealib_obs::json::parse(l).is_ok_and(|v| {
                    v.get("code").and_then(|c| c.as_str()) == Some("MEA103")
                        && v.get("span")
                            .and_then(|s| s.get("line"))
                            .and_then(|l| l.as_f64())
                            == Some(2.0)
                })
            }),
            "{stdout}"
        );
    }

    #[test]
    fn json_format_prints_nothing_for_clean_files() {
        let good = scratch(
            "json-good.tdl",
            br#"PASS in=x out=y { COMP FFT params="f.para" }"#,
        );
        let (code, stdout, _) = mealint(&["--format", "json", good.to_str().unwrap()]);
        assert_eq!(code, 0, "{stdout}");
        assert!(stdout.trim().is_empty(), "{stdout}");
    }

    #[test]
    fn json_round_trips_for_the_whole_bad_corpus() {
        for path in super::dataflow_corpus::corpus_files("bad") {
            let (_, stdout, stderr) = mealint(&["--format", "json", path.to_str().unwrap()]);
            assert!(stderr.is_empty(), "{}: {stderr}", path.display());
            let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
            assert!(!lines.is_empty(), "{}: no diagnostics", path.display());
            for line in lines {
                let v = mealib_obs::json::parse(line)
                    .unwrap_or_else(|e| panic!("{}: bad JSON {e}: {line}", path.display()));
                for field in ["file", "code", "severity", "message"] {
                    assert!(
                        v.get(field).and_then(|f| f.as_str()).is_some(),
                        "{}: missing {field}: {line}",
                        path.display()
                    );
                }
                let kind = v
                    .get("span")
                    .and_then(|s| s.get("kind"))
                    .and_then(|k| k.as_str())
                    .expect("span kind");
                assert!(["none", "line", "bytes"].contains(&kind), "{line}");
            }
        }
    }

    #[test]
    fn codes_listing_documents_the_whole_table() {
        let (code, stdout, _) = mealint(&["--codes"]);
        assert_eq!(code, 0);
        for c in mealib_types::ErrorCode::ALL {
            assert!(stdout.contains(c.as_str()), "missing {c}");
        }
    }
}
