//! Differential soundness harness for the MEA3xx interference
//! certifier.
//!
//! Ground truth is the tagged interleaved cycle engine
//! ([`mealib_memsim::simulate_tenants`]), replayed in `DualCheck` mode
//! so the measurement itself is cross-validated between both engines.
//! Three families of guarantees are enforced:
//!
//! 1. **Containment** — on every corpus manifest (bad *and* clean) and
//!    on random 2–4-tenant mixes across all three interleaving modes,
//!    every per-tenant certified counter satisfies
//!    `lo <= measured <= hi`, and the set-level bounds contain the
//!    merged-run statistics. Bytes and bursts must be *exact*
//!    (`lo == hi`): tenant programs are affine with static trip
//!    counts, and disjoint partitions cannot change a tenant's own
//!    burst stream.
//! 2. **Differential corpus** — every `corpus/bad/mea3xx_*.set` draws
//!    the exact code its filename promises and REJECTs; its
//!    minimally-fixed `corpus/clean` twin draws zero MEA3xx findings
//!    and ADMITs.
//! 3. **Verdict faithfulness** — every REJECT is *confirmed* by the
//!    simulation (the measured run really violates the budget or
//!    isolation relation the diagnostic names), and no ADMIT-ed set
//!    measurably violates any declared budget.

use std::fs;
use std::path::PathBuf;

use mealib_memsim::{simulate_tenants, SimOptions};
use mealib_types::ErrorCode;
use mealib_verify::interference::{
    certify_set, compose, parse_session_set, resolved_set_config, tenant_streams, SessionSet,
};
use mealib_verify::{BoundsEnv, Verdict};
use proptest::prelude::*;

/// Every session-set manifest in a corpus directory, sorted.
fn set_sources(dir: &str) -> Vec<(String, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut files: Vec<PathBuf> = fs::read_dir(&root)
        .expect("corpus dir reads")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("set"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_str().unwrap().to_string();
            let src = fs::read_to_string(&p).expect("corpus file reads");
            (name, src)
        })
        .collect()
}

/// Replays `set` through the tagged dual-check engine and asserts
/// every composed interval contains its measurement.
fn assert_contained(name: &str, set: &SessionSet, env: &BoundsEnv) {
    let bounds = compose(set, env).expect("preset env validates");
    let cfg = resolved_set_config(set, env);
    let run = simulate_tenants(&cfg, &tenant_streams(set), &SimOptions::dual_check())
        .expect("merged replay succeeds");
    if let Some(violated) = bounds.set.check_contains(&run.stats) {
        panic!("{name}: set-level bounds violated: {violated}");
    }
    assert_eq!(bounds.tenants.len(), run.tenants.len(), "{name}");
    for (tb, m) in bounds.tenants.iter().zip(&run.tenants) {
        let t = &tb.name;
        // Affine programs with static trip counts: traffic is exact.
        assert!(tb.bytes_read.is_exact(), "{name}/{t}: bytes_read not exact");
        assert!(tb.read_bursts.is_exact(), "{name}/{t}: bursts not exact");
        let checks = [
            ("bytes_read", tb.bytes_read, m.bytes_read.get() as f64),
            (
                "bytes_written",
                tb.bytes_written,
                m.bytes_written.get() as f64,
            ),
            ("read_bursts", tb.read_bursts, m.read_bursts as f64),
            ("write_bursts", tb.write_bursts, m.write_bursts as f64),
            ("activations", tb.activations, m.activations as f64),
            ("cycles", tb.cycles, m.cycles.get() as f64),
            ("elapsed", tb.elapsed, m.elapsed.get()),
            ("energy", tb.energy, m.energy.get()),
        ];
        for (what, bound, measured) in checks {
            assert!(
                bound.contains(measured),
                "{name}/{t}: {what} measured {measured} outside certified {bound}"
            );
        }
    }
}

#[test]
fn every_corpus_set_is_certified_soundly() {
    let env = BoundsEnv::default();
    let mut n = 0;
    for dir in ["corpus/bad", "corpus/clean"] {
        for (name, src) in set_sources(dir) {
            let set = parse_session_set(&src).expect("corpus manifests parse");
            assert_contained(&name, &set, &env);
            n += 1;
        }
    }
    assert!(n >= 16, "expected >= 16 corpus manifests, found {n}");
}

/// Confirms a REJECT against the measured interleaved run: the
/// violation the diagnostic proves must actually happen.
fn confirm_reject(name: &str, set: &SessionSet, code: ErrorCode, env: &BoundsEnv) {
    let cfg = resolved_set_config(set, env);
    let run = simulate_tenants(&cfg, &tenant_streams(set), &SimOptions::default())
        .expect("merged replay succeeds");
    match code {
        ErrorCode::InterferePartitionOverlap => {
            // Isolation is a decidable relation over the declared
            // extents: re-derive it independently of the pass.
            let parts: Vec<_> = set.tenants.iter().filter_map(|t| t.partition).collect();
            let overlap = parts
                .iter()
                .enumerate()
                .any(|(i, (_, a))| parts.iter().skip(i + 1).any(|(_, b)| a.overlaps(b)));
            let leak = set.tenants.iter().any(|t| {
                t.partition.is_some_and(|(_, p)| {
                    t.session
                        .extents
                        .values()
                        .any(|e| !e.is_empty() && !p.contains_range(e))
                })
            });
            assert!(overlap || leak, "{name}: no measurable isolation violation");
        }
        ErrorCode::InterfereBusOversubscribed => {
            let budget = set.budgets.time_s.expect("MEA301 needs a set envelope");
            assert!(
                run.stats.elapsed.get() > budget,
                "{name}: measured set elapsed {} within the envelope {budget}",
                run.stats.elapsed.get()
            );
        }
        ErrorCode::InterfereLatencyBudget => {
            let broken = set.tenants.iter().zip(&run.tenants).any(|(decl, m)| {
                decl.session
                    .budgets
                    .time_s
                    .is_some_and(|b| m.elapsed.get() > b)
            });
            assert!(
                broken,
                "{name}: no tenant measurably misses its latency budget"
            );
        }
        ErrorCode::InterfereEnergyEnvelope => {
            let set_broken = set
                .budgets
                .energy_j
                .is_some_and(|b| run.stats.energy.get() > b);
            let tenant_broken = set.tenants.iter().zip(&run.tenants).any(|(decl, m)| {
                decl.session
                    .budgets
                    .energy_j
                    .is_some_and(|b| m.energy.get() > b)
            });
            assert!(
                set_broken || tenant_broken,
                "{name}: no measurable energy violation"
            );
        }
        other => panic!("{name}: unexpected corpus code {other}"),
    }
}

#[test]
fn bad_corpus_rejects_with_exact_codes_and_simulation_confirms() {
    let env = BoundsEnv::default();
    let mut seen = std::collections::BTreeMap::<u16, u32>::new();
    for (name, src) in set_sources("corpus/bad") {
        let number: u16 = name[3..6].parse().expect("mea<code>_* filename");
        let code = ErrorCode::ALL
            .into_iter()
            .find(|c| c.number() == number)
            .expect("filename names a real code");
        let set = parse_session_set(&src).expect("corpus manifests parse");
        let cert = certify_set(&set, &env).expect("preset env validates");
        assert_eq!(cert.verdict, Verdict::Reject, "{name}");
        assert!(
            cert.report.has_code(code),
            "{name}: expected {code}, got:\n{}",
            cert.report
        );
        confirm_reject(&name, &set, code, &env);
        *seen.entry(number).or_default() += 1;
    }
    for code in [300u16, 301, 302, 303] {
        assert!(
            seen.get(&code).copied().unwrap_or(0) >= 2,
            "need >= 2 bad manifests for MEA{code}, have {seen:?}"
        );
    }
}

#[test]
fn clean_twins_admit_and_no_admitted_set_measurably_violates() {
    let env = BoundsEnv::default();
    for (name, src) in set_sources("corpus/clean") {
        let set = parse_session_set(&src).expect("corpus manifests parse");
        let cert = certify_set(&set, &env).expect("preset env validates");
        assert!(cert.report.is_clean(), "{name}: {}", cert.report);
        assert_eq!(cert.verdict, Verdict::Admit, "{name}");

        // Faithfulness: an admitted set must keep every promise when
        // the mix actually runs.
        let cfg = resolved_set_config(&set, &env);
        let run = simulate_tenants(&cfg, &tenant_streams(&set), &SimOptions::default())
            .expect("merged replay succeeds");
        if let Some(b) = set.budgets.time_s {
            assert!(run.stats.elapsed.get() <= b, "{name}: set envelope broken");
        }
        if let Some(b) = set.budgets.energy_j {
            let accel: f64 = cert.bounds.tenants.iter().map(|t| t.accel_energy.hi).sum();
            assert!(
                run.stats.energy.get() + accel <= b,
                "{name}: energy envelope broken"
            );
        }
        for (decl, (m, tb)) in set
            .tenants
            .iter()
            .zip(run.tenants.iter().zip(&cert.bounds.tenants))
        {
            if let Some(b) = decl.session.budgets.time_s {
                assert!(
                    m.elapsed.get() <= b,
                    "{name}/{}: latency budget broken",
                    decl.name
                );
            }
            if let Some(b) = decl.session.budgets.energy_j {
                assert!(
                    m.energy.get() + tb.accel_energy.hi <= b,
                    "{name}/{}: energy budget broken",
                    decl.name
                );
            }
        }
    }
}

/// One randomly-generated tenant: partition slot, arrival phase, loop
/// trip count, and buffer geometry (two line-aligned buffers inside
/// the tenant's 16 MiB partition slot).
#[derive(Debug, Clone)]
struct GenTenant {
    arrival: u64,
    loops: u64,
    buf_len: u64,
    accel: &'static str,
}

fn gen_tenant() -> impl Strategy<Value = GenTenant> {
    (
        0u64..2048,
        1u64..=3,
        proptest::sample::select(vec![0x8000u64, 0x10000, 0x20000]),
        proptest::sample::select(vec!["FFT", "AXPY", "RESHP"]),
    )
        .prop_map(|(arrival, loops, buf_len, accel)| GenTenant {
            arrival,
            loops,
            buf_len,
            accel,
        })
}

/// Renders a manifest for `tenants` under `layer`, each tenant in its
/// own 16 MiB partition slot — disjoint by construction.
fn render_manifest(layer: &str, tenants: &[GenTenant]) -> String {
    const SLOT: u64 = 0x100_0000;
    let mut src = format!("{layer}\n");
    for (i, t) in tenants.iter().enumerate() {
        let base = i as u64 * SLOT;
        src.push_str(&format!(
            "TENANT t{i}\nPARTITION 0x{base:x} 0x{SLOT:x}\nARRIVAL {}\n",
            t.arrival
        ));
        let a = base + 0x1000;
        let b = base + SLOT / 2;
        src.push_str(&format!(
            "BUF in{i} 0x{a:x} 0x{len:x}\nBUF out{i} 0x{b:x} 0x{len:x}\n",
            len = t.buf_len
        ));
        src.push_str(&format!(
            "LOOP {} {{\n  PASS in=in{i} out=out{i} {{\n    COMP {} params=\"p.para\"\n  }}\n}}\n",
            t.loops, t.accel
        ));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random 2–4-tenant mixes across all three interleaving modes:
    /// the composed bounds must contain the interleaved measurement
    /// per tenant, traffic must certify exactly, and — partitions
    /// being disjoint and traffic fully priced — the verdict must be
    /// a proof (never UNKNOWN, never REJECT without a budget).
    #[test]
    fn random_mixes_are_certified_soundly(
        tenants in proptest::collection::vec(gen_tenant(), 2..=4),
        layer in proptest::sample::select(vec![
            "MEM INTERLEAVED",
            "MEM XOR",
            "MEM ASYM 0x1000000",
        ]),
    ) {
        let src = render_manifest(layer, &tenants);
        let set = parse_session_set(&src).expect("generated manifests parse");
        let env = BoundsEnv::default();
        assert_contained("random-mix", &set, &env);
        let cert = certify_set(&set, &env).expect("preset env validates");
        prop_assert_eq!(cert.verdict, Verdict::Admit);
    }
}
