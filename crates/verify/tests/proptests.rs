//! Property tests: the bijectivity proof must accept *every* valid
//! interleaving configuration — a prover that cries wolf on healthy
//! hardware would be disabled within a week — and the structural
//! validator must reject every degenerate one.

use mealib_memsim::address::AddressMapping;
use mealib_types::PhysAddr;
use mealib_verify::memsim::verify_mapping;
use mealib_verify::ErrorCode;
use proptest::prelude::*;

fn pow2(exp: u32) -> u64 {
    1 << exp
}

/// Plain interleaving with any unit/bank count and power-of-two
/// row/line geometry — always bijective (pure division/modulo).
fn interleaved() -> impl Strategy<Value = AddressMapping> {
    (1usize..=64, 1usize..=16, 10u32..=13, 6u32..=8).prop_map(
        |(units, banks_per_unit, row_exp, line_exp)| AddressMapping::Interleaved {
            units,
            banks_per_unit,
            row_bytes: pow2(row_exp),
            line_bytes: pow2(line_exp),
        },
    )
}

/// XOR-hashed interleaving: the folds are self-inverse only when the
/// unit and bank counts are powers of two, so that is what "valid"
/// means here.
fn xor_interleaved() -> impl Strategy<Value = AddressMapping> {
    (0u32..=5, 0u32..=4, 10u32..=13, 6u32..=8).prop_map(
        |(unit_exp, bank_exp, row_exp, line_exp)| AddressMapping::XorInterleaved {
            units: pow2(unit_exp) as usize,
            banks_per_unit: pow2(bank_exp) as usize,
            row_bytes: pow2(row_exp),
            line_bytes: pow2(line_exp),
        },
    )
}

/// §4.2 asymmetric mode with a line-aligned split.
fn asymmetric() -> impl Strategy<Value = AddressMapping> {
    (1usize..=8, 1usize..=16, 10u32..=13, 6u32..=8, 1u64..=65536).prop_map(
        |(low_units, banks_per_unit, row_exp, line_exp, split_lines)| {
            let line_bytes = pow2(line_exp);
            AddressMapping::Asymmetric {
                low_units,
                banks_per_unit,
                row_bytes: pow2(row_exp),
                line_bytes,
                split: PhysAddr::new(split_lines * line_bytes),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The proof never flags a valid plain interleave.
    #[test]
    fn every_valid_interleave_is_accepted(mapping in interleaved()) {
        let report = verify_mapping(&mapping);
        prop_assert!(report.is_clean(), "{mapping:?}:\n{report}");
    }

    /// The proof never flags a valid XOR interleave.
    #[test]
    fn every_valid_xor_interleave_is_accepted(mapping in xor_interleaved()) {
        let report = verify_mapping(&mapping);
        prop_assert!(report.is_clean(), "{mapping:?}:\n{report}");
    }

    /// The proof never flags a valid asymmetric split.
    #[test]
    fn every_valid_asymmetric_mapping_is_accepted(mapping in asymmetric()) {
        let report = verify_mapping(&mapping);
        prop_assert!(report.is_clean(), "{mapping:?}:\n{report}");
    }

    /// Degenerate geometry is rejected structurally (MEA022), never by
    /// the prover tripping over a division by zero.
    #[test]
    fn degenerate_parameters_draw_mea022(
        units in 0usize..=4,
        banks in 0usize..=4,
        row_bytes in 0u64..=4096,
        line_bytes in 0u64..=4096,
    ) {
        let valid = units > 0
            && banks > 0
            && row_bytes.is_power_of_two()
            && line_bytes.is_power_of_two()
            && line_bytes <= row_bytes;
        let mapping = AddressMapping::Interleaved {
            units,
            banks_per_unit: banks,
            row_bytes,
            line_bytes,
        };
        let report = verify_mapping(&mapping);
        prop_assert_eq!(
            report.has_code(ErrorCode::MemMappingParam),
            !valid,
            "{:?}:\n{}",
            mapping,
            report
        );
    }

    /// A misaligned asymmetric split is always caught.
    #[test]
    fn misaligned_split_draws_mea025(offset in 1u64..64) {
        let mapping = AddressMapping::Asymmetric {
            low_units: 2,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
            split: PhysAddr::new(1 << 20 | offset),
        };
        let report = verify_mapping(&mapping);
        prop_assert!(report.has_code(ErrorCode::MemBadAsymmetricSplit), "{report}");
    }
}
