//! The Table 2 datasets.
//!
//! One entry per accelerated function, with the paper's sizes:
//! 256M-element vectors (1 GB), 16384×16384 matrices (1 GB), the
//! `rgg_n_2_20` sparse matrix, 16384 resampling blocks, and the
//! 8192×8192 FFT batch (512 MB).

use mealib_accel::AccelParams;
use mealib_tdl::AcceleratorKind;

/// A named dataset row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// MKL function name.
    pub function: &'static str,
    /// Human-readable dataset description.
    pub description: &'static str,
    /// The accelerator parameters representing it.
    pub params: AccelParams,
}

/// All rows of Table 2, in paper order.
pub fn table2() -> Vec<DatasetRow> {
    vec![
        DatasetRow {
            function: "cblas_saxpy()",
            description: "256M vector (1GB)",
            params: AccelParams::Axpy {
                n: 256 << 20,
                alpha: 2.0,
                incx: 1,
                incy: 1,
            },
        },
        DatasetRow {
            function: "cblas_sdot()",
            description: "256M vector (1GB)",
            params: AccelParams::Dot {
                n: 256 << 20,
                incx: 1,
                incy: 1,
                complex: false,
            },
        },
        DatasetRow {
            function: "cblas_sgemv()",
            description: "16384 x 16384 matrix (1GB)",
            params: AccelParams::Gemv { m: 16384, n: 16384 },
        },
        DatasetRow {
            function: "mkl_scsrgemv()",
            description: "rgg_n_2_20-class RGG (synthetic)",
            params: AccelParams::Spmv {
                rows: 1 << 20,
                cols: 1 << 20,
                nnz: 13 * (1 << 20),
            },
        },
        DatasetRow {
            function: "dfsInterpolate1D()",
            description: "16384 blocks",
            params: AccelParams::Resmp {
                blocks: 16384,
                in_per_block: 8192,
                out_per_block: 8192,
            },
        },
        DatasetRow {
            function: "fftwf_execute()",
            description: "8192 x 8192 batch (512MB)",
            params: AccelParams::Fft {
                n: 8192,
                batch: 8192,
            },
        },
        DatasetRow {
            function: "mkl_simatcopy()",
            description: "16384 x 16384 matrix (1GB)",
            params: AccelParams::Reshp {
                rows: 16384,
                cols: 16384,
                elem_bytes: 4,
            },
        },
    ]
}

/// Looks up the Table 2 row for an accelerator kind.
pub fn for_kind(kind: AcceleratorKind) -> DatasetRow {
    table2()
        .into_iter()
        .find(|row| row.params.kind() == kind)
        .expect("every accelerator kind has a Table 2 row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_covers_all_seven_accelerators() {
        let rows = table2();
        assert_eq!(rows.len(), 7);
        for kind in AcceleratorKind::ALL {
            assert_eq!(for_kind(kind).params.kind(), kind);
        }
    }

    #[test]
    fn vector_datasets_are_one_gigabyte() {
        let axpy = for_kind(AcceleratorKind::Axpy);
        match axpy.params {
            AccelParams::Axpy { n, .. } => assert_eq!(n * 4, 1 << 30),
            other => panic!("{other:?}"),
        }
        let gemv = for_kind(AcceleratorKind::Gemv);
        match gemv.params {
            AccelParams::Gemv { m, n } => assert_eq!(m * n * 4, 1 << 30),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fft_dataset_is_512_mib() {
        match for_kind(AcceleratorKind::Fft).params {
            AccelParams::Fft { n, batch } => assert_eq!(n * batch * 8, 512 << 20),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_params_validate() {
        for row in table2() {
            assert!(row.params.validate().is_ok(), "{}", row.function);
        }
    }
}
