//! The Figure 1 experiment: performance gained by replacing original
//! code with high-performance library calls on commodity machines.
//!
//! Each benchmark is modeled as a weighted mix of library operations;
//! the "original" flavour runs the naive single-threaded implementations,
//! the "library" flavour the optimized ones — on one core
//! (single-thread lib) or all cores (multi-thread lib), matching the two
//! bar series of the figure.

use mealib_accel::AccelParams;
use mealib_host::{run_op, CodeFlavor, Platform};
use mealib_types::Seconds;

/// The benchmark suites of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// R statistical package benchmarks (accelerated with Intel MKL).
    R,
    /// PNNL PERFECT benchmarks (accelerated with Intel MKL).
    Perfect,
    /// PARSEC benchmarks (accelerated with an AVX library).
    Parsec,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::R => "R",
            Suite::Perfect => "PERFECT",
            Suite::Parsec => "PARSEC",
        }
    }
}

/// One Figure 1 benchmark: a named mix of library operations.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Suite it belongs to.
    pub suite: Suite,
    /// Benchmark name.
    pub name: &'static str,
    /// Operation mix (operation, relative weight).
    pub ops: Vec<(AccelParams, f64)>,
}

/// The modeled benchmark set. Mixes are chosen to reflect each
/// benchmark's dominant kernels (dense linear algebra for R, FFT/radar
/// pipelines for PERFECT, streaming math for PARSEC).
pub fn benchmarks() -> Vec<Benchmark> {
    let gemv = AccelParams::Gemv { m: 8192, n: 8192 };
    let dot = AccelParams::Dot {
        n: 1 << 24,
        incx: 1,
        incy: 1,
        complex: false,
    };
    let axpy = AccelParams::Axpy {
        n: 1 << 24,
        alpha: 1.1,
        incx: 1,
        incy: 1,
    };
    let fft = AccelParams::Fft {
        n: 4096,
        batch: 2048,
    };
    let resmp = AccelParams::Resmp {
        blocks: 4096,
        in_per_block: 2048,
        out_per_block: 2048,
    };
    let spmv = AccelParams::Spmv {
        rows: 1 << 18,
        cols: 1 << 18,
        nnz: 13 << 18,
    };
    vec![
        Benchmark {
            suite: Suite::R,
            name: "lm",
            ops: vec![(gemv, 0.8), (dot, 0.2)],
        },
        Benchmark {
            suite: Suite::R,
            name: "pca",
            ops: vec![(gemv, 0.6), (axpy, 0.4)],
        },
        Benchmark {
            suite: Suite::R,
            name: "kmeans",
            ops: vec![(dot, 0.7), (axpy, 0.3)],
        },
        Benchmark {
            suite: Suite::Perfect,
            name: "stap",
            ops: vec![(fft, 0.5), (dot, 0.5)],
        },
        Benchmark {
            suite: Suite::Perfect,
            name: "sar",
            ops: vec![(fft, 0.6), (resmp, 0.4)],
        },
        Benchmark {
            suite: Suite::Perfect,
            name: "wami",
            ops: vec![(fft, 0.3), (gemv, 0.7)],
        },
        Benchmark {
            suite: Suite::Parsec,
            name: "streamcluster",
            ops: vec![(dot, 0.9), (axpy, 0.1)],
        },
        Benchmark {
            suite: Suite::Parsec,
            name: "canneal",
            ops: vec![(spmv, 0.6), (dot, 0.4)],
        },
    ]
}

/// Speedups of one benchmark: (single-thread library, multi-thread
/// library), both over the original code.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Point {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Single-threaded library speedup.
    pub single_thread: f64,
    /// Multi-threaded library speedup.
    pub multi_thread: f64,
}

fn mix_time(platform: &Platform, ops: &[(AccelParams, f64)], flavor: CodeFlavor) -> Seconds {
    ops.iter()
        .map(|(op, w)| run_op(platform, op, flavor).time * *w)
        .sum()
}

/// Runs the Figure 1 experiment on the Haswell-class machine.
pub fn speedups() -> Vec<Fig1Point> {
    let multi = Platform::haswell();
    let single = Platform {
        cores: 1,
        thread_efficiency: 1.0,
        ..Platform::haswell()
    };
    benchmarks()
        .into_iter()
        .map(|b| {
            let naive = mix_time(&single, &b.ops, CodeFlavor::Naive);
            let lib1 = mix_time(&single, &b.ops, CodeFlavor::Library);
            let libn = mix_time(&multi, &b.ops, CodeFlavor::Library);
            Fig1Point {
                benchmark: b,
                single_thread: naive / lib1,
                multi_thread: naive / libn,
            }
        })
        .collect()
}

/// Modeled multi-threaded library time for one benchmark's op mix on
/// the Haswell machine — the denominator of the Figure 1 speedups
/// (used by the harness's `--profile` timeline).
pub fn library_time(b: &Benchmark) -> Seconds {
    mix_time(&Platform::haswell(), &b.ops, CodeFlavor::Library)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_gains_from_the_library() {
        for p in speedups() {
            assert!(
                p.multi_thread > 1.5,
                "{}: multi-thread speedup {:.1}",
                p.benchmark.name,
                p.multi_thread
            );
            assert!(
                p.multi_thread >= p.single_thread * 0.99,
                "{}: more threads cannot lose ({:.1} vs {:.1})",
                p.benchmark.name,
                p.multi_thread,
                p.single_thread
            );
        }
    }

    #[test]
    fn speedups_land_in_fig1_range() {
        // Paper: up to 27x (R), 42x (PERFECT), 24x (PARSEC); bars from
        // ~5x up.
        let points = speedups();
        let max = points
            .iter()
            .map(|p| p.multi_thread)
            .fold(0.0_f64, f64::max);
        let min = points
            .iter()
            .map(|p| p.multi_thread)
            .fold(f64::INFINITY, f64::min);
        assert!((15.0..80.0).contains(&max), "max speedup {max:.1}");
        assert!((1.5..15.0).contains(&min), "min speedup {min:.1}");
    }

    #[test]
    fn perfect_suite_contains_the_flagship_gain() {
        // The 42x flagship of the figure is a PERFECT benchmark.
        let points = speedups();
        let best = points
            .iter()
            .max_by(|a, b| a.multi_thread.total_cmp(&b.multi_thread))
            .expect("nonempty");
        assert_eq!(
            best.benchmark.suite,
            Suite::Perfect,
            "{}",
            best.benchmark.name
        );
    }

    #[test]
    fn all_suites_are_represented() {
        let points = speedups();
        for suite in [Suite::R, Suite::Perfect, Suite::Parsec] {
            assert!(points.iter().any(|p| p.benchmark.suite == suite));
        }
    }
}
