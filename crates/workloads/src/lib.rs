//! Workloads of the MEALib evaluation.
//!
//! * [`stap`] — the Space-Time Adaptive Processing application (PNNL
//!   PERFECT), both as a functional pipeline on the MEALib API and as a
//!   modeled end-to-end comparison (Figures 13/14, Table 4);
//! * [`sar`] — the SAR resample→FFT chaining scenario and the
//!   hardware-loop experiment (Figure 12);
//! * [`fig1`] — the library-vs-original-code benchmark models behind
//!   Figure 1 (R, PERFECT, PARSEC suites);
//! * [`rgg`] — a random-geometric-graph sparse-matrix generator standing
//!   in for `rgg_n_2_20` from the UF Sparse Matrix Collection;
//! * [`datasets`] — the Table 2 dataset definitions;
//! * [`sessions`] — the same pipelines exported as TDL analysis
//!   sessions for the static-bounds certifier and its soundness
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod fig1;
pub mod rgg;
pub mod sar;
pub mod sessions;
pub mod stap;
