//! Random-geometric-graph sparse matrices.
//!
//! The paper's SPMV dataset is `rgg_n_2_20` from the UF Sparse Matrix
//! Collection: the adjacency matrix of a random geometric graph with
//! 2²⁰ vertices (average degree ≈ 13, symmetric, strong spatial
//! locality). The collection is not available offline, so this module
//! generates an equivalent matrix: `n` points uniform in the unit
//! square, an edge between points closer than radius `r`, with `r`
//! chosen for a target average degree. Spatial locality — the property
//! SPMV performance actually depends on — is preserved by construction,
//! and vertex numbering follows a grid-major order like the original's
//! coordinate sort.

use mealib_kernels::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an RGG adjacency matrix with `n` vertices and approximately
/// `target_degree` average non-zeros per row. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n == 0` or `target_degree <= 0`.
pub fn generate(n: usize, target_degree: f64, seed: u64) -> CsrMatrix {
    assert!(n > 0, "vertex count must be nonzero");
    assert!(target_degree > 0.0, "target degree must be positive");
    // Expected degree of an RGG in the unit square is ~ n·π·r²; solve
    // for r.
    let r = (target_degree / (std::f64::consts::PI * n as f64)).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();

    // Grid-major vertex order (the collection's matrices are coordinate
    // sorted, giving the banded structure SPMV locality depends on).
    let cells = (1.0 / r).floor().max(1.0) as usize;
    pts.sort_by(|a, b| {
        let ka = cell_key(*a, cells, r);
        let kb = cell_key(*b, cells, r);
        ka.cmp(&kb)
    });

    // Bucket points into cells for O(n·deg) neighbour search.
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); cells * cells];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p, cells, r);
        grid[cy * cells + cx].push(i);
    }

    let r2 = r * r;
    let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
    for (i, &(px, py)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of((px, py), cells, r);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if j <= i {
                        continue; // handle each pair once
                    }
                    let (qx, qy) = pts[j];
                    let d2 = (px - qx) * (px - qx) + (py - qy) * (py - qy);
                    if d2 <= r2 {
                        // Symmetric adjacency with unit-ish weights.
                        let w = 1.0 - (d2 / r2) as f32 * 0.5;
                        triplets.push((i, j, w));
                        triplets.push((j, i, w));
                    }
                }
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// The full-size dataset of Table 2: 2²⁰ vertices, degree ≈ 13.
pub fn rgg_n_2_20() -> CsrMatrix {
    generate(1 << 20, 13.0, 0x2_2015)
}

/// A scaled-down variant for tests and examples (2¹⁴ vertices).
pub fn rgg_small() -> CsrMatrix {
    generate(1 << 14, 13.0, 0x2_2015)
}

fn cell_of(p: (f64, f64), cells: usize, r: f64) -> (usize, usize) {
    let _ = r;
    let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
    let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
    (cx, cy)
}

fn cell_key(p: (f64, f64), cells: usize, r: f64) -> (usize, usize) {
    let (cx, cy) = cell_of(p, cells, r);
    (cy, cx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_approximates_target() {
        let m = generate(1 << 13, 13.0, 7);
        let deg = m.avg_degree();
        assert!(
            (8.0..18.0).contains(&deg),
            "average degree {deg:.1} too far from target 13"
        );
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = generate(2048, 10.0, 42);
        for row in 0..m.rows() {
            for (col, v) in m.row_entries(row) {
                let back = m.row_entries(col).find(|&(c, _)| c == row).map(|(_, w)| w);
                assert_eq!(back, Some(v), "asymmetry at ({row},{col})");
            }
        }
    }

    #[test]
    fn no_self_loops() {
        let m = generate(4096, 12.0, 3);
        for row in 0..m.rows() {
            assert!(m.row_entries(row).all(|(c, _)| c != row));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(1024, 8.0, 5);
        let b = generate(1024, 8.0, 5);
        let c = generate(1024, 8.0, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn grid_order_gives_spatial_locality() {
        // With grid-major numbering most edges connect nearby indices:
        // the mean index distance must be far below the random-order
        // expectation (n/3).
        let n = 1 << 12;
        let m = generate(n, 12.0, 11);
        let mut dist_sum = 0u64;
        let mut edges = 0u64;
        for row in 0..m.rows() {
            for (col, _) in m.row_entries(row) {
                dist_sum += row.abs_diff(col) as u64;
                edges += 1;
            }
        }
        let mean = dist_sum as f64 / edges as f64;
        assert!(
            mean < n as f64 / 8.0,
            "mean index distance {mean:.0} suggests no locality"
        );
    }

    #[test]
    fn spmv_runs_on_generated_matrix() {
        let m = rgg_small();
        assert_eq!(m.rows(), 1 << 14);
        let x = vec![1.0f32; m.cols()];
        let y = m.spmv(&x);
        // Row sums equal weighted degrees: positive for connected rows.
        assert!(y.iter().any(|&v| v > 0.0));
    }
}
