//! The SAR configuration-efficiency experiments (§5.4, Figure 12).
//!
//! * **Chaining** (Fig. 12a): SAR image formation needs `RESMP` then
//!   `FFT` per image. Hardware chaining streams the intermediate through
//!   the tiles' Local Memories; software chaining round-trips it through
//!   DRAM and pays a second invocation.
//! * **Loop** (Fig. 12b): 128 FFTs issued as one descriptor with a
//!   `LOOP 128` block versus 128 descriptor invocations from a host
//!   `for` loop.

use mealib::{Mealib, MealibError, OpReport};
use mealib_accel::chain::{execute_chained, execute_unchained};
use mealib_accel::cu::{run_descriptor, CuCostModel};
use mealib_accel::{AccelParams, AcceleratorLayer};
use mealib_kernels::fft::Direction;
use mealib_runtime::CacheModel;
use mealib_tdl::{Descriptor, ParamBag};
use mealib_types::{Complex32, Seconds};
use std::collections::BTreeMap;

/// The problem sizes of Figure 12 (square image edge lengths).
pub const PROBLEM_SIZES: [usize; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// One (size, software time, hardware time) data point.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigPoint {
    /// Image edge length (pixels).
    pub size: usize,
    /// Software-managed time.
    pub software: Seconds,
    /// Hardware-managed time.
    pub hardware: Seconds,
}

impl ConfigPoint {
    /// Speedup of the hardware mechanism.
    pub fn gain(&self) -> f64 {
        self.software / self.hardware
    }
}

/// The SAR chain for an `n × n` image: per-row complex resampling, then
/// a length-`n` FFT per row.
pub fn sar_stages(n: usize) -> Vec<AccelParams> {
    vec![
        AccelParams::Resmp {
            blocks: n as u64,
            // Complex samples as f32 pairs.
            in_per_block: 2 * n as u64,
            out_per_block: 2 * n as u64,
        },
        AccelParams::Fft {
            n: n as u64,
            batch: n as u64,
        },
    ]
}

/// Host-side cost of one accelerator invocation inside a tight loop:
/// warm-cache `wbinvd` plus the driver round trip and descriptor copy.
fn invocation_overhead() -> Seconds {
    let cache = CacheModel::haswell();
    cache.repeat_invocation_latency() + cache.descriptor_copy_time(1024)
}

/// Figure 12a: hardware vs software chaining across problem sizes.
pub fn chaining_sweep() -> Vec<ConfigPoint> {
    let layer = AcceleratorLayer::mealib_default();
    PROBLEM_SIZES
        .iter()
        .map(|&size| {
            let stages = sar_stages(size);
            let hw = execute_chained(&stages, layer.hw(), layer.mem());
            let sw = execute_unchained(&stages, layer.hw(), layer.mem(), invocation_overhead());
            ConfigPoint {
                size,
                software: sw.time + invocation_overhead(),
                hardware: hw.time + invocation_overhead(),
            }
        })
        .collect()
}

/// Figure 12b: a hardware `LOOP 128` of FFTs vs 128 software
/// invocations, across problem sizes.
pub fn loop_sweep(iterations: u64) -> Vec<ConfigPoint> {
    let layer = AcceleratorLayer::mealib_default();
    let cost = CuCostModel::default();
    PROBLEM_SIZES
        .iter()
        .map(|&size| {
            let fft = AccelParams::Fft {
                n: size as u64,
                batch: size as u64,
            };
            let buffers: BTreeMap<String, u64> =
                [("a".to_string(), 0x1000u64), ("b".to_string(), 0x2000_0000)]
                    .into_iter()
                    .collect();
            let mut bag = ParamBag::new();
            bag.insert("f.para".into(), fft.to_bytes());

            // Hardware loop: one descriptor.
            let hw_tdl =
                format!("LOOP {iterations} {{ PASS in=a out=b {{ COMP FFT params=\"f.para\" }} }}");
            let hw_desc = Descriptor::encode(
                &mealib_tdl::parse(&hw_tdl).expect("well-formed"),
                &bag,
                &buffers,
            )
            .expect("encodable");
            let hw_run = run_descriptor(&hw_desc, &layer, &cost).expect("runnable");
            let hardware = hw_run.total_time() + invocation_overhead();

            // Software loop: the same descriptor without the LOOP,
            // invoked `iterations` times from the host.
            let sw_tdl = "PASS in=a out=b { COMP FFT params=\"f.para\" }";
            let sw_desc = Descriptor::encode(
                &mealib_tdl::parse(sw_tdl).expect("well-formed"),
                &bag,
                &buffers,
            )
            .expect("encodable");
            let sw_run = run_descriptor(&sw_desc, &layer, &cost).expect("runnable");
            let software = (sw_run.total_time() + invocation_overhead()) * iterations as f64;

            ConfigPoint {
                size,
                software,
                hardware,
            }
        })
        .collect()
}

/// Output of one functional SAR image formation.
#[derive(Debug, Clone, PartialEq)]
pub struct SarImage {
    /// Edge length of the (square) formed image.
    pub size: usize,
    /// Total spectral energy of the formed image (a checksum-grade
    /// summary of the numerics).
    pub energy: f32,
    /// Modeled cost of the accelerated chain.
    pub report: OpReport,
}

/// Forms an `n × n` SAR image functionally on the MEALib API: range
/// resampling chained into the range FFT in *one* hardware pass
/// (§5.4's RESMP→FFT datapath), then the azimuth FFT across the other
/// dimension, computed host-side with the 2D decomposition.
///
/// `raw` holds the `n × n` phase-history samples row-major.
///
/// # Errors
///
/// Returns API errors (allocation, shape).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `raw` has the wrong length.
pub fn form_image(ml: &mut Mealib, raw: &[Complex32], n: usize) -> Result<SarImage, MealibError> {
    assert!(n.is_power_of_two(), "image edge must be a power of two");
    assert_eq!(raw.len(), n * n, "raw phase history must be n x n");
    ml.alloc_c32("sar_raw", n * n)?;
    ml.alloc_c32("sar_range", n * n)?;
    ml.write_c32("sar_raw", raw)?;

    // Range direction: resample + FFT as one chained accelerator pass.
    let report = ml.resample_fft_chained("sar_raw", "sar_range", n, n, n)?;

    // Azimuth direction: FFT along columns (host-side in the functional
    // model; on hardware this is the second descriptor of the pipeline).
    let mut img = ml.read_c32("sar_range")?;
    img.truncate(n * n);
    // Rows were already transformed by the chain; apply the column pass
    // of the 2D decomposition: transpose, row-FFT, transpose back.
    let mut t = mealib_kernels::reshape::transpose(&img, n, n);
    mealib_kernels::FftPlan::new(n).execute_batch(&mut t, n, Direction::Forward);
    let formed = mealib_kernels::reshape::transpose(&t, n, n);

    let energy: f32 = formed.iter().map(|z| z.norm_sqr()).sum();
    for name in ["sar_raw", "sar_range"] {
        ml.free(name)?;
    }
    Ok(SarImage {
        size: n,
        energy,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_kernels::fft::fft_2d;

    #[test]
    fn chaining_gains_match_fig12a_shape() {
        let points = chaining_sweep();
        assert_eq!(points.len(), PROBLEM_SIZES.len());
        let first = points.first().expect("nonempty").gain();
        let last = points.last().expect("nonempty").gain();
        // Paper: 2.5x at 256², shrinking with size, never below 1.
        assert!((1.5..4.0).contains(&first), "gain at 256: {first:.2}");
        assert!(last < first, "gain must shrink: {first:.2} -> {last:.2}");
        assert!(last >= 1.0, "chaining never loses: {last:.2}");
        // Monotone non-increasing.
        for w in points.windows(2) {
            assert!(
                w[1].gain() <= w[0].gain() * 1.05,
                "non-monotone at {}",
                w[1].size
            );
        }
    }

    #[test]
    fn loop_gains_match_fig12b_shape() {
        let points = loop_sweep(128);
        let first = points.first().expect("nonempty").gain();
        let last = points.last().expect("nonempty").gain();
        // Paper: 9.5x at 256², decreasing with problem size.
        assert!((4.0..20.0).contains(&first), "gain at 256: {first:.2}");
        assert!(last < first, "gain must shrink: {first:.2} -> {last:.2}");
        assert!(last >= 1.0);
    }

    #[test]
    fn loop_gain_exceeds_chain_gain_at_small_sizes() {
        // The paper's two plots: 9.5x (loop) vs 2.5x (chain) at 256².
        let chain = chaining_sweep()[0].gain();
        let lp = loop_sweep(128)[0].gain();
        assert!(lp > chain, "loop {lp:.2} vs chain {chain:.2}");
    }

    #[test]
    fn image_formation_is_numerically_consistent() {
        // Identity resampling (in == out grid) means the pipeline reduces
        // to a 2D FFT, which we can check against the kernel directly.
        let n = 64;
        let raw: Vec<Complex32> = (0..n * n)
            .map(|i| Complex32::new((i as f32 * 0.013).sin(), (i as f32 * 0.029).cos()))
            .collect();
        let mut ml = Mealib::builder().build();
        let image = form_image(&mut ml, &raw, n).unwrap();

        let mut want = raw.clone();
        fft_2d(&mut want, n, n, Direction::Forward);
        let want_energy: f32 = want.iter().map(|z| z.norm_sqr()).sum();
        let rel = (image.energy - want_energy).abs() / want_energy;
        assert!(rel < 1e-3, "energy {} vs {}", image.energy, want_energy);
        assert!(image.report.time().get() > 0.0);
    }

    #[test]
    fn sar_stage_parameters_validate() {
        for size in PROBLEM_SIZES {
            for p in sar_stages(size) {
                assert!(p.validate().is_ok(), "{p:?}");
            }
        }
    }
}
