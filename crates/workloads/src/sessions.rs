//! TDL analysis-session exporters for the evaluation pipelines.
//!
//! The static-bounds certifier (`mealib-verify::bounds`) and its
//! differential soundness harness need the real pipelines expressed as
//! analysis sessions: TDL text plus `BUF` directives whose extents are
//! derived from the same dataset geometry the modeled runs use. These
//! exporters keep that geometry in one place so the analyzer certifies
//! the *same* programs the evaluation measures — not hand-approximated
//! twins.
//!
//! Buffers are laid out contiguously from a small base with
//! line-aligned starts, matching how the runtime's bump allocator
//! places device buffers.

use crate::stap::StapConfig;

/// Bytes per complex f32 sample (interleaved re/im pairs).
const COMPLEX_BYTES: u64 = 8;

/// Alignment for exported buffer extents.
const ALIGN: u64 = 4096;

fn align_up(x: u64) -> u64 {
    x.div_ceil(ALIGN) * ALIGN
}

/// Lays out `bufs` (name, byte length) contiguously and renders the
/// `BUF` directive block.
fn buf_block(bufs: &[(&str, u64)]) -> String {
    let mut out = String::new();
    let mut base = ALIGN;
    for (name, len) in bufs {
        out.push_str(&format!("BUF {name} 0x{base:x} 0x{len:x}\n"));
        base += align_up(*len);
    }
    out
}

/// The STAP front-end (reshape + Doppler FFT) as an explicit coherence
/// session, with extents sized from `cfg`'s datacube geometry.
pub fn stap_session(cfg: &StapConfig) -> String {
    let cube = cfg.datacube_elems() as u64 * COMPLEX_BYTES;
    let mut src = buf_block(&[("datacube", cube), ("padded", cube), ("doppler", cube)]);
    src.push_str(
        "HOST WRITE datacube\n\
         FLUSH\n\
         PASS in=datacube out=padded {\n\
         \x20 COMP RESHP params=\"stap.reshp.para\"\n\
         }\n\
         PASS in=padded out=doppler {\n\
         \x20 COMP FFT params=\"stap.fft.para\"\n\
         }\n\
         FLUSH\n\
         HOST READ doppler\n",
    );
    src
}

/// The SAR resample→FFT chaining scenario for an `n`-pulse image: one
/// pass with the two comps chained, extents sized to the `n x n`
/// complex working set.
pub fn sar_chaining_session(n: usize) -> String {
    let image = (n * n) as u64 * COMPLEX_BYTES;
    let mut src = buf_block(&[("raw", image), ("range", image)]);
    src.push_str(
        "PASS in=raw out=range {\n\
         \x20 COMP RESMP params=\"sar.resmp.para\"\n\
         \x20 COMP FFT params=\"sar.fft.para\"\n\
         }\n",
    );
    src
}

/// The SAR hardware-loop experiment: `iterations` round trips of a
/// range-compression FFT followed by azimuth GEMV, as a seeded loop
/// session.
pub fn sar_loop_session(n: usize, iterations: u64) -> String {
    let image = (n * n) as u64 * COMPLEX_BYTES;
    let mut src = buf_block(&[("pulse", image), ("range", image)]);
    src.push_str(&format!(
        "HOST WRITE pulse\n\
         FLUSH\n\
         LOOP {iterations} {{\n\
         \x20 PASS in=pulse out=range {{\n\
         \x20   COMP FFT params=\"sar.fft.para\"\n\
         \x20 }}\n\
         \x20 PASS in=range out=pulse {{\n\
         \x20   COMP GEMV params=\"sar.gemv.para\"\n\
         \x20 }}\n\
         }}\n\
         FLUSH\n\
         HOST READ range\n\
         HOST READ pulse\n"
    ));
    src
}

/// Highest address any `BUF` directive in `src` touches — the byte
/// span a partition slot must cover to contain the session.
pub fn session_span(src: &str) -> u64 {
    src.lines()
        .filter(|l| l.starts_with("BUF "))
        .map(|l| {
            let toks: Vec<&str> = l.split_whitespace().collect();
            let base = u64::from_str_radix(toks[2].trim_start_matches("0x"), 16).unwrap();
            let len = u64::from_str_radix(toks[3].trim_start_matches("0x"), 16).unwrap();
            base + len
        })
        .max()
        .unwrap_or(0)
}

/// Total bytes the session's `BUF` directives declare — the resident
/// working set, as opposed to [`session_span`]'s highest touched
/// address (which includes alignment holes). The serving telemetry
/// reports this per class so bandwidth and byte counters can be read
/// against the footprint that produced them.
pub fn session_buffer_bytes(src: &str) -> u64 {
    src.lines()
        .filter(|l| l.starts_with("BUF "))
        .map(|l| {
            let toks: Vec<&str> = l.split_whitespace().collect();
            u64::from_str_radix(toks[3].trim_start_matches("0x"), 16).unwrap()
        })
        .sum()
}

/// Rewrites every `BUF` base in `src` up by `offset`, leaving the rest
/// of the session untouched — the shift that moves a canonical session
/// into a tenant's partition slot. The elaborated trace of the shifted
/// session is the canonical trace with every address raised by
/// `offset` (requests are issued at extent starts), which is what
/// makes partition rebasing exact rather than approximate.
pub fn rebase_session(src: &str, offset: u64) -> String {
    let mut out = String::new();
    for line in src.lines() {
        if let Some(rest) = line.strip_prefix("BUF ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            let base = u64::from_str_radix(toks[1].trim_start_matches("0x"), 16).unwrap();
            out.push_str(&format!(
                "BUF {} 0x{:x} {}\n",
                toks[0],
                base + offset,
                toks[2]
            ));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Every evaluation pipeline as a named session, at scales the
/// soundness harness can replay through both the analyzer and the
/// cycle engine in a debug-build test run (the exporters themselves
/// scale to the full Table 2 datasets).
pub fn pipeline_sessions() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for cfg in [
        StapConfig::tiny(),
        StapConfig::small(),
        StapConfig::medium(),
        StapConfig::large(),
    ] {
        out.push((format!("stap-{}", cfg.name), stap_session(&cfg)));
    }
    for n in [256usize, 1024] {
        out.push((format!("sar-chain-{n}"), sar_chaining_session(n)));
    }
    out.push(("sar-loop-256".into(), sar_loop_session(256, 16)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exported_extents_do_not_overlap() {
        for (name, src) in pipeline_sessions() {
            let mut ranges: Vec<(u64, u64)> = Vec::new();
            for line in src.lines().filter(|l| l.starts_with("BUF ")) {
                let toks: Vec<&str> = line.split_whitespace().collect();
                let base = u64::from_str_radix(toks[2].trim_start_matches("0x"), 16).unwrap();
                let len = u64::from_str_radix(toks[3].trim_start_matches("0x"), 16).unwrap();
                for &(b, l) in &ranges {
                    assert!(
                        base >= b + l || base + len <= b,
                        "{name}: overlapping extents"
                    );
                }
                ranges.push((base, len));
            }
            assert!(ranges.len() >= 2, "{name}: expected buffers");
        }
    }

    #[test]
    fn buffer_bytes_fit_inside_the_span_and_survive_rebase() {
        for (name, src) in pipeline_sessions() {
            let ws = session_buffer_bytes(&src);
            assert!(ws > 0, "{name}: empty working set");
            // The working set never exceeds the span (holes only add).
            assert!(ws <= session_span(&src), "{name}");
            // Rebasing moves extents without changing their sizes.
            assert_eq!(
                ws,
                session_buffer_bytes(&rebase_session(&src, 1 << 20)),
                "{name}"
            );
        }
    }

    #[test]
    fn rebase_shifts_only_buf_bases() {
        for (name, src) in pipeline_sessions() {
            let off = 1u64 << 24;
            let shifted = rebase_session(&src, off);
            assert_eq!(session_span(&shifted), session_span(&src) + off, "{name}");
            // Everything except the BUF lines is untouched.
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("BUF "))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&shifted), strip(&src), "{name}");
            assert_eq!(
                rebase_session(&src, 0),
                src,
                "{name}: zero shift is identity"
            );
        }
    }

    #[test]
    fn stap_session_scales_with_the_dataset() {
        let tiny = stap_session(&StapConfig::tiny());
        let large = stap_session(&StapConfig::large());
        assert!(tiny.len() <= large.len());
        assert!(tiny.contains("COMP RESHP"));
        assert!(large.contains("HOST READ doppler"));
    }
}
