//! Space-Time Adaptive Processing (STAP), the paper's real-world
//! application (§3.1, §5.5, Table 4, Figures 13-14).
//!
//! STAP processes a radar datacube (channels × pulses × range cells):
//! Doppler processing (data copy + batched FFT), covariance estimation
//! (`cherk`), weight solving (`ctrsm` after a Cholesky factorization),
//! adaptive-weight application (millions of small `cdotc` inner
//! products), and a final `saxpy` accumulation.
//!
//! Two faces:
//!
//! * [`run_functional`] — a real, numerically verified pipeline running
//!   on the [`mealib::Mealib`] API at a scaled-down size;
//! * [`run_on_haswell`] / [`run_on_mealib`] — the modeled end-to-end
//!   comparison at the paper's dataset sizes, with per-phase time and
//!   energy (the Figure 13 gains and Figure 14 breakdowns).

use std::collections::BTreeMap;

use mealib::{Complex32, Mealib, MealibError};
use mealib_accel::cu::{run_descriptor, CuCostModel, DescriptorRun};
use mealib_accel::trace_exec::generate_trace;
use mealib_accel::{AccelParams, AcceleratorLayer};
use mealib_host::{run_custom, run_op, CodeFlavor, Platform};
use mealib_kernels::blas3::{self, Side, Triangle};
use mealib_kernels::fft::Direction;
use mealib_memsim::engine::{simulate, SimOptions};
use mealib_obs::{Attribution, Breakdown, Obs, Phase, Profile, TraceRecorder};
use mealib_runtime::CacheModel;
use mealib_tdl::{AcceleratorKind, Descriptor, ParamBag};
use mealib_types::{Joules, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// STAP dataset geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StapConfig {
    /// Dataset label ("small"/"medium"/"large").
    pub name: &'static str,
    /// Antenna channels.
    pub n_chan: usize,
    /// Temporal degrees of freedom.
    pub tdof: usize,
    /// Doppler bins (pulses), a power of two.
    pub n_dop: usize,
    /// Training blocks.
    pub n_blocks: usize,
    /// Steering vectors.
    pub n_steering: usize,
    /// Training block size (range cells per block).
    pub tbs: usize,
}

impl StapConfig {
    /// The small dataset (PERFECT-like geometry: 16 channels, 5
    /// temporal taps, 80 space-time degrees of freedom).
    pub fn small() -> Self {
        Self {
            name: "small",
            n_chan: 16,
            tdof: 5,
            n_dop: 128,
            n_blocks: 32,
            n_steering: 8,
            tbs: 32,
        }
    }

    /// The medium dataset.
    pub fn medium() -> Self {
        Self {
            name: "medium",
            n_dop: 256,
            n_blocks: 48,
            n_steering: 12,
            tbs: 48,
            ..Self::small()
        }
    }

    /// The large dataset.
    pub fn large() -> Self {
        Self {
            name: "large",
            n_dop: 512,
            n_blocks: 64,
            n_steering: 16,
            tbs: 64,
            ..Self::small()
        }
    }

    /// A tiny configuration for functional verification.
    pub fn tiny() -> Self {
        Self {
            name: "tiny",
            n_chan: 2,
            tdof: 2,
            n_dop: 8,
            n_blocks: 2,
            n_steering: 2,
            tbs: 8,
        }
    }

    /// Space-time degrees of freedom (`TDOF * N_CHAN`).
    pub fn dof(&self) -> usize {
        self.tdof * self.n_chan
    }

    /// Range cells.
    pub fn ranges(&self) -> usize {
        self.n_blocks * self.tbs
    }

    /// Complex elements in the datacube.
    pub fn datacube_elems(&self) -> usize {
        self.n_chan * self.n_dop * self.ranges()
    }

    /// Dynamic `cblas_cdotc_sub` calls in the weight-application nest.
    pub fn cdotc_calls(&self) -> u64 {
        (self.n_dop * self.n_blocks * self.n_steering * self.tbs) as u64
    }

    /// Dynamic `cblas_saxpy` calls in the accumulation loop.
    pub fn saxpy_calls(&self) -> u64 {
        self.n_dop as u64
    }
}

/// Who executed a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// The host multicore.
    Host,
    /// A memory-side accelerator (tagged with its kind).
    Accelerator(AcceleratorKind),
    /// Host-side invocation overhead (cache flush, descriptor copy).
    Invocation,
}

/// Modeled cost of one pipeline phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Phase name (Table 4 function).
    pub name: &'static str,
    /// Who ran it.
    pub executor: Executor,
    /// Modeled time.
    pub time: Seconds,
    /// Modeled energy.
    pub energy: Joules,
}

/// A full modeled STAP run.
#[derive(Debug, Clone, PartialEq)]
pub struct StapRun {
    /// Platform label.
    pub platform: String,
    /// Per-phase costs, pipeline order.
    pub phases: Vec<PhaseCost>,
}

impl StapRun {
    /// Total time.
    pub fn total_time(&self) -> Seconds {
        self.phases.iter().map(|p| p.time).sum()
    }

    /// Total energy.
    pub fn total_energy(&self) -> Joules {
        self.phases.iter().map(|p| p.energy).sum()
    }

    /// Energy-delay product (the paper's efficiency metric, its ref. \[37\]).
    pub fn edp(&self) -> f64 {
        self.total_energy().get() * self.total_time().get()
    }

    /// Fraction of total time spent in phases matching `pred`.
    pub fn time_fraction(&self, pred: impl Fn(&PhaseCost) -> bool) -> f64 {
        let t: Seconds = self.phases.iter().filter(|p| pred(p)).map(|p| p.time).sum();
        t / self.total_time()
    }

    /// Fraction of total energy spent in phases matching `pred`.
    pub fn energy_fraction(&self, pred: impl Fn(&PhaseCost) -> bool) -> f64 {
        let e: Joules = self
            .phases
            .iter()
            .filter(|p| pred(p))
            .map(|p| p.energy)
            .sum();
        e.get() / self.total_energy().get()
    }
}

/// Table 4: the library functions STAP uses and their classification.
pub fn table4() -> Vec<(&'static str, &'static str, bool)> {
    // (function, purpose, memory_bounded)
    vec![
        ("fftwf_execute()", "data copy, FFT", true),
        ("cblas_cherk()", "rank-k matrix update", false),
        ("cblas_ctrsm()", "triangular matrix solver", false),
        ("cblas_cdotc_sub()", "inner production", true),
        ("cblas_saxpy()", "vector scaling", true),
    ]
}

/// Per-call host overhead of a fine-grained BLAS call (dispatch, argument
/// checking, loop bookkeeping).
const HOST_CALL_OVERHEAD: Seconds = Seconds::new(60e-9);

fn host_compute_phases(cfg: &StapConfig, platform: &Platform) -> Vec<PhaseCost> {
    let count = (cfg.n_dop * cfg.n_blocks) as u64;
    let dof = cfg.dof();
    // cherk: C (dof x dof) += A (dof x tbs) · Aᴴ, per (dop, block).
    let cherk_flops = count * blas3::cherk_flops(dof, cfg.tbs);
    let cherk_bytes = count * (dof * cfg.tbs * 8 + dof * dof * 8) as u64;
    let cherk = run_custom(
        platform,
        cherk_flops,
        cherk_bytes,
        0.55,
        0.8,
        count,
        HOST_CALL_OVERHEAD,
    );
    // ctrsm: two triangular solves per (dop, block) with n_steering RHS.
    let ctrsm_flops = 2 * count * blas3::ctrsm_flops(dof, cfg.n_steering);
    let ctrsm_bytes = count * (dof * dof * 8 + 2 * dof * cfg.n_steering * 8) as u64;
    let ctrsm = run_custom(
        platform,
        ctrsm_flops,
        ctrsm_bytes,
        0.35,
        0.8,
        2 * count,
        HOST_CALL_OVERHEAD,
    );
    vec![
        PhaseCost {
            name: "cherk",
            executor: Executor::Host,
            time: cherk.time,
            energy: cherk.energy,
        },
        PhaseCost {
            name: "ctrsm",
            executor: Executor::Host,
            time: ctrsm.time,
            energy: ctrsm.energy,
        },
    ]
}

/// Models the fully host-resident STAP (optimized MKL + OpenMP baseline).
pub fn run_on_haswell(cfg: &StapConfig) -> StapRun {
    let platform = Platform::haswell();
    let mut phases = Vec::new();

    // Doppler processing: data copy (reshape) + batched FFT.
    let reshp = run_op(
        &platform,
        &AccelParams::Reshp {
            rows: cfg.n_dop as u64,
            cols: (cfg.n_chan * cfg.ranges()) as u64,
            elem_bytes: 8,
        },
        CodeFlavor::Library,
    );
    phases.push(PhaseCost {
        name: "fftw (copy)",
        executor: Executor::Host,
        time: reshp.time,
        energy: reshp.energy,
    });
    let fft = run_op(
        &platform,
        &AccelParams::Fft {
            n: cfg.n_dop as u64,
            batch: (cfg.n_chan * cfg.ranges()) as u64,
        },
        CodeFlavor::Library,
    );
    phases.push(PhaseCost {
        name: "fftw (fft)",
        executor: Executor::Host,
        time: fft.time,
        energy: fft.energy,
    });

    phases.extend(host_compute_phases(cfg, &platform));

    // Millions of tiny cdotc calls: bandwidth plus call overheads (the
    // OpenMP nest spreads dispatch over the cores).
    let calls = cfg.cdotc_calls();
    let dof = cfg.dof() as u64;
    let threads = platform.cores as f64 * platform.thread_efficiency;
    let cdotc = run_custom(
        &platform,
        calls * 8 * dof,
        calls * (2 * dof * 8 + 8),
        0.5,
        0.85,
        calls,
        HOST_CALL_OVERHEAD / threads,
    );
    phases.push(PhaseCost {
        name: "cdotc",
        executor: Executor::Host,
        time: cdotc.time,
        energy: cdotc.energy,
    });

    // Final accumulation saxpy over doppler-major data.
    let saxpy_elems = 2 * cfg.ranges() as u64; // complex as two floats
    let saxpy = run_custom(
        &platform,
        cfg.saxpy_calls() * 2 * saxpy_elems,
        cfg.saxpy_calls() * 12 * saxpy_elems,
        0.85,
        0.88,
        cfg.saxpy_calls(),
        HOST_CALL_OVERHEAD,
    );
    phases.push(PhaseCost {
        name: "saxpy",
        executor: Executor::Host,
        time: saxpy.time,
        energy: saxpy.energy,
    });

    StapRun {
        platform: platform.name,
        phases,
    }
}

/// Builds, encodes, and runs one descriptor on the layer, returning the
/// full CU run (setup itemization, per-pass costs) — host invocation
/// overhead is not included.
fn run_tdl(layer: &AcceleratorLayer, tdl: &str, stages: &[(&str, AccelParams)]) -> DescriptorRun {
    let program = mealib_tdl::parse(tdl).expect("workload TDL is well-formed");
    let mut bag = ParamBag::new();
    for (file, p) in stages {
        bag.insert((*file).to_string(), p.to_bytes());
    }
    // Modeled run: buffer addresses are placeholders (the CU model only
    // prices traffic from the parameters).
    let mut buffers = BTreeMap::new();
    let mut next = 0x1000_0000u64;
    for name in ["a", "b", "c", "d", "w", "s", "p"] {
        buffers.insert(name.to_string(), next);
        next += 0x1000_0000;
    }
    let desc = Descriptor::encode(&program, &bag, &buffers).expect("encodable");
    run_descriptor(&desc, layer, &CuCostModel::default()).expect("runnable")
}

/// Models STAP on MEALib: memory-bounded phases on the accelerator layer
/// (three descriptors, as the compiler produces), compute-bounded phases
/// on the host, invocation overheads charged per descriptor (Fig. 14).
pub fn run_on_mealib(cfg: &StapConfig) -> StapRun {
    run_mealib_pipeline(cfg, None).0
}

/// Engine-cycle width of the DRAM timeline windows in
/// [`profile_on_mealib`].
pub const STAP_DRAM_WINDOW_CYCLES: u64 = 4096;

/// Footprint cap of each profiled DRAM replay: large enough to cover
/// thousands of bursts, small enough that profiling three descriptors
/// stays interactive.
const STAP_DRAM_TRACE_BYTES: u64 = 4 << 20;

/// Number of attribution windows the run's modeled time is split into.
const STAP_ATTRIBUTION_WINDOWS: f64 = 64.0;

/// A fully time-resolved STAP-on-MEALib run.
#[derive(Debug, Clone, PartialEq)]
pub struct StapProfile {
    /// The modeled phase costs ([`run_on_mealib`]'s view).
    pub run: StapRun,
    /// Phase/counter itemization; reconciles with `run`'s totals.
    pub breakdown: Breakdown,
    /// Time-resolved intervals (tracks `stap` and `cu`) plus
    /// cycle-windowed DRAM timelines (`dram:<phase>` tracks).
    pub profile: Profile,
    /// Roofline attribution against the Haswell host platform.
    pub attribution: Attribution,
}

/// The dominant accelerator traffic of a named offloaded phase
/// (`"fftw (chain)"`, `"cdotc"`, or `"saxpy"`), used to drive the
/// profiled DRAM replay. Must stay in sync with the descriptors
/// [`run_mealib_pipeline`] builds.
///
/// # Panics
///
/// Panics on any other phase name.
pub fn accel_phase_params(cfg: &StapConfig, name: &str) -> AccelParams {
    match name {
        "fftw (chain)" => AccelParams::Fft {
            n: cfg.n_dop as u64,
            batch: (cfg.n_chan * cfg.ranges()) as u64,
        },
        "cdotc" => AccelParams::Dot {
            n: cfg.dof() as u64,
            incx: 1,
            incy: 1,
            complex: true,
        },
        "saxpy" => AccelParams::Axpy {
            n: 2 * cfg.ranges() as u64,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        },
        other => unreachable!("no accelerator phase named {other}"),
    }
}

/// Models STAP on MEALib and builds the full time-resolved profile:
///
/// * a `stap` track with the host compute and invocation phases;
/// * a `cu` track with each descriptor's exact
///   fetch/decode/config/stream/compute/drain layout, anchored at the
///   phase's start (the gaps on `stap` are where the host idles while
///   the accelerators run);
/// * one `dram:<phase>` timeline per descriptor — the phase's dominant
///   traffic replayed through the profiled cycle engine in
///   [`STAP_DRAM_WINDOW_CYCLES`]-cycle windows;
/// * a windowed roofline [`Attribution`] against the Haswell host.
///
/// The profile's end time equals the run's total time, and the
/// attribution's windows cover 100% of it.
pub fn profile_on_mealib(cfg: &StapConfig) -> StapProfile {
    let rec = TraceRecorder::shared();
    let obs = Obs::new(rec);
    let (run, breakdown, runs) = run_mealib_pipeline(cfg, Some(&obs));
    let breakdown = breakdown.expect("breakdown collected when tracing");

    let layer = AcceleratorLayer::mealib_default();
    let t_ck = layer.mem().timing.t_ck;

    let mut profile = Profile::new();
    let mut cursor = Seconds::ZERO;
    let mut next_run = 0usize;
    for p in &run.phases {
        match p.executor {
            Executor::Host => {
                cursor = profile.interval("stap", Phase::Compute, p.name, cursor, p.time);
            }
            Executor::Invocation => {
                cursor = profile.interval("stap", Phase::Flush, p.name, cursor, p.time);
            }
            Executor::Accelerator(_) => {
                let start = cursor;
                cursor = Seconds::new(cursor.get() + p.time.get());
                let dr = &runs[next_run];
                next_run += 1;
                profile.intervals.extend(dr.intervals("cu", start));
                let params = accel_phase_params(cfg, p.name);
                let (trace, _scale) = generate_trace(&params, layer.hw(), STAP_DRAM_TRACE_BYTES);
                let opts = SimOptions::fast().profile(STAP_DRAM_WINDOW_CYCLES);
                let timeline = simulate(layer.mem(), &trace, &opts)
                    .expect("preset memory configuration validates")
                    .timeline
                    .expect("profiled run carries a timeline");
                profile.push_timeline(&format!("dram:{}", p.name), timeline, t_ck, start);
            }
        }
    }

    let total = profile.end_time();
    let window = Seconds::new(total.get() / STAP_ATTRIBUTION_WINDOWS);
    let attribution = Attribution::classify(&profile, &Platform::haswell().roofline(), window);
    StapProfile {
        run,
        breakdown,
        profile,
        attribution,
    }
}

/// Like [`run_on_mealib`], but additionally itemizes the run into a
/// [`Breakdown`] (phase taxonomy + DRAM/NoC/CU counters) and streams
/// every phase and counter into `obs`.
///
/// The breakdown's time and energy totals equal the returned
/// [`StapRun`]'s `total_time`/`total_energy` exactly: host phases map to
/// [`Phase::Compute`], invocation overhead to [`Phase::Flush`], and each
/// descriptor contributes its own plan/DMA/compute/drain split, with the
/// host's idle-while-accelerated energy folded into [`Phase::Dma`].
pub fn run_on_mealib_traced(cfg: &StapConfig, obs: &Obs) -> (StapRun, Breakdown) {
    let (run, breakdown, _) = run_mealib_pipeline(cfg, Some(obs));
    (run, breakdown.expect("breakdown collected when tracing"))
}

/// The shared pipeline model. With `obs == None` (the [`run_on_mealib`]
/// fast path) no [`Breakdown`] is assembled, no counters are replayed,
/// and no [`DescriptorRun`]s are retained, so the untraced run stays as
/// cheap as before instrumentation existed.
fn run_mealib_pipeline(
    cfg: &StapConfig,
    obs: Option<&Obs>,
) -> (StapRun, Option<Breakdown>, Vec<DescriptorRun>) {
    let platform = Platform::haswell();
    let layer = AcceleratorLayer::mealib_default();
    let cache = CacheModel::haswell();
    let mut phases = Vec::new();
    let mut breakdown = obs.map(|_| Breakdown::new());
    let mut runs: Vec<DescriptorRun> = Vec::new();

    // Descriptor 1: chained RESHP + FFT.
    let reshp = AccelParams::Reshp {
        rows: cfg.n_dop as u64,
        cols: (cfg.n_chan * cfg.ranges()) as u64,
        elem_bytes: 8,
    };
    let fft = AccelParams::Fft {
        n: cfg.n_dop as u64,
        batch: (cfg.n_chan * cfg.ranges()) as u64,
    };
    let run = run_tdl(
        &layer,
        "PASS in=a out=b { COMP RESHP params=\"r.para\" COMP FFT params=\"f.para\" }",
        &[("r.para", reshp), ("f.para", fft)],
    );
    let (t, e) = (run.total_time(), run.total_energy());
    if let Some(bd) = breakdown.as_mut() {
        bd.merge(&run.breakdown());
        runs.push(run);
    }
    phases.push(PhaseCost {
        name: "fftw (chain)",
        executor: Executor::Accelerator(AcceleratorKind::Fft),
        time: t,
        energy: e,
    });

    phases.extend(host_compute_phases(cfg, &platform));

    // Descriptor 2: the compacted cdotc loop.
    let dot = AccelParams::Dot {
        n: cfg.dof() as u64,
        incx: 1,
        incy: 1,
        complex: true,
    };
    let run = run_tdl(
        &layer,
        &format!(
            "LOOP {} {{ PASS in=w out=p {{ COMP DOT params=\"d.para\" }} }}",
            cfg.cdotc_calls()
        ),
        &[("d.para", dot)],
    );
    let (t, e) = (run.total_time(), run.total_energy());
    if let Some(bd) = breakdown.as_mut() {
        bd.merge(&run.breakdown());
        runs.push(run);
    }
    phases.push(PhaseCost {
        name: "cdotc",
        executor: Executor::Accelerator(AcceleratorKind::Dot),
        time: t,
        energy: e,
    });

    // Descriptor 3: the compacted saxpy loop.
    let axpy = AccelParams::Axpy {
        n: 2 * cfg.ranges() as u64,
        alpha: 1.0,
        incx: 1,
        incy: 1,
    };
    let run = run_tdl(
        &layer,
        &format!(
            "LOOP {} {{ PASS in=c out=d {{ COMP AXPY params=\"x.para\" }} }}",
            cfg.saxpy_calls()
        ),
        &[("x.para", axpy)],
    );
    let (t, e) = (run.total_time(), run.total_energy());
    if let Some(bd) = breakdown.as_mut() {
        bd.merge(&run.breakdown());
        runs.push(run);
    }
    phases.push(PhaseCost {
        name: "saxpy",
        executor: Executor::Accelerator(AcceleratorKind::Axpy),
        time: t,
        energy: e,
    });

    // Host-side invocation overhead: one wbinvd + driver round trip +
    // descriptor copy per descriptor (three descriptors total, §5.5).
    let flush = cache.flush_time() + cache.driver_latency();
    let copy = cache.descriptor_copy_time(4096);
    let inv_time = (flush + copy) * 3.0;
    let inv_energy = cache.flush_energy(inv_time);
    phases.push(PhaseCost {
        name: "invocation",
        executor: Executor::Invocation,
        time: inv_time,
        energy: inv_energy,
    });

    // The host idles (but stays powered) while the accelerators run; the
    // extra energy is charged to the DMA phase (zero extra time) so the
    // breakdown keeps reconciling with the run totals.
    for p in phases.iter_mut() {
        if matches!(p.executor, Executor::Accelerator(_)) {
            let idle = platform.package.idle.for_duration(p.time);
            p.energy += idle;
            if let Some(bd) = breakdown.as_mut() {
                bd.add_phase(Phase::Dma, Seconds::ZERO, idle);
            }
        }
    }
    if let (Some(bd), Some(obs)) = (breakdown.as_mut(), obs) {
        for p in &phases {
            match p.executor {
                Executor::Host => bd.add_phase(Phase::Compute, p.time, p.energy),
                Executor::Invocation => bd.add_phase(Phase::Flush, p.time, p.energy),
                Executor::Accelerator(_) => {}
            }
        }

        // DRAM/NoC/CU counters from the three descriptor runs.
        let rec = TraceRecorder::shared();
        let counter_obs = Obs::new(rec.clone());
        for run in &runs {
            run.record_into(&counter_obs);
        }
        bd.merge(&rec.breakdown());
        obs.record_breakdown(bd, cfg.name);
    }

    (
        StapRun {
            platform: "MEALib".into(),
            phases,
        },
        breakdown,
        runs,
    )
}

/// Figure 13 gains of MEALib over the optimized Haswell baseline.
pub fn gains(cfg: &StapConfig) -> (f64, f64) {
    let haswell = run_on_haswell(cfg);
    let mealib = run_on_mealib(cfg);
    let perf = haswell.total_time() / mealib.total_time();
    let edp = haswell.edp() / mealib.edp();
    (perf, edp)
}

/// Functional STAP outputs (scaled-down run).
#[derive(Debug, Clone, PartialEq)]
pub struct StapFunctional {
    /// Energy of the Doppler-processed datacube.
    pub doppler_energy: f32,
    /// Norm of the adaptive products.
    pub products_norm: f32,
    /// Modeled time of the accelerated calls.
    pub modeled_time: Seconds,
}

/// Runs a real (numerical) STAP pipeline on the MEALib API at the given
/// configuration. Keep the configuration tiny — the datacube is computed
/// element by element.
///
/// # Errors
///
/// Returns API errors (allocation, shape).
pub fn run_functional(cfg: &StapConfig, ml: &mut Mealib) -> Result<StapFunctional, MealibError> {
    let mut rng = StdRng::seed_from_u64(0x57A9_2015);
    let dof = cfg.dof();
    let batch = cfg.n_chan * cfg.ranges();
    let elems = cfg.datacube_elems();

    // Datacube: pulse-major complex samples.
    let datacube: Vec<Complex32> = (0..elems)
        .map(|_| Complex32::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5))
        .collect();
    ml.alloc_c32("datacube", elems)?;
    ml.alloc_c32("doppler", elems)?;
    ml.write_c32("datacube", &datacube)?;

    // Doppler processing: batched FFT along pulses.
    let fft_report = ml.fft("datacube", "doppler", cfg.n_dop, batch, Direction::Forward)?;
    let doppler = ml.read_c32("doppler")?;
    let doppler_energy: f32 = doppler.iter().map(|z| z.norm_sqr()).sum();

    // Covariance + weights per (dop, block) on the host (compute-bound).
    let mut modeled_time = fft_report.time();
    let mut products_norm = 0.0f32;
    ml.alloc_c32("w", dof)?;
    ml.alloc_c32("s", dof)?;
    for dop in 0..cfg.n_dop.min(4) {
        for block in 0..cfg.n_blocks {
            // Snapshot matrix A: dof x tbs drawn from the doppler data.
            let a: Vec<Complex32> = (0..dof * cfg.tbs)
                .map(|i| doppler[(dop * cfg.tbs * dof + i) % doppler.len()])
                .collect();
            let mut cov = vec![Complex32::ZERO; dof * dof];
            blas3::cherk(dof, cfg.tbs, 1.0, &a, 0.0, &mut cov);
            for d in 0..dof {
                cov[d * dof + d] += Complex32::new(cfg.tbs as f32, 0.0);
            }
            let l = blas3::cpotrf(dof, &cov);
            for sv in 0..cfg.n_steering {
                // Steering vector.
                let mut v: Vec<Complex32> = (0..dof)
                    .map(|k| Complex32::from_polar_unit(0.37 * (k * (sv + 1)) as f32))
                    .collect();
                // Solve R w = v via L (forward) then Lᴴ (backward).
                blas3::ctrsm(
                    Side::Left,
                    Triangle::Lower,
                    dof,
                    Complex32::ONE,
                    &l,
                    &mut v,
                    1,
                );
                let mut lh = vec![Complex32::ZERO; dof * dof];
                for i in 0..dof {
                    for j in 0..dof {
                        lh[i * dof + j] = l[j * dof + i].conj();
                    }
                }
                blas3::ctrsm(
                    Side::Left,
                    Triangle::Upper,
                    dof,
                    Complex32::ONE,
                    &lh,
                    &mut v,
                    1,
                );
                // Adaptive product through the accelerated cdotc.
                ml.write_c32("w", &v)?;
                ml.write_c32("s", &a[..dof])?;
                let (prod, report) = ml.cdotc("w", "s")?;
                products_norm += prod.norm_sqr();
                modeled_time += report.time();
            }
            let _ = block;
        }
    }
    for name in ["datacube", "doppler", "w", "s"] {
        ml.free(name)?;
    }
    Ok(StapFunctional {
        doppler_energy,
        products_norm,
        modeled_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_geometry_scales() {
        let s = StapConfig::small();
        let m = StapConfig::medium();
        let l = StapConfig::large();
        assert!(s.datacube_elems() < m.datacube_elems());
        assert!(m.datacube_elems() < l.datacube_elems());
        assert_eq!(s.dof(), 80);
        assert!(
            l.cdotc_calls() > 1_000_000,
            "large STAP has millions of cdotc calls"
        );
    }

    #[test]
    fn fig13_gains_grow_with_dataset_size() {
        let (p_s, e_s) = gains(&StapConfig::small());
        let (p_m, e_m) = gains(&StapConfig::medium());
        let (p_l, e_l) = gains(&StapConfig::large());
        assert!(
            p_s < p_m && p_m < p_l,
            "perf gains {p_s:.2} {p_m:.2} {p_l:.2}"
        );
        assert!(
            e_s < e_m && e_m < e_l,
            "EDP gains {e_s:.2} {e_m:.2} {e_l:.2}"
        );
        // Paper: 2.0x/2.3x/3.2x perf; 4.5x/9.0x/10.2x EDP.
        assert!((1.2..6.0).contains(&p_l), "large perf gain {p_l:.2}");
        assert!((3.0..25.0).contains(&e_l), "large EDP gain {e_l:.2}");
        assert!(e_l > p_l, "EDP gain exceeds perf gain");
    }

    #[test]
    fn fig14_host_dominates_time_and_energy() {
        let run = run_on_mealib(&StapConfig::large());
        let host_time = run.time_fraction(|p| p.executor == Executor::Host);
        let host_energy = run.energy_fraction(|p| p.executor == Executor::Host);
        // Paper: host ≈ 75% of time, ≈ 90% of energy.
        assert!(
            (0.4..0.95).contains(&host_time),
            "host time share {host_time:.2}"
        );
        assert!(
            host_energy > host_time,
            "energy share {host_energy:.2} vs {host_time:.2}"
        );
    }

    #[test]
    fn fig14_dot_dominates_the_accelerator_share() {
        let run = run_on_mealib(&StapConfig::large());
        let accel_time: Seconds = run
            .phases
            .iter()
            .filter(|p| matches!(p.executor, Executor::Accelerator(_)))
            .map(|p| p.time)
            .sum();
        let dot_time: Seconds = run
            .phases
            .iter()
            .filter(|p| p.executor == Executor::Accelerator(AcceleratorKind::Dot))
            .map(|p| p.time)
            .sum();
        let share = dot_time / accel_time;
        // Paper: DOT ≈ 60% of accelerator time.
        assert!((0.3..0.999).contains(&share), "DOT share {share:.2}");
    }

    #[test]
    fn fig14_invocation_overhead_is_small() {
        let run = run_on_mealib(&StapConfig::large());
        let inv = run.time_fraction(|p| p.executor == Executor::Invocation);
        // Paper: 3.3% of accelerator time; certainly < 10% of total.
        assert!(inv < 0.10, "invocation share {inv:.3}");
    }

    #[test]
    fn traced_breakdown_reconciles_with_run_totals() {
        let obs_rec = TraceRecorder::shared();
        let (run, bd) = run_on_mealib_traced(&StapConfig::small(), &Obs::new(obs_rec.clone()));
        let dt = (bd.total_time().get() - run.total_time().get()).abs();
        let de = (bd.total_energy().get() - run.total_energy().get()).abs();
        assert!(dt <= 1e-9 * run.total_time().get(), "time drift {dt}");
        assert!(de <= 1e-9 * run.total_energy().get(), "energy drift {de}");
        assert!(bd.counter(mealib_obs::Counter::DramAct) > 0);
        assert!(bd.counter(mealib_obs::Counter::CuPasses) > 0);
        // The recorder saw the same story.
        let seen = obs_rec.breakdown();
        assert!((seen.total_time().get() - run.total_time().get()).abs() <= 1e-9);
    }

    #[test]
    fn stap_profile_reconciles_exports_and_attributes_all_time() {
        let sp = profile_on_mealib(&StapConfig::small());
        let total = sp.run.total_time();
        // The profile spans exactly the run's modeled time.
        assert!(
            (sp.profile.end_time().get() - total.get()).abs() <= 1e-9 * total.get(),
            "profile end {} vs run total {}",
            sp.profile.end_time(),
            total
        );
        // Attribution covers 100% of it with contiguous windows.
        assert_eq!(sp.attribution.coverage(), 1.0);
        assert!((sp.attribution.total.get() - total.get()).abs() <= 1e-9 * total.get());
        for pair in sp.attribution.windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Tracks: stap (host phases), cu (descriptor layout), and one
        // DRAM timeline per descriptor.
        let tracks = sp.profile.track_names();
        assert!(tracks.contains(&"stap".to_string()), "{tracks:?}");
        assert!(tracks.contains(&"cu".to_string()), "{tracks:?}");
        let dram = tracks.iter().filter(|t| t.starts_with("dram:")).count();
        assert_eq!(dram, 3, "{tracks:?}");
        // The export is Perfetto-loadable and passes the round-trip
        // checker, with counter samples from the DRAM timelines.
        let doc = sp.profile.to_chrome_trace();
        let summary = mealib_obs::validate_chrome_trace(&doc).expect("valid trace");
        assert!(summary.spans >= sp.profile.intervals.len());
        assert!(summary.counters > 0, "DRAM timelines must emit counters");
        // Fig 14: the host dominates STAP time, and the attribution's
        // time-resolved view agrees in aggregate.
        assert!(
            sp.attribution.share(mealib_obs::Bound::Compute) > 0.3,
            "compute share {:.3}",
            sp.attribution.share(mealib_obs::Bound::Compute)
        );
        // Breakdown still reconciles.
        let dt = (sp.breakdown.total_time().get() - total.get()).abs();
        assert!(dt <= 1e-9 * total.get(), "breakdown drift {dt}");
    }

    #[test]
    fn table4_lists_five_functions() {
        let t = table4();
        assert_eq!(t.len(), 5);
        assert_eq!(t.iter().filter(|(_, _, mem)| *mem).count(), 3);
    }

    #[test]
    fn functional_stap_produces_finite_results() {
        let mut ml = Mealib::builder().build();
        let out = run_functional(&StapConfig::tiny(), &mut ml).unwrap();
        assert!(out.doppler_energy.is_finite() && out.doppler_energy > 0.0);
        assert!(out.products_norm.is_finite() && out.products_norm > 0.0);
        assert!(out.modeled_time.get() > 0.0);
    }
}
