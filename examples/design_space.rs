//! Architecting an accelerator under a power budget (§5.3): sweep the
//! FFT accelerator's design space and pick the Pareto-best point under a
//! given power constraint.
//!
//! Run with: `cargo run --example design_space`

use mealib_accel::design_space::{
    best_under_budget, fft_reference_workload, pareto_frontier, sweep, SweepGrid,
};
use mealib_memsim::MemoryConfig;
use mealib_tdl::AcceleratorKind;

fn main() {
    let grid = SweepGrid::default();
    let points = sweep(
        AcceleratorKind::Fft,
        &fft_reference_workload(),
        &grid,
        &MemoryConfig::hmc_stack(),
    );
    println!("explored {} FFT design points (Fig 11a axes)", points.len());

    println!("\nPareto frontier (performance per power):");
    for p in &pareto_frontier(&points) {
        println!(
            "  {:4.1} GHz, {:2} cores, block {:4}, row {:4}B -> {:7.1} GFLOPS @ {:5.1} W ({:.1} GFLOPS/W)",
            p.frequency.as_ghz(),
            p.cores,
            p.block_elems,
            p.row_bytes,
            p.gflops,
            p.power_w,
            p.gflops_per_watt()
        );
    }

    for budget in [15.0, 25.0, 40.0] {
        match best_under_budget(&points, budget) {
            Some(p) => println!(
                "\nbest under {budget:.0} W: {:.1} GFLOPS at {:.1} W ({:.1} GHz, {} cores)",
                p.gflops,
                p.power_w,
                p.frequency.as_ghz(),
                p.cores
            ),
            None => println!("\nno design fits under {budget:.0} W"),
        }
    }
}
