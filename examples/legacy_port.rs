//! Porting legacy code without reimplementation (§3): the
//! source-to-source compiler recognizes the MKL/FFTW calls in a legacy C
//! fragment, rewrites its allocations, and emits TDL descriptors — which
//! then execute on the simulated MEALib runtime.
//!
//! Run with: `cargo run --example legacy_port`

use mealib::prelude::*;
use mealib::AccelParams;
use mealib_tdl::ParamBag;

const LEGACY: &str = r#"
    // a legacy filter kernel written against MKL
    float *weights;
    float *samples;
    int N_TAPS = 64;

    weights = malloc(sizeof(float) * 65536);
    samples = malloc(sizeof(float) * 65536);

    for (tap = 0; tap < N_TAPS; ++tap)
        cblas_saxpy(65536, 0.99, weights, 1, samples, 1);

    free(weights);
    free(samples);
"#;

fn main() -> Result<(), MealibError> {
    // ---- Compile --------------------------------------------------------
    let out = mealib_compiler::compile(LEGACY).expect("legacy fragment compiles");
    println!("compiler statistics:");
    println!("  library calls found:   {}", out.stats.accelerable_calls);
    println!("  dynamic calls:         {}", out.stats.dynamic_calls);
    println!("  descriptors generated: {}", out.stats.descriptors);
    println!(
        "  buffers migrated:      {}",
        out.stats.allocations_rewritten
    );

    println!("\ngenerated TDL:");
    println!("{}", out.tdl[0].text);

    println!("transformed source:");
    println!("{}", out.source);

    // ---- Execute the generated descriptor on the runtime ----------------
    // (In a real deployment the transformed C links against the MEALib
    // runtime; here we drive the same TDL through the simulated stack.)
    let mut ml = Mealib::builder().build();
    ml.alloc_f32("weights", 65536)?;
    ml.alloc_f32("samples", 65536)?;
    ml.write_f32("weights", &vec![0.001; 65536])?;
    ml.write_f32("samples", &vec![1.0; 65536])?;

    let mut bag = ParamBag::new();
    let file = &out.tdl[0].params[0].file;
    bag.insert(
        file.clone(),
        AccelParams::Axpy {
            n: 65536,
            alpha: 0.99,
            incx: 1,
            incy: 1,
        }
        .to_bytes(),
    );
    let plan = ml.plan(&out.tdl[0].text, &bag)?;
    let run = ml.execute(&plan)?;
    println!(
        "descriptor executed: {} accelerator invocations in {:.2} us ({:.3} uJ)",
        run.run.invocations(),
        run.total_time().as_micros(),
        run.total_energy().get() * 1e6,
    );
    println!(
        "invocation overhead share: {:.1}% of time",
        100.0 * run.overhead_time_fraction()
    );
    Ok(())
}
