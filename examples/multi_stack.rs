//! Local vs Remote Memory Stacks (§3.3): data processed by an
//! accelerator should reside in its Local Memory Stack; placements on a
//! remote stack cross the inter-stack links at a fraction of the
//! bandwidth.
//!
//! Run with: `cargo run --example multi_stack`

use mealib::prelude::*;
use mealib::{AccelParams, StackId};

fn main() -> Result<(), MealibError> {
    // A system with one local stack (the accelerators' LMS) and two
    // remote stacks.
    let mut ml = Mealib::builder().stacks(3).build();
    let n = 1 << 22; // 16 MiB per buffer

    // Same operation, three placements.
    ml.alloc_f32("x_local", n)?;
    ml.alloc_f32("y_local", n)?;
    ml.alloc_f32_on("x_remote", n, StackId(1))?;
    ml.alloc_f32_on("y_remote", n, StackId(2))?;

    let op = AccelParams::Axpy {
        n: n as u64,
        alpha: 1.5,
        incx: 1,
        incy: 1,
    };
    let local = ml.invoke(op, "x_local", "y_local")?;
    let remote = ml.invoke(op, "x_remote", "y_remote")?;

    println!("AXPY over {} MiB on the 32-vault stack:", (3 * n * 4) >> 20);
    println!(
        "  LMS placement:  {:>9.1} us  {:>9.1} uJ",
        local.time().as_micros(),
        local.energy().get() * 1e6
    );
    println!(
        "  RMS placement:  {:>9.1} us  {:>9.1} uJ  ({:.1}x slower over the links)",
        remote.time().as_micros(),
        remote.energy().get() * 1e6,
        remote.time() / local.time()
    );

    // Where did everything land?
    println!("\nplacements:");
    for name in ["x_local", "y_local", "x_remote", "y_remote"] {
        let stack = ml.runtime().driver().stack_of(name).expect("live buffer");
        println!("  {name:9} -> {stack}");
    }
    println!(
        "\n(The compiler can pin buffers with `#pragma mealib stack(N)`; the\n\
         runtime routes any descriptor touching a remote buffer through the\n\
         link-limited memory view.)"
    );
    Ok(())
}
