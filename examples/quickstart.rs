//! Quickstart: the MEALib flow of Figure 7 — allocate buffers in the
//! accelerator-managed contiguous space, run library operations, read
//! results, inspect modeled hardware costs.
//!
//! Run with: `cargo run --example quickstart`

use mealib::prelude::*;
use mealib_kernels::fft::Direction;

fn main() -> Result<(), MealibError> {
    let mut ml = Mealib::builder().build();

    // Step 1: allocate and initialize named buffers (the runtime maps
    // physically contiguous memory into the host's virtual space).
    let n = 1 << 16;
    ml.alloc_f32("x", n)?;
    ml.alloc_f32("y", n)?;
    let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.001).sin()).collect();
    let y: Vec<f32> = vec![1.0; n];
    ml.write_f32("x", &x)?;
    ml.write_f32("y", &y)?;

    // Step 2: library calls — computed functionally, priced by the
    // hardware model (descriptor + configuration unit + accelerators).
    let saxpy = ml.saxpy(2.0, "x", "y")?;
    println!(
        "saxpy:  {:>10.3} us, {:>10.3} uJ, {:>6.1} GFLOPS",
        saxpy.time().as_micros(),
        saxpy.energy().get() * 1e6,
        saxpy.gflops().get()
    );

    let (dot, report) = ml.sdot("x", "y")?;
    println!(
        "sdot:   {:>10.3} us, {:>10.3} uJ   -> x.y = {dot:.3}",
        report.time().as_micros(),
        report.energy().get() * 1e6
    );

    // A batched FFT through the FFT accelerator.
    ml.alloc_c32("signal", 4096 * 16)?;
    ml.alloc_c32("spectrum", 4096 * 16)?;
    let signal: Vec<Complex32> = (0..4096 * 16)
        .map(|i| Complex32::new((i as f32 * 0.05).cos(), 0.0))
        .collect();
    ml.write_c32("signal", &signal)?;
    let fft = ml.fft("signal", "spectrum", 4096, 16, Direction::Forward)?;
    println!(
        "fft:    {:>10.3} us, {:>10.3} uJ, {:>6.1} GFLOPS (16 x 4096-point)",
        fft.time().as_micros(),
        fft.energy().get() * 1e6,
        fft.gflops().get()
    );

    // Step 3: read results back through the shared-memory mapping.
    let y_out = ml.read_f32("y")?;
    println!("y[0] = {} (expected {})", y_out[0], 1.0 + 2.0 * x[0]);
    let spectrum = ml.read_c32("spectrum")?;
    let peak = spectrum.iter().map(|z| z.abs()).fold(0.0f32, f32::max);
    println!("spectrum peak magnitude: {peak:.1}");

    println!(
        "\nruntime counters: {} plans, {} executions, {} accelerator invocations",
        ml.runtime().counters().plans_created,
        ml.runtime().counters().executions,
        ml.runtime().counters().invocations,
    );
    Ok(())
}
