//! SAR image formation with hardware accelerator chaining (§5.4): the
//! `RESMP → FFT` datapath runs as one chained pass, with the
//! intermediate staying in the tiles' Local Memories — compared against
//! issuing the two accelerators separately.
//!
//! Run with: `cargo run --example sar_chaining`

use mealib::prelude::*;
use mealib::AccelParams;
use mealib_workloads::sar;

fn main() -> Result<(), MealibError> {
    // ---- Functional chained pass on the API ----------------------------
    let mut ml = Mealib::builder().build();
    let n = 256; // 256x256 image
    ml.alloc_c32("raw", n * n)?;
    ml.alloc_c32("image", n * n)?;
    ml.alloc_c32("mid", n * n)?;

    let raw: Vec<Complex32> = (0..n * n)
        .map(|i| Complex32::from_polar_unit((i % 251) as f32 * 0.025))
        .collect();
    ml.write_c32("raw", &raw)?;

    let chained = ml.resample_fft_chained("raw", "image", n, n, n)?;
    println!(
        "hardware-chained RESMP+FFT ({n}x{n}): {:.2} us, {:.3} uJ",
        chained.time().as_micros(),
        chained.energy().get() * 1e6
    );

    // The same two stages as separate passes (software chaining).
    let r1 = {
        let params = AccelParams::Resmp {
            blocks: n as u64,
            in_per_block: 2 * n as u64,
            out_per_block: 2 * n as u64,
        };
        let mut bag = mealib_tdl::ParamBag::new();
        bag.insert("r.para".into(), params.to_bytes());
        let plan = ml.plan("PASS in=raw out=mid { COMP RESMP params=\"r.para\" }", &bag)?;
        ml.execute(&plan)?
    };
    let r2 = {
        let params = AccelParams::Fft {
            n: n as u64,
            batch: n as u64,
        };
        let mut bag = mealib_tdl::ParamBag::new();
        bag.insert("f.para".into(), params.to_bytes());
        let plan = ml.plan("PASS in=mid out=image { COMP FFT params=\"f.para\" }", &bag)?;
        ml.execute(&plan)?
    };
    let separate = r1.total_time() + r2.total_time();
    println!(
        "software-chained (two passes):        {:.2} us  -> chaining gain {:.2}x",
        separate.as_micros(),
        separate / chained.time()
    );

    // ---- The Figure 12 sweeps ------------------------------------------
    println!("\nFig 12a — chaining gain vs image size:");
    for p in sar::chaining_sweep() {
        println!("  {0:>4}x{0:<4}  {1:.2}x", p.size, p.gain());
    }
    println!("\nFig 12b — hardware-loop gain (128 FFTs) vs image size:");
    for p in sar::loop_sweep(128) {
        println!("  {0:>4}x{0:<4}  {1:.2}x", p.size, p.gain());
    }
    Ok(())
}
