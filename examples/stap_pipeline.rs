//! The STAP application (§3.1, §5.5) end to end: a functional run of the
//! radar pipeline on the MEALib API at a scaled-down size, followed by
//! the modeled full-size comparison against the Haswell baseline.
//!
//! Run with: `cargo run --example stap_pipeline`

use mealib::Mealib;
use mealib_workloads::stap::{self, Executor, StapConfig};

fn main() {
    // ---- Functional pipeline at "tiny" scale ---------------------------
    println!("functional STAP (tiny dataset, real numerics):");
    let mut ml = Mealib::builder().build();
    let out = stap::run_functional(&StapConfig::tiny(), &mut ml)
        .expect("tiny STAP fits the default stack");
    println!("  doppler datacube energy: {:.3e}", out.doppler_energy);
    println!("  adaptive products norm:  {:.3e}", out.products_norm);
    println!(
        "  modeled accelerator time for the accelerated calls: {:.3} us",
        out.modeled_time.as_micros()
    );

    // ---- Modeled full-size runs (Figures 13/14) ------------------------
    println!("\nmodeled STAP at paper scale:");
    for cfg in [
        StapConfig::small(),
        StapConfig::medium(),
        StapConfig::large(),
    ] {
        let haswell = stap::run_on_haswell(&cfg);
        let mealib = stap::run_on_mealib(&cfg);
        let (perf, edp) = stap::gains(&cfg);
        println!(
            "  {:6}: Haswell {:.3} s / {:.1} J  |  MEALib {:.3} s / {:.1} J  |  {:.2}x perf, {:.2}x EDP",
            cfg.name,
            haswell.total_time().get(),
            haswell.total_energy().get(),
            mealib.total_time().get(),
            mealib.total_energy().get(),
            perf,
            edp
        );
    }

    let run = stap::run_on_mealib(&StapConfig::large());
    println!("\nlarge-dataset breakdown on MEALib:");
    for p in &run.phases {
        let who = match p.executor {
            Executor::Host => "host",
            Executor::Accelerator(_) => "accel",
            Executor::Invocation => "invoke",
        };
        println!(
            "  {:12} [{who:6}] {:>10.3} ms  {:>8.3} J",
            p.name,
            p.time.as_millis(),
            p.energy.get()
        );
    }
    println!(
        "  host share: {:.0}% of time, {:.0}% of energy (paper: ~75% / ~90%)",
        100.0 * run.time_fraction(|p| p.executor == Executor::Host),
        100.0 * run.energy_fraction(|p| p.executor == Executor::Host),
    );
}
