#!/usr/bin/env bash
# Bench smoke: run every mealib-bench harness at reduced sizes with
# --json, validate that each summary parses, and collect the records
# into BENCH_pr4.json — the perf-trajectory data point for this PR.
#
# Also exercises the fig14 --trace path (validating that every JSONL
# trace line parses) and the fig11 --jobs path: the design-space sweep
# is run at full size with --jobs 1 and --jobs 4, the two JSON
# summaries must be byte-identical (parallelism may change wall time,
# never modeled outputs), and both wall times are recorded.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr4.json}"
JQ="$(command -v jq || true)"

echo "==> cargo build --release -p mealib-bench --bins"
cargo build --release -p mealib-bench --bins

BINS=(
  fig01_library_speedup
  fig09_performance
  fig10_energy
  fig11_design_space
  fig12_chaining_loop
  fig13_stap
  fig14_breakdown
  table05_power_area
  ablations
  compiler_stap
  methodology_validation
)

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

records="$tmpdir/records.jsonl"
: > "$records"

for bin in "${BINS[@]}"; do
  echo "==> $bin --small --json"
  line="$(./target/release/$bin --small --json | tail -n 1)"
  if [[ -n "$JQ" ]]; then
    echo "$line" | "$JQ" -e '.bench and (.metrics | type == "object")' > /dev/null \
      || { echo "error: $bin summary failed validation: $line" >&2; exit 1; }
  fi
  echo "$line" >> "$records"
done

echo "==> fig14_breakdown --small --trace (JSONL validation)"
trace="$tmpdir/fig14_trace.jsonl"
./target/release/fig14_breakdown --small --trace "$trace" > /dev/null
[[ -s "$trace" ]] || { echo "error: trace file is empty" >&2; exit 1; }
if [[ -n "$JQ" ]]; then
  "$JQ" -e '.type == "span" or .type == "count"' "$trace" > /dev/null \
    || { echo "error: trace contains a malformed line" >&2; exit 1; }
fi
echo "trace OK: $(wc -l < "$trace") events"

# Full-size fig11 at --jobs 1 vs --jobs 4: modeled outputs must not
# depend on the worker count.
echo "==> fig11_design_space --json --jobs 1 vs --jobs 4 (determinism + wall time)"
t0="$(date +%s%N)"
jobs1="$(./target/release/fig11_design_space --json --jobs 1 | tail -n 1)"
t1="$(date +%s%N)"
jobs4="$(./target/release/fig11_design_space --json --jobs 4 | tail -n 1)"
t2="$(date +%s%N)"
if [[ "$jobs1" != "$jobs4" ]]; then
  echo "error: fig11 summary differs between --jobs 1 and --jobs 4" >&2
  echo "  jobs1: $jobs1" >&2
  echo "  jobs4: $jobs4" >&2
  exit 1
fi
jobs1_wall_s="$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')"
jobs4_wall_s="$(awk -v a="$t1" -v b="$t2" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')"
speedup="$(awk -v a="$jobs1_wall_s" -v b="$jobs4_wall_s" 'BEGIN { printf "%.3f", (b > 0) ? a / b : 0 }')"
echo "fig11 jobs scaling OK: identical summaries; jobs1 ${jobs1_wall_s}s, jobs4 ${jobs4_wall_s}s (${speedup}x)"
printf '{"bench":"fig11_jobs_scaling","metrics":{"jobs1_wall_s":%s,"jobs4_wall_s":%s,"speedup":%s}}\n' \
  "$jobs1_wall_s" "$jobs4_wall_s" "$speedup" >> "$records"

if [[ -n "$JQ" ]]; then
  "$JQ" -s '{generated_by: "scripts/bench_smoke.sh", benches: .}' "$records" > "$OUT"
else
  {
    echo '{"generated_by": "scripts/bench_smoke.sh", "benches": ['
    paste -sd, "$records"
    echo ']}'
  } > "$OUT"
fi

echo "bench_smoke: OK — wrote $OUT"
