#!/usr/bin/env bash
# Bench smoke: run every mealib-bench harness at reduced sizes with
# --json, validate that each summary parses, and collect the records
# into a schema-v1 BENCH file (default BENCH_pr9.json) — the
# perf-trajectory data point for this PR. Each record carries the
# harness's wall time as `wall_s`.
#
# Also exercises:
#   * the fig14 --trace path (every JSONL trace line parses);
#   * the fig13 --profile path (the Chrome trace-event profile passes
#     `meaperf --check-trace`'s round-trip validation);
#   * the fig11 --jobs path: the design-space sweep runs at full size
#     with --jobs 1 and --jobs 4, the two JSON summaries must be
#     byte-identical (parallelism may change wall time, never modeled
#     outputs), and both wall times are recorded;
#   * the fig11 --prune path: the MEA2xx static-bounds pruner must skip
#     at least 30% of the grid simulations while every Pareto-frontier
#     metric stays exactly equal to the full sweep's;
#   * the perf gate: when a baseline BENCH file exists (BASE env var,
#     default BENCH_pr7.json), `meaperf BASE OUT --wall-report-only`
#     must pass — modeled metrics gate hard, wall metrics (noisy on a
#     1-CPU container) are report-only;
#   * the dual-engine floor: `meaperf --min` requires the fast engine's
#     geomean speedup over the cycle oracle (engine_throughput's
#     fast_over_cycle) to stay >= 5x, baseline or not;
#   * the admission-control floor: tenant_mix's verdict_correctness
#     must stay exactly 1 — every ADMIT/REJECT/UNKNOWN verdict the
#     MEA3xx certifier hands out is confirmed against the interleaved
#     cycle simulation, baseline or not;
#   * the serving-soundness floor: serve_traffic's admission_soundness
#     must stay exactly 1 — every session the certified-admission
#     scheduler completes lands inside the elapsed ceiling its
#     admission proved, baseline or not;
#   * the telemetry path: serve_traffic runs with --telemetry, the
#     Prometheus exposition + JSONL snapshots + lifecycle trace are
#     validated on disk by `meatop --check` (exact counter
#     reconciliation included) and the trace additionally by
#     `meaperf --check-trace`;
#   * the telemetry floors: serve_traffic's slo_conformance and
#     certified_bounds_conformance must both stay exactly 1 — no SLO
#     burned its error budget and no windowed observation escaped its
#     MEA3xx certified interval, baseline or not.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr10.json}"
BASE="${BASE:-BENCH_pr9.json}"
JQ="$(command -v jq || true)"

echo "==> cargo build --release -p mealib-bench --bins"
cargo build --release -p mealib-bench --bins

BINS=(
  fig01_library_speedup
  fig09_performance
  fig10_energy
  fig11_design_space
  fig12_chaining_loop
  fig13_stap
  fig14_breakdown
  table05_power_area
  ablations
  compiler_stap
  methodology_validation
  engine_throughput
  tenant_mix
  serve_traffic
)

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

records="$tmpdir/records.jsonl"
: > "$records"

now_ns() { date +%s%N; }
elapsed_s() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'; }

tel_prefix="$tmpdir/serve_tel"

for bin in "${BINS[@]}"; do
  # serve_traffic runs telemetered so the BENCH record carries the
  # sketch percentiles and both conformance metrics.
  extra=()
  [[ "$bin" == "serve_traffic" ]] && extra=(--telemetry "$tel_prefix")
  echo "==> $bin --small --json ${extra[*]}"
  t0="$(now_ns)"
  line="$(./target/release/$bin --small --json "${extra[@]}" | tail -n 1)"
  wall="$(elapsed_s "$t0" "$(now_ns)")"
  if [[ -n "$JQ" ]]; then
    echo "$line" | "$JQ" -e '.bench and (.metrics | type == "object")' > /dev/null \
      || { echo "error: $bin summary failed validation: $line" >&2; exit 1; }
  fi
  # Attach the harness wall time to the record (schema v1 field).
  echo "${line%\}},\"wall_s\":${wall}}" >> "$records"
done

echo "==> fig14_breakdown --small --trace (JSONL validation)"
trace="$tmpdir/fig14_trace.jsonl"
./target/release/fig14_breakdown --small --trace "$trace" > /dev/null
[[ -s "$trace" ]] || { echo "error: trace file is empty" >&2; exit 1; }
if [[ -n "$JQ" ]]; then
  "$JQ" -e '.type == "span" or .type == "count"' "$trace" > /dev/null \
    || { echo "error: trace contains a malformed line" >&2; exit 1; }
fi
echo "trace OK: $(wc -l < "$trace") events"

echo "==> meatop --check (telemetry artifact validation + exact reconciliation)"
for f in "$tel_prefix.prom" "$tel_prefix.snapshots.jsonl" "$tel_prefix.trace.json" "$tel_prefix.alerts.jsonl"; do
  [[ -f "$f" ]] || { echo "error: serve_traffic --telemetry did not write $f" >&2; exit 1; }
done
./target/release/meatop --check "$tel_prefix" \
  || { echo "error: telemetry artifacts failed meatop --check" >&2; exit 1; }
./target/release/meaperf --check-trace "$tel_prefix.trace.json" \
  || { echo "error: lifecycle trace failed meaperf --check-trace" >&2; exit 1; }

echo "==> fig13_stap --small --profile (Perfetto trace validation)"
profile="$tmpdir/fig13_stap.trace.json"
./target/release/fig13_stap --small --profile "$profile" > /dev/null
[[ -s "$profile" ]] || { echo "error: profile file is empty" >&2; exit 1; }
./target/release/meaperf --check-trace "$profile" \
  || { echo "error: fig13 profile failed trace validation" >&2; exit 1; }

# Full-size fig11 at --jobs 1 vs --jobs 4: modeled outputs must not
# depend on the worker count.
echo "==> fig11_design_space --json --jobs 1 vs --jobs 4 (determinism + wall time)"
t0="$(now_ns)"
jobs1="$(./target/release/fig11_design_space --json --jobs 1 | tail -n 1)"
t1="$(now_ns)"
jobs4="$(./target/release/fig11_design_space --json --jobs 4 | tail -n 1)"
t2="$(now_ns)"
if [[ "$jobs1" != "$jobs4" ]]; then
  echo "error: fig11 summary differs between --jobs 1 and --jobs 4" >&2
  echo "  jobs1: $jobs1" >&2
  echo "  jobs4: $jobs4" >&2
  exit 1
fi
jobs1_wall_s="$(elapsed_s "$t0" "$t1")"
jobs4_wall_s="$(elapsed_s "$t1" "$t2")"
speedup_wall="$(awk -v a="$jobs1_wall_s" -v b="$jobs4_wall_s" 'BEGIN { printf "%.3f", (b > 0) ? a / b : 0 }')"
echo "fig11 jobs scaling OK: identical summaries; jobs1 ${jobs1_wall_s}s, jobs4 ${jobs4_wall_s}s (${speedup_wall}x)"
# All three keys are wall-derived, so they carry wall names and the
# perf gate applies its (looser, demotable) wall threshold to them.
printf '{"bench":"fig11_jobs_scaling","metrics":{"jobs1_wall_s":%s,"jobs4_wall_s":%s,"speedup_wall":%s}}\n' \
  "$jobs1_wall_s" "$jobs4_wall_s" "$speedup_wall" >> "$records"

# Full-size fig11 with the MEA2xx static-bounds pruner: the frontier
# metrics must match the full sweep's exactly, and at least 30% of the
# grid must be provably dominated (skipped without simulation).
echo "==> fig11_design_space --json --prune (frontier identity + prune floor)"
t0="$(now_ns)"
pruned="$(./target/release/fig11_design_space --json --prune | tail -n 1)"
prune_wall_s="$(elapsed_s "$t0" "$(now_ns)")"

# Pull "key":value out of a one-line JSON summary without requiring jq.
metric() { grep -o "\"$2\":[^,}]*" <<<"$1" | head -n 1 | cut -d: -f2; }

for key in fft_frontier_points fft_frontier_gflops_sum fft_frontier_power_sum \
           fft_frontier_engine_sum spmv_frontier_points spmv_frontier_gflops_sum \
           spmv_frontier_power_sum spmv_frontier_engine_sum; do
  full_v="$(metric "$jobs1" "$key")"
  prune_v="$(metric "$pruned" "$key")"
  if [[ -z "$full_v" || -z "$prune_v" || "$full_v" != "$prune_v" ]]; then
    echo "error: fig11 frontier metric $key differs under --prune" >&2
    echo "  full:  ${full_v:-missing}" >&2
    echo "  prune: ${prune_v:-missing}" >&2
    exit 1
  fi
done

# Counts are serialized as floats ("46.0"); truncate for bash arithmetic.
grid="$(metric "$pruned" "grid_points")"; grid="${grid%%.*}"
fft_pruned="$(metric "$pruned" "fft_pruned")"
spmv_pruned="$(metric "$pruned" "spmv_pruned")"
pruned_total=$(( ${fft_pruned%%.*} + ${spmv_pruned%%.*} ))
if (( pruned_total * 10 < 3 * grid * 2 )); then
  echo "error: pruner skipped only $pruned_total of $((grid * 2)) simulations (<30%)" >&2
  exit 1
fi
echo "fig11 prune OK: frontier identical; $pruned_total/$((grid * 2)) simulations pruned"
echo "${pruned%\}},\"wall_s\":${prune_wall_s}}" >> "$records"

if [[ -n "$JQ" ]]; then
  "$JQ" -s '{schema_version: 1, generated_by: "scripts/bench_smoke.sh", benches: .}' "$records" > "$OUT"
else
  {
    echo '{"schema_version": 1, "generated_by": "scripts/bench_smoke.sh", "benches": ['
    paste -sd, "$records"
    echo ']}'
  } > "$OUT"
fi

# The dual-engine speedup is an absolute floor, not a trajectory
# comparison, so it gates even without a baseline (self-compare).
MIN_FLOORS=(--min "engine_throughput.fast_over_cycle=5"
            --min "tenant_mix.verdict_correctness=1"
            --min "serve_traffic.admission_soundness=1"
            --min "serve_traffic.slo_conformance=1"
            --min "serve_traffic.certified_bounds_conformance=1")
if [[ -f "$BASE" && "$BASE" != "$OUT" ]]; then
  echo "==> meaperf $BASE $OUT (modeled metrics gate hard; wall report-only; floors)"
  ./target/release/meaperf --wall-report-only "${MIN_FLOORS[@]}" "$BASE" "$OUT" \
    || { echo "error: perf gate failed against $BASE" >&2; exit 1; }
else
  echo "note: no baseline $BASE — checking the absolute floors only"
  ./target/release/meaperf --wall-report-only "${MIN_FLOORS[@]}" "$OUT" "$OUT" \
    || { echo "error: absolute metric floor failed" >&2; exit 1; }
fi

echo "bench_smoke: OK — wrote $OUT"
