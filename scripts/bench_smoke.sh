#!/usr/bin/env bash
# Bench smoke: run every mealib-bench harness at reduced sizes with
# --json, validate that each summary parses, and collect the records
# into BENCH_pr2.json — the first data point of the perf trajectory.
#
# Also exercises the fig14 --trace path and validates that every JSONL
# trace line parses.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr2.json}"
JQ="$(command -v jq || true)"

echo "==> cargo build --release -p mealib-bench --bins"
cargo build --release -p mealib-bench --bins

BINS=(
  fig01_library_speedup
  fig09_performance
  fig10_energy
  fig11_design_space
  fig12_chaining_loop
  fig13_stap
  fig14_breakdown
  table05_power_area
  ablations
  compiler_stap
  methodology_validation
)

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

records="$tmpdir/records.jsonl"
: > "$records"

for bin in "${BINS[@]}"; do
  echo "==> $bin --small --json"
  line="$(./target/release/$bin --small --json | tail -n 1)"
  if [[ -n "$JQ" ]]; then
    echo "$line" | "$JQ" -e '.bench and (.metrics | type == "object")' > /dev/null \
      || { echo "error: $bin summary failed validation: $line" >&2; exit 1; }
  fi
  echo "$line" >> "$records"
done

echo "==> fig14_breakdown --small --trace (JSONL validation)"
trace="$tmpdir/fig14_trace.jsonl"
./target/release/fig14_breakdown --small --trace "$trace" > /dev/null
[[ -s "$trace" ]] || { echo "error: trace file is empty" >&2; exit 1; }
if [[ -n "$JQ" ]]; then
  "$JQ" -e '.type == "span" or .type == "count"' "$trace" > /dev/null \
    || { echo "error: trace contains a malformed line" >&2; exit 1; }
fi
echo "trace OK: $(wc -l < "$trace") events"

if [[ -n "$JQ" ]]; then
  "$JQ" -s '{generated_by: "scripts/bench_smoke.sh", benches: .}' "$records" > "$OUT"
else
  {
    echo '{"generated_by": "scripts/bench_smoke.sh", "benches": ['
    paste -sd, "$records"
    echo ']}'
  } > "$OUT"
fi

echo "bench_smoke: OK — wrote $OUT"
