#!/usr/bin/env bash
# Tier-1 verification flow: build, test, lint, format.
#
# Everything here must pass before a change lands. CI and local
# development run the same script so there is exactly one definition of
# "green".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (root package: integration + doc tests)"
cargo test -q

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

MEALINT=(cargo run -q --release -p mealib-verify --bin mealint --)

echo "==> mealint: examples and clean corpus must be clean"
out=$("${MEALINT[@]}" examples/tdl/*.tdl crates/verify/corpus/clean/*.tdl 2>&1) || {
    echo "$out" >&2
    exit 1
}
if grep -qE "\[MEA[0-9]+\]" <<<"$out"; then
    echo "mealint flagged a file that must be clean:" >&2
    echo "$out" >&2
    exit 1
fi

echo "==> mealint: bad corpus must report the code its name promises"
for f in crates/verify/corpus/bad/*.tdl; do
    name=$(basename "$f" .tdl)        # mea103_missing_flush -> MEA103
    code="MEA${name:3:3}"
    out=$("${MEALINT[@]}" "$f" 2>&1) || true   # warnings exit 0, errors 1
    if ! grep -q "\[$code\]" <<<"$out"; then
        echo "mealint missed $code in $f:" >&2
        echo "$out" >&2
        exit 1
    fi
done

echo "==> bounds corpus coverage: every MEA2xx code needs >=2 bad programs + clean twins"
for code in 200 201 202 203; do
    bad=$(ls crates/verify/corpus/bad/mea${code}_*.tdl 2>/dev/null | wc -l)
    if (( bad < 2 )); then
        echo "bounds corpus too thin: MEA$code has $bad bad programs (need >=2)" >&2
        exit 1
    fi
    for f in crates/verify/corpus/bad/mea${code}_*.tdl; do
        twin="crates/verify/corpus/clean/$(basename "$f")"
        if [[ ! -f "$twin" ]]; then
            echo "bounds corpus: $f has no clean twin at $twin" >&2
            exit 1
        fi
    done
done

echo "verify: OK"
