#!/usr/bin/env bash
# Tier-1 verification flow: build, test, lint, format.
#
# Everything here must pass before a change lands. CI and local
# development run the same script so there is exactly one definition of
# "green".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (root package: integration + doc tests)"
cargo test -q

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

MEALINT=(cargo run -q --release -p mealib-verify --bin mealint --)

echo "==> mealint: examples and clean corpus must be clean"
out=$("${MEALINT[@]}" examples/tdl/*.tdl crates/verify/corpus/clean/*.tdl 2>&1) || {
    echo "$out" >&2
    exit 1
}
if grep -qE "\[MEA[0-9]+\]" <<<"$out"; then
    echo "mealint flagged a file that must be clean:" >&2
    echo "$out" >&2
    exit 1
fi

echo "==> mealint: bad corpus must report the code its name promises"
for f in crates/verify/corpus/bad/*.tdl; do
    name=$(basename "$f" .tdl)        # mea103_missing_flush -> MEA103
    code="MEA${name:3:3}"
    out=$("${MEALINT[@]}" "$f" 2>&1) || true   # warnings exit 0, errors 1
    if ! grep -q "\[$code\]" <<<"$out"; then
        echo "mealint missed $code in $f:" >&2
        echo "$out" >&2
        exit 1
    fi
done

echo "==> mealint: clean session-set manifests must be admitted"
out=$("${MEALINT[@]}" crates/verify/corpus/clean/*.set 2>&1) || {
    echo "$out" >&2
    exit 1
}
if grep -qE "\[MEA[0-9]+\]" <<<"$out"; then
    echo "mealint flagged a session set that must be clean:" >&2
    echo "$out" >&2
    exit 1
fi
if grep -qv "verdict ADMIT" <<<"$out"; then
    echo "a clean session set was not admitted:" >&2
    echo "$out" >&2
    exit 1
fi

echo "==> mealint: bad session sets must report the MEA3xx code their name promises"
for f in crates/verify/corpus/bad/*.set; do
    name=$(basename "$f" .set)        # mea301_oversubscribed -> MEA301
    code="MEA${name:3:3}"
    out=$("${MEALINT[@]}" "$f" 2>&1) || true   # warnings exit 0, errors 1
    if ! grep -q "\[$code\]" <<<"$out"; then
        echo "mealint missed $code in $f:" >&2
        echo "$out" >&2
        exit 1
    fi
    if ! grep -q "verdict REJECT" <<<"$out"; then
        echo "bad session set $f was not rejected:" >&2
        echo "$out" >&2
        exit 1
    fi
done

echo "==> interference corpus coverage: every MEA3xx code needs >=2 bad manifests + clean twins"
for code in 300 301 302 303; do
    bad=$(ls crates/verify/corpus/bad/mea${code}_*.set 2>/dev/null | wc -l)
    if (( bad < 2 )); then
        echo "interference corpus too thin: MEA$code has $bad bad manifests (need >=2)" >&2
        exit 1
    fi
    for f in crates/verify/corpus/bad/mea${code}_*.set; do
        twin="crates/verify/corpus/clean/$(basename "$f")"
        if [[ ! -f "$twin" ]]; then
            echo "interference corpus: $f has no clean twin at $twin" >&2
            exit 1
        fi
    done
done

echo "==> every workspace crate forbids unsafe code"
for f in src/lib.rs crates/*/src/lib.rs; do
    if ! grep -q '^#!\[forbid(unsafe_code)\]' "$f"; then
        echo "crate root $f does not carry #![forbid(unsafe_code)]" >&2
        exit 1
    fi
done

echo "==> bounds corpus coverage: every MEA2xx code needs >=2 bad programs + clean twins"
for code in 200 201 202 203; do
    bad=$(ls crates/verify/corpus/bad/mea${code}_*.tdl 2>/dev/null | wc -l)
    if (( bad < 2 )); then
        echo "bounds corpus too thin: MEA$code has $bad bad programs (need >=2)" >&2
        exit 1
    fi
    for f in crates/verify/corpus/bad/mea${code}_*.tdl; do
        twin="crates/verify/corpus/clean/$(basename "$f")"
        if [[ ! -f "$twin" ]]; then
            echo "bounds corpus: $f has no clean twin at $twin" >&2
            exit 1
        fi
    done
done

echo "verify: OK"
