#!/usr/bin/env bash
# Tier-1 verification flow: build, test, lint, format.
#
# Everything here must pass before a change lands. CI and local
# development run the same script so there is exactly one definition of
# "green".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (root package: integration + doc tests)"
cargo test -q

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
