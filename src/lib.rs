//! Umbrella crate for the MEALib reproduction workspace: re-exports every subsystem.

#![forbid(unsafe_code)]

pub use mealib as core;
pub use mealib_accel as accel;
pub use mealib_compiler as compiler;
pub use mealib_host as host;
pub use mealib_kernels as kernels;
pub use mealib_memsim as memsim;
pub use mealib_noc as noc;
pub use mealib_runtime as runtime;
pub use mealib_serve as serve;
pub use mealib_sim as sim;
pub use mealib_tdl as tdl;
pub use mealib_types as types;
pub use mealib_verify as verify;
pub use mealib_workloads as workloads;
