//! Differential soundness harness over the *workloads* pipelines: the
//! STAP front-end and the SAR chaining/loop scenarios, exported as TDL
//! sessions with extents sized from the real dataset geometry, are
//! certified by the static-bounds analyzer and replayed through the
//! cycle engine. Lower <= measured <= upper must hold on every
//! certified counter, and none of the evaluation pipelines may draw an
//! MEA2xx diagnostic.

use mealib_memsim::bounds::trace_bounds;
use mealib_memsim::engine::{simulate, SimOptions};
use mealib_verify::bounds::{self, BoundsEnv};
use mealib_verify::dataflow::parse_session;
use mealib_workloads::sessions::pipeline_sessions;

#[test]
fn every_workloads_pipeline_is_certified_soundly() {
    let env = BoundsEnv::default();
    let sessions = pipeline_sessions();
    assert!(sessions.len() >= 6, "expected the full pipeline set");
    for (name, src) in sessions {
        let session = parse_session(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cfg = bounds::resolved_config(&session, &env);
        let elab = bounds::elaborate(&session);
        assert!(
            elab.missing_extents.is_empty(),
            "{name}: exported sessions declare every extent"
        );
        let static_bounds = trace_bounds(&cfg, &elab.trace).expect("preset configs validate");
        let run = simulate(&cfg, &elab.trace, &SimOptions::dual_check())
            .expect("preset configs validate");
        assert!(
            static_bounds.check_contains(&run.stats).is_none(),
            "{name}: {}",
            static_bounds.check_contains(&run.stats).unwrap()
        );
        let reads: u64 = run.vaults.iter().map(|v| v.read_bursts).sum();
        let writes: u64 = run.vaults.iter().map(|v| v.write_bursts).sum();
        assert_eq!(static_bounds.read_bursts.lo, reads as f64, "{name}");
        assert_eq!(static_bounds.write_bursts.lo, writes as f64, "{name}");
    }
}

#[test]
fn evaluation_pipelines_draw_zero_mea2xx() {
    let env = BoundsEnv::default();
    for (name, src) in pipeline_sessions() {
        let session = parse_session(&src).expect("pipeline sessions parse");
        let report = bounds::verify_session_bounds(&session, &env);
        assert!(report.is_clean(), "{name}:\n{report}");
    }
}
