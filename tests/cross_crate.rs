//! Cross-crate integration invariants: the subsystem simulators agree
//! with each other where their domains overlap.

use std::collections::BTreeMap;

use mealib_accel::cu::{run_descriptor, CuCostModel};
use mealib_accel::{AccelModel, AccelParams, AcceleratorLayer};
use mealib_memsim::engine::{self, Op};
use mealib_memsim::{analytic, AccessPattern, MemoryConfig};
use mealib_tdl::{parse, AcceleratorKind, Descriptor, ParamBag};

/// The analytic DRAM model and the cycle engine agree on a mixed
/// read/write stream (they share timing constants).
#[test]
fn dram_paths_agree_on_mixed_stream() {
    let cfg = MemoryConfig::hmc_stack();
    let bytes = 16u64 << 20;
    let mut trace = engine::sequential_trace(0, bytes, 256, Op::Read);
    trace.extend(engine::sequential_trace(1 << 30, bytes, 256, Op::Write).iter());
    let sim = engine::simulate(&cfg, &trace, &engine::SimOptions::dual_check())
        .expect("preset config validates")
        .stats;
    let est = analytic::try_estimate(&cfg, &AccessPattern::sequential_rw(bytes, bytes)).unwrap();
    let ratio = est.elapsed.get() / sim.elapsed.get();
    assert!((0.6..1.6).contains(&ratio), "time ratio {ratio}");
    assert_eq!(est.bytes_moved(), sim.bytes_moved());
}

/// A descriptor run through the Configuration Unit prices each pass
/// exactly like direct model execution plus front-end costs.
#[test]
fn cu_run_matches_direct_model_execution() {
    let layer = AcceleratorLayer::mealib_default();
    let op = AccelParams::Gemv { m: 4096, n: 4096 };
    let direct = AccelModel::new(AcceleratorKind::Gemv).execute(&op, layer.hw(), layer.mem());

    let program = parse("PASS in=a out=b { COMP GEMV params=\"g.para\" }").unwrap();
    let mut bag = ParamBag::new();
    bag.insert("g.para".into(), op.to_bytes());
    let buffers: BTreeMap<String, u64> =
        [("a".to_string(), 0x1000u64), ("b".to_string(), 0x2000_0000)]
            .into_iter()
            .collect();
    let desc = Descriptor::encode(&program, &bag, &buffers).unwrap();
    let run = run_descriptor(&desc, &layer, &CuCostModel::default()).unwrap();

    let exec = run.execution().unwrap();
    assert_eq!(
        exec, direct,
        "single un-looped pass equals direct execution"
    );
    assert!(run.total_time() > direct.time, "plus nonzero setup");
}

/// Accelerator access patterns priced through the analytic model carry
/// exactly the operation's useful traffic.
#[test]
fn accelerator_traffic_matches_operation_footprint() {
    let hw = mealib_accel::AccelHwConfig::mealib_default();
    let cases: Vec<(AccelParams, u64)> = vec![
        // (op, expected useful bytes)
        (
            AccelParams::Axpy {
                n: 1 << 20,
                alpha: 1.0,
                incx: 1,
                incy: 1,
            },
            12 << 20,
        ),
        (
            AccelParams::Dot {
                n: 1 << 20,
                incx: 1,
                incy: 1,
                complex: false,
            },
            8 << 20,
        ),
        (
            AccelParams::Reshp {
                rows: 1024,
                cols: 1024,
                elem_bytes: 4,
            },
            8 << 20,
        ),
    ];
    for (op, want) in cases {
        let model = AccelModel::new(op.kind());
        let pattern = model.access_pattern(&op, &hw);
        assert_eq!(pattern.useful_bytes(), want, "{:?}", op.kind());
    }
}

/// TDL emitted by the compiler encodes and decodes through the binary
/// descriptor format without loss of structure.
#[test]
fn compiler_tdl_flows_through_descriptor_encoding() {
    let out =
        mealib_compiler::compile("for (i = 0; i < 100; ++i) cblas_sdot(256, x, 1, y, 1);").unwrap();
    let program = parse(&out.tdl[0].text).unwrap();
    let mut bag = ParamBag::new();
    for f in &out.tdl[0].params {
        bag.insert(
            f.file.clone(),
            AccelParams::Dot {
                n: 256,
                incx: 1,
                incy: 1,
                complex: false,
            }
            .to_bytes(),
        );
    }
    let buffers: BTreeMap<String, u64> = [("x".to_string(), 0x1000u64), ("y".to_string(), 0x2000)]
        .into_iter()
        .collect();
    let desc = Descriptor::encode(&program, &bag, &buffers).unwrap();
    assert_eq!(desc.total_invocations().unwrap(), 100);
    let layer = AcceleratorLayer::mealib_default();
    let run = run_descriptor(&desc, &layer, &CuCostModel::default()).unwrap();
    assert_eq!(run.invocations(), 100);
}

/// The memory hierarchy ladder: the same operation gets faster as the
/// substrate's bandwidth grows (DDR dual channel → 8-channel → stack).
#[test]
fn substrate_ladder_speeds_up_the_same_op() {
    let hw = mealib_accel::AccelHwConfig::mealib_default();
    let op = AccelParams::Gemv { m: 8192, n: 8192 };
    let model = AccelModel::new(AcceleratorKind::Gemv);
    let ddr = model
        .execute(&op, &hw, &MemoryConfig::ddr_dual_channel())
        .time;
    let msas = model.execute(&op, &hw, &MemoryConfig::msas_dram()).time;
    let stack = model.execute(&op, &hw, &MemoryConfig::hmc_stack()).time;
    assert!(ddr > msas && msas > stack, "{ddr} > {msas} > {stack}");
    // Ratios roughly track the bandwidth ratios (4x and 5x).
    let r1 = ddr / msas;
    let r2 = msas / stack;
    assert!((2.0..8.0).contains(&r1), "ddr/msas {r1:.1}");
    assert!((2.0..10.0).contains(&r2), "msas/stack {r2:.1}");
}
