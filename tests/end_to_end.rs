//! End-to-end integration: legacy source → compiler → TDL → runtime →
//! accelerator execution, and functional correctness of the public API
//! against the reference kernels.

use mealib::prelude::*;
use mealib::AccelParams;
use mealib_kernels::fft::Direction;
use mealib_tdl::ParamBag;
use mealib_workloads::stap::{self, StapConfig};

#[test]
fn compiled_legacy_code_executes_on_the_runtime() {
    let legacy = r#"
        float *a; float *b;
        a = malloc(sizeof(float) * 4096);
        b = malloc(sizeof(float) * 4096);
        for (i = 0; i < 32; ++i)
            cblas_saxpy(4096, 1.5, a, 1, b, 1);
        free(a); free(b);
    "#;
    let out = mealib_compiler::compile(legacy).expect("compiles");
    assert_eq!(out.stats.descriptors, 1);
    assert_eq!(out.stats.dynamic_calls, 32);

    // Execute the compiler-generated TDL through the runtime, exactly as
    // the transformed source would.
    let mut ml = Mealib::builder().build();
    ml.alloc_f32("a", 4096).unwrap();
    ml.alloc_f32("b", 4096).unwrap();
    let mut bag = ParamBag::new();
    bag.insert(
        out.tdl[0].params[0].file.clone(),
        AccelParams::Axpy {
            n: 4096,
            alpha: 1.5,
            incx: 1,
            incy: 1,
        }
        .to_bytes(),
    );
    let plan = ml
        .plan(&out.tdl[0].text, &bag)
        .expect("generated TDL plans");
    let run = ml.execute(&plan).expect("executes");
    assert_eq!(
        run.run.invocations(),
        32,
        "hardware loop runs all iterations"
    );
    assert!(run.total_time().get() > 0.0);
}

#[test]
fn api_results_match_reference_kernels() {
    let mut ml = Mealib::builder().build();
    let n = 2048;
    let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
    let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.02).cos()).collect();
    ml.alloc_f32("x", n).unwrap();
    ml.alloc_f32("y", n).unwrap();
    ml.write_f32("x", &x).unwrap();
    ml.write_f32("y", &y).unwrap();

    // saxpy against a host-side recomputation.
    ml.saxpy(0.5, "x", "y").unwrap();
    let got = ml.read_f32("y").unwrap();
    for i in 0..n {
        let want = y[i] + 0.5 * x[i];
        assert!((got[i] - want).abs() < 1e-5, "mismatch at {i}");
    }

    // dot against the kernel.
    let (dot, _) = ml.sdot("x", "y").unwrap();
    let want = mealib_kernels::blas1::sdot(&x, &got);
    assert!((dot - want).abs() < want.abs().max(1.0) * 1e-4);
}

#[test]
fn fft_through_the_api_is_invertible() {
    let mut ml = Mealib::builder().build();
    let n = 1024;
    let batch = 4;
    ml.alloc_c32("t", n * batch).unwrap();
    ml.alloc_c32("f", n * batch).unwrap();
    let signal: Vec<Complex32> = (0..n * batch)
        .map(|i| Complex32::new((i as f32 * 0.013).sin(), (i as f32 * 0.007).cos()))
        .collect();
    ml.write_c32("t", &signal).unwrap();
    ml.fft("t", "f", n, batch, Direction::Forward).unwrap();
    ml.fft("f", "t", n, batch, Direction::Inverse).unwrap();
    let back = ml.read_c32("t").unwrap();
    let max_err = back
        .iter()
        .zip(&signal)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_err < 1e-3, "round-trip error {max_err}");
}

#[test]
fn spmv_on_generated_rgg_matrix() {
    let mut ml = Mealib::builder().build();
    let m = mealib_workloads::rgg::generate(4096, 10.0, 9);
    ml.alloc_f32("x", m.cols()).unwrap();
    ml.alloc_f32("y", m.rows()).unwrap();
    let x: Vec<f32> = (0..m.cols()).map(|i| (i % 5) as f32).collect();
    ml.write_f32("x", &x).unwrap();
    let report = ml.spmv(&m, "x", "y").unwrap();
    let want = m.spmv(&x);
    assert_eq!(ml.read_f32("y").unwrap(), want);
    assert!(report.time().get() > 0.0);
}

#[test]
fn functional_stap_runs_on_the_api() {
    let mut ml = Mealib::builder().build();
    let out = stap::run_functional(&StapConfig::tiny(), &mut ml).unwrap();
    assert!(out.doppler_energy.is_finite());
    assert!(out.products_norm > 0.0);
    // All buffers were freed.
    assert!(ml.read_f32("datacube").is_err());
}

#[test]
fn many_operations_share_one_data_space() {
    let mut ml = Mealib::builder().build();
    for i in 0..16 {
        ml.alloc_f32(&format!("buf{i}"), 1 << 12).unwrap();
    }
    for i in 0..8 {
        let x = format!("buf{}", 2 * i);
        let y = format!("buf{}", 2 * i + 1);
        ml.write_f32(&x, &vec![1.0; 1 << 12]).unwrap();
        ml.write_f32(&y, &vec![2.0; 1 << 12]).unwrap();
        ml.saxpy(1.0, &x, &y).unwrap();
        assert_eq!(ml.read_f32(&y).unwrap()[0], 3.0);
    }
    assert_eq!(ml.runtime().counters().executions, 8);
    for i in 0..16 {
        ml.free(&format!("buf{i}")).unwrap();
    }
}
