//! Failure-injection integration tests: the stack must fail loudly and
//! precisely, never corrupt state, and keep working after errors.

use mealib::prelude::*;
use mealib::{AccelParams, StackId};
use mealib_runtime::{Runtime, RuntimeError};
use mealib_tdl::ParamBag;
use mealib_types::Bytes as RtBytes;

#[test]
fn data_space_exhaustion_is_reported_and_recoverable() {
    let mut ml = Mealib::builder().build();
    // The default LMS data space is ~2 GiB; a 4 GiB ask must fail.
    let err = ml.alloc_bytes("huge", 4 << 30).unwrap_err();
    assert!(matches!(err, MealibError::Runtime(_)), "{err}");
    // The failure must not leak state: a reasonable allocation succeeds
    // and the failed name is not registered.
    assert!(ml.read_f32("huge").is_err());
    ml.alloc_f32("ok", 1024).unwrap();
    ml.write_f32("ok", &vec![1.0; 1024]).unwrap();
    assert_eq!(ml.read_f32("ok").unwrap().len(), 1024);
}

#[test]
fn fragmentation_failure_names_the_largest_block() {
    let mut rt = Runtime::new();
    rt.mem_alloc("a", RtBytes::from_gib(1)).unwrap();
    // ~1 GiB remains; asking for 1.5 GiB must fail with a useful message.
    let err = rt.mem_alloc("b", RtBytes::new(3 << 29)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of contiguous memory"), "{msg}");
    assert!(msg.contains("largest free block"), "{msg}");
}

#[test]
fn plan_against_missing_buffer_fails_cleanly() {
    let mut ml = Mealib::builder().build();
    let mut bag = ParamBag::new();
    bag.insert(
        "p.para".into(),
        AccelParams::Fft { n: 64, batch: 1 }.to_bytes(),
    );
    let err = ml
        .plan(
            "PASS in=nope out=also_nope { COMP FFT params=\"p.para\" }",
            &bag,
        )
        .unwrap_err();
    assert!(err.to_string().contains("no physical address"), "{err}");
}

#[test]
fn plan_with_missing_params_fails_cleanly() {
    let mut ml = Mealib::builder().build();
    ml.alloc_f32("x", 64).unwrap();
    ml.alloc_f32("y", 64).unwrap();
    let err = ml
        .plan(
            "PASS in=x out=y { COMP FFT params=\"ghost.para\" }",
            &ParamBag::new(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("ghost.para"), "{err}");
}

#[test]
fn corrupt_parameter_blob_fails_at_execute() {
    let mut ml = Mealib::builder().build();
    ml.alloc_f32("x", 64).unwrap();
    ml.alloc_f32("y", 64).unwrap();
    let mut bag = ParamBag::new();
    // An FFT blob whose length field is not a power of two.
    let mut blob = AccelParams::Fft { n: 64, batch: 1 }.to_bytes();
    blob[1..9].copy_from_slice(&100u64.to_le_bytes());
    bag.insert("f.para".into(), blob);
    let plan = ml
        .plan("PASS in=x out=y { COMP FFT params=\"f.para\" }", &bag)
        .unwrap();
    let err = ml.execute(&plan).unwrap_err();
    assert!(err.to_string().contains("power of two"), "{err}");
}

#[test]
fn freeing_a_buffer_invalidates_existing_plans_resolution() {
    // Plans capture physical addresses at plan time; the runtime does
    // not dangle — re-planning after a free fails to resolve.
    let mut ml = Mealib::builder().build();
    ml.alloc_f32("x", 64).unwrap();
    ml.alloc_f32("y", 64).unwrap();
    ml.free("x").unwrap();
    let mut bag = ParamBag::new();
    bag.insert(
        "a.para".into(),
        AccelParams::Axpy {
            n: 64,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        }
        .to_bytes(),
    );
    let err = ml
        .plan("PASS in=x out=y { COMP AXPY params=\"a.para\" }", &bag)
        .unwrap_err();
    assert!(err.to_string().contains('x'), "{err}");
}

#[test]
fn destroyed_plans_cannot_run_but_runtime_survives() {
    let mut ml = Mealib::builder().build();
    ml.alloc_f32("x", 256).unwrap();
    ml.alloc_f32("y", 256).unwrap();
    ml.write_f32("x", &vec![1.0; 256]).unwrap();
    ml.write_f32("y", &vec![1.0; 256]).unwrap();
    // Normal operation still works after a plan-time failure above.
    let report = ml.saxpy(1.0, "x", "y").unwrap();
    assert!(report.time().get() > 0.0);
    assert_eq!(ml.read_f32("y").unwrap()[0], 2.0);
}

#[test]
fn invalid_stack_ids_are_rejected_with_inventory() {
    let mut rt = Runtime::with_stack_count(2);
    let err = rt
        .mem_alloc_on("x", RtBytes::from_kib(4), StackId(7))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("RMS7"), "{msg}");
    assert!(msg.contains("2 stack(s)"), "{msg}");
}

#[test]
fn compiler_rejects_malformed_sources_without_panicking() {
    for src in [
        "int x = ;",
        "for (i = 0; ; ) f();",
        "\"unterminated",
        "fftwf_execute(never_planned);",
        "cblas_saxpy(64, 1.0, 3 + 4, 1, y, 1);", // opaque buffer argument
        "}{",
    ] {
        let result = mealib_compiler::compile(src);
        assert!(result.is_err(), "{src:?} should be rejected");
        // The error must render without panicking.
        let _ = result.unwrap_err().to_string();
    }
}

#[test]
fn runtime_error_chain_renders_end_to_end() {
    let mut rt = Runtime::new();
    let err = rt.acc_plan("LOOP 0 { }", &ParamBag::new()).unwrap_err();
    assert!(matches!(err, RuntimeError::Parse(_)));
    assert!(err.to_string().contains("TDL parse error"));
}
