//! Cross-layer checks of the `mealib-obs` instrumentation: JSONL traces
//! parse, and every `Breakdown` reconciles with the aggregate report it
//! itemizes — for the STAP application and the SAR imaging chain.

use mealib::prelude::*;
use mealib_obs::json;
use mealib_obs::{Counter, Obs, Phase, TraceRecorder};
use mealib_sim::{run_sweep, ExperimentOptions};
use mealib_workloads::sar;
use mealib_workloads::stap::{self, StapConfig};

fn assert_within_1pct(label: &str, got: f64, want: f64) {
    let tol = 0.01 * want.abs().max(f64::MIN_POSITIVE);
    assert!(
        (got - want).abs() <= tol,
        "{label}: breakdown {got} vs report {want} differ by more than 1%"
    );
}

#[test]
fn stap_trace_jsonl_parses_and_reconciles() {
    let rec = TraceRecorder::shared();
    let (run, breakdown) = stap::run_on_mealib_traced(&StapConfig::small(), &Obs::new(rec.clone()));

    // Every JSONL line is a well-formed object of a known event type.
    let jsonl = rec.to_jsonl();
    assert!(!jsonl.is_empty(), "trace captured events");
    let mut spans = 0;
    let mut counts = 0;
    for line in jsonl.lines() {
        let v = json::parse(line).expect("trace line parses as JSON");
        let obj = v.as_object().expect("trace line is an object");
        match obj["type"].as_str() {
            Some("span") => {
                spans += 1;
                assert!(obj["phase"].as_str().is_some(), "span has a phase");
                assert!(obj["time_s"].as_f64().is_some(), "span has modeled time");
            }
            Some("count") => {
                counts += 1;
                assert!(obj["counter"].as_str().is_some(), "count names a counter");
                assert!(obj["value"].as_f64().is_some(), "count has a value");
            }
            other => panic!("unknown trace event type {other:?}"),
        }
    }
    assert!(spans > 0, "spans recorded");
    assert!(counts > 0, "counters recorded");

    // The breakdown reconciles with the StapRun aggregate totals.
    assert_within_1pct(
        "stap time",
        breakdown.total_time().get(),
        run.total_time().get(),
    );
    assert_within_1pct(
        "stap energy",
        breakdown.total_energy().get(),
        run.total_energy().get(),
    );

    // The recorder saw the same breakdown that was returned.
    let seen = rec.breakdown();
    assert_within_1pct(
        "recorded time",
        seen.total_time().get(),
        run.total_time().get(),
    );
    assert!(seen.counter(Counter::DramAct) > 0, "DRAM activates traced");
    assert!(seen.counter(Counter::CuPasses) > 0, "CU passes traced");
}

#[test]
fn parallel_sweep_breakdowns_reconcile_per_run() {
    // One shared recorder across a 4-worker sweep: every run's own
    // breakdown must still reconcile with its MEALib row (the per-run
    // merge is local to the experiment), and the modeled results must be
    // identical to the serial sweep.
    let ops = [
        mealib_accel::AccelParams::Axpy {
            n: 1 << 18,
            alpha: 2.0,
            incx: 1,
            incy: 1,
        },
        mealib_accel::AccelParams::Gemv { m: 1024, n: 1024 },
        mealib_accel::AccelParams::Fft { n: 1024, batch: 64 },
        mealib_accel::AccelParams::Reshp {
            rows: 2048,
            cols: 2048,
            elem_bytes: 4,
        },
    ];
    let rec = TraceRecorder::shared();
    let opts = ExperimentOptions::default().recorder(rec.clone());
    let parallel = run_sweep(&ops, &opts, 4);
    let serial = run_sweep(&ops, &ExperimentOptions::default(), 1);
    for (p, s) in parallel.iter().zip(&serial) {
        let p = p.as_ref().expect("preflight clean");
        let s = s.as_ref().expect("preflight clean");
        let mealib_row = p.comparison.rows.last().expect("five rows");
        assert_within_1pct(
            "sweep run time",
            p.breakdown.total_time().get(),
            mealib_row.time.get(),
        );
        assert_within_1pct(
            "sweep run energy",
            p.breakdown.total_energy().get(),
            mealib_row.energy.get(),
        );
        assert_eq!(p.comparison, s.comparison, "parallel ≡ serial results");
    }
    // The shared recorder accumulated every run's phases.
    let seen = rec.breakdown();
    assert!(seen.phase(Phase::Dma).time.get() > 0.0, "DMA phases merged");
    assert!(seen.counter(Counter::DramAct) > 0, "DRAM activates traced");
}

#[test]
fn sar_breakdown_reconciles_with_op_report() {
    let rec = TraceRecorder::shared();
    let mut ml = Mealib::builder().recorder(rec.clone()).build();

    let n = 64;
    let raw: Vec<Complex32> = (0..n * n)
        .map(|i| Complex32::new((i % 17) as f32 - 8.0, (i % 11) as f32 - 5.0))
        .collect();
    let image = sar::form_image(&mut ml, &raw, n).expect("SAR image forms");
    assert!(image.energy.is_finite() && image.energy > 0.0);

    // The OpReport's breakdown itemizes exactly its own totals.
    let report = &image.report;
    let bd = report.breakdown();
    assert_within_1pct("sar time", bd.total_time().get(), report.time().get());
    assert_within_1pct("sar energy", bd.total_energy().get(), report.energy().get());
    assert!(
        bd.phase(Phase::Flush).time.get() > 0.0,
        "invocation overhead shows up as the flush phase"
    );

    // The installed recorder saw the allocator and DRAM activity of the
    // whole pipeline, not just the chained pass.
    let seen = rec.breakdown();
    let raw_bytes = (n * n * 8) as u64;
    assert!(
        seen.counter(Counter::AllocBytes) >= 2 * raw_bytes,
        "both SAR buffers counted"
    );
    assert!(seen.counter(Counter::DramAct) > 0, "DRAM activates traced");
    assert!(
        seen.counter(Counter::CacheFlushes) >= 1,
        "each invocation flushes the cache"
    );
}
