//! The paper's headline claims, asserted as executable shape checks.
//! Absolute numbers are not expected to match the authors' testbed; the
//! orderings, rough factors, and trends are.

use mealib_accel::AccelParams;
use mealib_sim::{run_experiment, ExperimentOptions, OpComparison};
use mealib_types::stats::geometric_mean;
use mealib_workloads::{datasets, fig1, sar, stap};

/// Default-options experiment, unwrapped to the five-platform rows.
fn compare(op: &AccelParams) -> OpComparison {
    run_experiment(op, &ExperimentOptions::default())
        .expect("preflight clean")
        .comparison
}

/// §5.1 / Fig. 9: "MEALib achieves the best performance on all the
/// evaluated operations, and the improvements range from 11x (SPMV) to
/// 88x (RESHP). On average, MEALib achieves 38x."
#[test]
fn fig9_mealib_wins_everywhere_with_the_right_spread() {
    let mut gains = Vec::new();
    for row in datasets::table2() {
        let cmp = compare(&row.params);
        let mealib = cmp.mealib_speedup();
        for (name, s) in cmp.speedups() {
            assert!(
                mealib >= s,
                "{}: {name} at {s:.1}x beats MEALib",
                row.function
            );
        }
        gains.push((row.params.kind(), mealib));
    }
    let spmv = gains
        .iter()
        .find(|(k, _)| k == &mealib_tdl::AcceleratorKind::Spmv)
        .unwrap()
        .1;
    let reshp = gains
        .iter()
        .find(|(k, _)| k == &mealib_tdl::AcceleratorKind::Reshp)
        .unwrap()
        .1;
    assert!(
        gains.iter().all(|&(_, g)| g >= spmv * 0.95),
        "SPMV is the smallest gain"
    );
    assert!(
        gains.iter().all(|&(_, g)| g <= reshp * 1.05),
        "RESHP is the largest gain"
    );
    assert!(reshp / spmv > 4.0, "an order of spread between extremes");
    let avg = geometric_mean(&gains.iter().map(|&(_, g)| g).collect::<Vec<_>>()).unwrap();
    assert!(
        (15.0..80.0).contains(&avg),
        "average {avg:.1}x vs paper 38x"
    );
}

/// §5.1 / Fig. 10: "the energy efficiency gains of MEALib are much
/// larger than the performance gains" — 75x average vs 38x.
#[test]
fn fig10_energy_gains_exceed_performance_gains() {
    let mut perf = Vec::new();
    let mut eff = Vec::new();
    for row in datasets::table2() {
        let cmp = compare(&row.params);
        perf.push(cmp.mealib_speedup());
        eff.push(cmp.mealib_efficiency_gain());
    }
    let avg_perf = geometric_mean(&perf).unwrap();
    let avg_eff = geometric_mean(&eff).unwrap();
    assert!(
        avg_eff > 1.3 * avg_perf,
        "{avg_eff:.1}x EE vs {avg_perf:.1}x perf"
    );
}

/// Table 3 ordering: Haswell < PSAS < MSAS < MEALib on average.
#[test]
fn platform_ladder_is_ordered() {
    let mut psas = Vec::new();
    let mut msas = Vec::new();
    let mut mealib = Vec::new();
    for row in datasets::table2() {
        let cmp = compare(&row.params);
        let s = cmp.speedups();
        psas.push(s[2].1);
        msas.push(s[3].1);
        mealib.push(s[4].1);
    }
    let psas = geometric_mean(&psas).unwrap();
    let msas = geometric_mean(&msas).unwrap();
    let mealib = geometric_mean(&mealib).unwrap();
    // Paper averages: PSAS 2.51x, MSAS 10.32x, MEALib 38x.
    assert!(psas > 1.0, "PSAS average {psas:.2}x");
    assert!(msas > 2.0 * psas, "MSAS {msas:.2}x vs PSAS {psas:.2}x");
    assert!(
        mealib > 2.0 * msas,
        "MEALib {mealib:.2}x vs MSAS {msas:.2}x"
    );
}

/// Fig. 1: libraries buy 5x-42x on commodity hardware, with PERFECT
/// holding the flagship.
#[test]
fn fig1_library_gains() {
    let points = fig1::speedups();
    let max = points.iter().map(|p| p.multi_thread).fold(0.0f64, f64::max);
    assert!((15.0..80.0).contains(&max), "max {max:.1}x vs paper 42x");
    for p in &points {
        assert!(
            p.multi_thread > 1.5,
            "{} gains {:.1}x",
            p.benchmark.name,
            p.multi_thread
        );
    }
}

/// Fig. 12: hardware chaining ~2.5x and hardware loop ~9.5x at 256²,
/// both shrinking with problem size, loop > chain.
#[test]
fn fig12_configuration_efficiency_shapes() {
    let chain = sar::chaining_sweep();
    let lp = sar::loop_sweep(128);
    assert!(
        (1.5..4.5).contains(&chain[0].gain()),
        "chain {:.2}x",
        chain[0].gain()
    );
    assert!(
        (4.0..25.0).contains(&lp[0].gain()),
        "loop {:.2}x",
        lp[0].gain()
    );
    assert!(lp[0].gain() > chain[0].gain());
    assert!(chain.last().unwrap().gain() < chain[0].gain());
    assert!(lp.last().unwrap().gain() < lp[0].gain());
}

/// Fig. 13: STAP gains grow with dataset size; EDP gains exceed
/// performance gains (2.0/2.3/3.2x and 4.5/9.0/10.2x in the paper).
#[test]
fn fig13_stap_gains() {
    let (p_small, e_small) = stap::gains(&stap::StapConfig::small());
    let (p_large, e_large) = stap::gains(&stap::StapConfig::large());
    assert!(p_small < p_large, "{p_small:.2} -> {p_large:.2}");
    assert!(e_small < e_large, "{e_small:.2} -> {e_large:.2}");
    assert!((1.3..6.0).contains(&p_large));
    assert!((3.0..20.0).contains(&e_large));
    assert!(e_large > p_large, "EDP gain dominates perf gain");
}

/// §3.4: Listing 1's 16M+ library calls compact into 3 descriptors.
#[test]
fn compiler_compaction_claim() {
    let src = r#"
        int N_DOP = 256; int N_BLOCKS = 64; int N_STEERING = 16; int TBS = 64;
        plan_ct = fftwf_plan_guru_dft(0, NULL, 3, hm1, datacube, padded, FWD, FLAGS);
        plan_fft = fftwf_plan_guru_dft(1, dims, 2, hm2, padded, doppler, FWD, FLAGS);
        fftwf_execute(plan_ct);
        fftwf_execute(plan_fft);
        #pragma omp parallel for num_threads(4)
        for (dop = 0; dop < N_DOP; ++dop)
            for (block = 0; block < N_BLOCKS; ++block)
                for (sv = 0; sv < N_STEERING; ++sv)
                    for (cell = 0; cell < TBS; ++cell)
                        cblas_cdotc_sub(12, &w[dop][block][sv][0], 1, &s[dop][block][cell], TBS, &p[dop][block][sv][cell]);
        for (dop = 0; dop < N_DOP; ++dop)
            cblas_saxpy(4096, 1.0, p, 1, doppler, 1);
    "#;
    let out = mealib_compiler::compile(src).unwrap();
    assert_eq!(out.stats.descriptors, 3);
    assert!(out.stats.dynamic_calls > 16_000_000);
}

/// Table 5: the accelerator layer fits comfortably in the 68 mm² die.
#[test]
fn table5_area_budget() {
    let total = mealib_accel::power::total_layer_area(mealib_accel::power::NOC_AREA_MM2);
    let share = total / mealib_accel::power::LAYER_AREA_BUDGET_MM2;
    assert!(
        (0.55..0.70).contains(&share),
        "share {share:.3} vs paper 61.43%"
    );
}
