//! Acceptance tests for the time-resolved profiling layer: windowed
//! counters reconcile exactly with the unprofiled aggregates for STAP
//! and SAR traffic, parallel profiled replays are bit-identical to
//! serial ones at every job count, emitted Chrome traces round-trip
//! through the validator, every run's bottleneck attribution covers
//! 100% of modeled time, and the STAP-small trace byte-matches its
//! checked-in golden file.

use mealib::prelude::*;
use mealib_accel::trace_exec::generate_trace;
use mealib_accel::AcceleratorLayer;
use mealib_memsim::engine::{simulate, EngineKind, SimOptions};
use mealib_memsim::TraceBuffer;
use mealib_obs::validate_chrome_trace;
use mealib_workloads::sar;
use mealib_workloads::stap::{self, StapConfig, STAP_DRAM_WINDOW_CYCLES};

const TRACE_BYTES: u64 = 4 << 20;

/// The DRAM request streams of STAP-small's three offloaded phases plus
/// the SAR imaging stages, all at the profiled-replay footprint.
fn workload_traces() -> Vec<(String, TraceBuffer)> {
    let layer = AcceleratorLayer::mealib_default();
    let cfg = StapConfig::small();
    let mut traces = Vec::new();
    for phase in ["fftw (chain)", "cdotc", "saxpy"] {
        let params = stap::accel_phase_params(&cfg, phase);
        let (trace, _) = generate_trace(&params, layer.hw(), TRACE_BYTES);
        traces.push((format!("stap:{phase}"), trace));
    }
    for (i, params) in sar::sar_stages(256).iter().enumerate() {
        let (trace, _) = generate_trace(params, layer.hw(), TRACE_BYTES);
        traces.push((format!("sar:stage{i}"), trace));
    }
    traces
}

#[test]
fn windowed_counters_reconcile_exactly_with_aggregates() {
    let layer = AcceleratorLayer::mealib_default();
    for (name, trace) in workload_traces() {
        let opts = SimOptions::dual_check().profile(STAP_DRAM_WINDOW_CYCLES);
        let mut profiled = simulate(layer.mem(), &trace, &opts).expect("preset config validates");
        let timeline = profiled
            .timeline
            .take()
            .expect("profiled run carries a timeline");
        let plain = simulate(layer.mem(), &trace, &SimOptions::dual_check())
            .expect("preset config validates");
        assert_eq!(
            profiled, plain,
            "{name}: profiling must not perturb the run"
        );

        // Summing every window cell reproduces the aggregate counters
        // exactly — each burst is charged to exactly one window.
        let sum = timeline.aggregate();
        let stats = &profiled.stats;
        assert_eq!(sum.bytes_read, stats.bytes_read.get(), "{name}: bytes read");
        assert_eq!(
            sum.bytes_written,
            stats.bytes_written.get(),
            "{name}: bytes written"
        );
        assert_eq!(sum.activations, stats.activations, "{name}: ACTs");
        assert_eq!(sum.precharges, stats.precharges, "{name}: PREs");
        assert_eq!(sum.row_hits, stats.row_hits, "{name}: row hits");
        assert_eq!(sum.row_misses, stats.row_misses, "{name}: row misses");
        assert_eq!(sum.refreshes, stats.refreshes, "{name}: refreshes");

        // Per-lane sums reconcile with the per-vault command counts.
        for (unit, vault) in profiled.vaults.iter().enumerate() {
            let lane: mealib_obs::WindowCounters =
                timeline.iter().filter(|(_, l, _)| *l == unit as u16).fold(
                    mealib_obs::WindowCounters::default(),
                    |mut acc, (_, _, c)| {
                        acc.merge(c);
                        acc
                    },
                );
            assert_eq!(
                lane.activations, vault.activations,
                "{name}: vault {unit} ACTs"
            );
            assert_eq!(lane.row_hits, vault.row_hits, "{name}: vault {unit} hits");
            assert_eq!(
                lane.row_misses, vault.row_misses,
                "{name}: vault {unit} misses"
            );
        }
    }
}

#[test]
fn profiled_replay_is_bit_identical_across_worker_counts() {
    let layer = AcceleratorLayer::mealib_default();
    for (name, trace) in workload_traces() {
        let serial = simulate(
            layer.mem(),
            &trace,
            &SimOptions::cycle().profile(STAP_DRAM_WINDOW_CYCLES),
        )
        .expect("preset config validates");
        for engine in [EngineKind::Cycle, EngineKind::Fast] {
            for jobs in [0, 2, 4, 8] {
                let opts = SimOptions {
                    engine,
                    jobs,
                    ..SimOptions::cycle().profile(STAP_DRAM_WINDOW_CYCLES)
                };
                let parallel =
                    simulate(layer.mem(), &trace, &opts).expect("preset config validates");
                assert_eq!(
                    serial, parallel,
                    "{name}: {engine:?} jobs={jobs} must be bit-identical to serial"
                );
            }
        }
    }
}

#[test]
fn stap_profile_round_trips_and_attributes_all_time() {
    let sp = stap::profile_on_mealib(&StapConfig::small());
    let doc = sp.profile.to_chrome_trace();
    let summary = validate_chrome_trace(&doc).expect("STAP trace must round-trip");
    assert!(summary.spans > 0 && summary.counters > 0 && summary.tracks >= 5);
    assert_eq!(
        sp.attribution.coverage(),
        1.0,
        "attribution windows must cover 100% of modeled time"
    );
    let total: f64 = sp.run.total_time().get();
    assert!((sp.attribution.total.get() - total).abs() <= 1e-9 * total);
}

#[test]
fn facade_run_attribution_covers_all_time() {
    // The runtime attaches an attribution to every run, SAR included.
    let mut ml = Mealib::builder().build();
    let n = 64usize;
    let raw = vec![mealib::Complex32::new(1.0, 0.5); n * n];
    let image = sar::form_image(&mut ml, &raw, n).expect("SAR image forms");
    let attribution = image.report.attribution();
    assert_eq!(attribution.coverage(), 1.0);
    assert!(!attribution.windows.is_empty());
    let profile = image.report.profile();
    validate_chrome_trace(&profile.to_chrome_trace()).expect("SAR run profile round-trips");
}

#[test]
fn stap_small_trace_matches_golden() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/stap_small.trace.json"
    );
    let doc = stap::profile_on_mealib(&StapConfig::small())
        .profile
        .to_chrome_trace();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &doc).expect("golden file writable");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden trace checked in (run with UPDATE_GOLDEN=1 to bless)");
    assert_eq!(
        doc, golden,
        "STAP-small trace drifted from tests/golden/stap_small.trace.json; \
         if the change is intended, re-bless with UPDATE_GOLDEN=1"
    );
}
