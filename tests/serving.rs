//! Cross-layer checks of the serving loop: `serve_observed` feeds the
//! `mealib-obs` pipeline (JSONL traces parse, phases are the known
//! ones), the recorder's view reconciles bit-for-bit with the report's
//! own breakdown, and the umbrella re-export path works end to end.

use mealib_obs::json;
use mealib_obs::{Obs, Phase, TraceRecorder};
use mealib_repro::serve::{generate, serve_observed, Catalogue, ServeConfig, TrafficSpec};
use mealib_verify::BoundsEnv;

fn small_traffic(cat: &Catalogue, seed: u64) -> mealib_repro::serve::Traffic {
    let mut spec = TrafficSpec::poisson(cat, seed, 4, 1.5);
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    spec.p_impossible = 0.25;
    generate(cat, &spec)
}

#[test]
fn serve_trace_jsonl_parses_and_breakdown_reconciles() {
    let env = BoundsEnv::default();
    let cat = Catalogue::standard(&env);
    let traffic = small_traffic(&cat, 4242);
    assert!(!traffic.sessions.is_empty());

    let rec = TraceRecorder::shared();
    let report = serve_observed(
        &cat,
        &traffic,
        &ServeConfig::default(),
        &env,
        &Obs::new(rec.clone()),
    );
    assert!(!report.completed.is_empty(), "some sessions complete");

    // Every JSONL line is a well-formed object of a known event type,
    // and the serving loop emits only admission (verify) and replay
    // (compute) spans.
    let jsonl = rec.to_jsonl();
    assert!(!jsonl.is_empty(), "trace captured events");
    let mut verify_spans = 0;
    let mut compute_spans = 0;
    for line in jsonl.lines() {
        let v = json::parse(line).expect("trace line parses as JSON");
        let obj = v.as_object().expect("trace line is an object");
        if obj["type"].as_str() == Some("span") {
            match obj["phase"].as_str() {
                Some("verify") => verify_spans += 1,
                Some("compute") => {
                    compute_spans += 1;
                    assert!(
                        obj["time_s"].as_f64().expect("span has modeled time") > 0.0,
                        "replay spans carry the epoch's modeled time"
                    );
                }
                other => panic!("serving loop emitted an unexpected phase {other:?}"),
            }
        }
    }
    assert!(verify_spans > 0, "admission spans recorded");
    assert!(compute_spans > 0, "replay spans recorded");
    assert_eq!(
        verify_spans, compute_spans,
        "each admitted epoch pairs one admission span with one replay"
    );

    // The recorder's accumulated view IS the report's breakdown: the
    // compute phase carries the whole modeled clock, bit for bit.
    let seen = rec.breakdown();
    assert_eq!(
        seen.phase(Phase::Compute).time.get().to_bits(),
        report.breakdown_compute_s().to_bits(),
        "recorder and report disagree on compute time"
    );
    assert_eq!(
        seen.phase(Phase::Compute).time.get().to_bits(),
        report.modeled_s.to_bits(),
        "breakdown compute time is not the modeled clock"
    );
    assert_eq!(
        seen.phase(Phase::Compute).energy.get().to_bits(),
        report
            .breakdown
            .phase(Phase::Compute)
            .energy
            .get()
            .to_bits(),
        "recorder and report disagree on replay energy"
    );
}

#[test]
fn observed_and_unobserved_runs_are_bit_identical() {
    // Instrumentation is read-only: hanging a recorder off the loop
    // must not perturb a single modeled bit.
    let env = BoundsEnv::default();
    let cat = Catalogue::standard(&env);
    let traffic = small_traffic(&cat, 777);
    let config = ServeConfig::default();

    let silent = mealib_repro::serve::serve(&cat, &traffic, &config, &env);
    let observed = serve_observed(
        &cat,
        &traffic,
        &config,
        &env,
        &Obs::new(TraceRecorder::shared()),
    );
    assert_eq!(silent.fingerprint(), observed.fingerprint());
    assert_eq!(silent, observed);
}
