//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace resolves `criterion` to this in-tree harness (a path
//! dependency in the root `Cargo.toml`'s `[workspace.dependencies]`
//! table). It covers the subset of
//! the criterion 0.5 API the workspace's benches use — groups,
//! [`Bencher::iter`], [`Throughput`], [`BenchmarkId`] and the
//! `criterion_group!`/`criterion_main!` macros — and reports a mean
//! wall-clock time per iteration. There is no statistical analysis,
//! outlier rejection, or HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How much work one iteration performs, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration (binary units in reports).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units in reports).
    BytesDecimal(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id naming only the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then batches until enough
    /// samples accumulate for a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            discard(routine());
        }
        // One calibration pass sizes batches near ~10ms each.
        let start = Instant::now();
        discard(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let budget = Duration::from_millis(200);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < budget && iters < 1_000_000 {
            let start = Instant::now();
            for _ in 0..batch {
                discard(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.total = total;
        self.iters = iters;
    }
}

/// Keeps a benchmark result alive past the optimizer without `unsafe`.
fn discard<O>(value: O) {
    let boxed = std::hint::black_box(Box::new(value));
    drop(std::hint::black_box(boxed));
}

/// Prevents the compiler from optimizing `value` away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{id:<40} no iterations recorded");
        return;
    }
    let per_iter = bencher.total.as_secs_f64() / bencher.iters as f64;
    let time = if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.3} Melem/s", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.3} GiB/s", n as f64 / per_iter / (1u64 << 30) as f64)
        }
        Some(Throughput::BytesDecimal(n)) => {
            format!("  {:.3} GB/s", n as f64 / per_iter / 1e9)
        }
        None => String::new(),
    };
    println!("{id:<40} {time:>12}/iter{rate}  ({} iters)", bencher.iters);
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work, enabling derived rates in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(id, &bencher, None);
        self
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations_and_time() {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert!(b.iters > 0);
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn groups_and_ids_run_their_closures() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Elements(4));
            g.bench_function("direct", |b| {
                b.iter(|| 2 + 2);
            });
            g.bench_with_input(BenchmarkId::from_parameter(64), &64u32, |b, &n| {
                b.iter(|| n * 2);
            });
            ran += 1;
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        assert_eq!(ran, 1);
    }
}
