//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace resolves `proptest` to this in-tree implementation (a path
//! dependency in the root `Cargo.toml`'s `[workspace.dependencies]`
//! table). It implements the
//! subset of the proptest 1.x API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_filter_map`, range,
//! tuple, [`strategy::Just`], `prop_oneof!`, `any::<T>()` and
//! regex-subset string strategies, [`collection::vec`],
//! [`sample::select`], and the [`proptest!`]/`prop_assert*` macros.
//!
//! Differences from the real crate: cases are sampled from a
//! deterministic per-test generator (no OS entropy), and failures are
//! **not shrunk** — the failing case index and seed are printed instead
//! so a failure can be replayed by rerunning the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case generation and the per-test runner loop.
pub mod test_runner {
    /// Runner configuration; only `cases` is meaningful in this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Matches the real crate's default case count.
            Self { cases: 256 }
        }
    }

    /// Deterministic per-test random source (xoshiro256**, seeded from
    /// the test name and case index via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name keeps distinct tests decorrelated.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h ^ (u64::from(case) << 32) ^ u64::from(case);
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)` by rejection sampling.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }

    /// Drives one property through `config.cases` sampled cases. On a
    /// panic the failing case index is reported before unwinding, since
    /// this shim does not shrink.
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng),
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest shim: property `{test_name}` failed on case {case}/{} \
                     (deterministic; rerun the test to reproduce)",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The [`Strategy`] trait and the combinator/leaf strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value-tree/shrinking layer:
    /// a strategy is just a deterministic sampler over a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Keeps only values `f` maps to `Some`, resampling otherwise.
        /// `whence` names the constraint for the give-up message.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                source: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S, U, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            // Generous retry budget; filters in practice accept most
            // samples, and a dead filter should fail loudly.
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.source.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map gave up: {}", self.whence);
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (built by the [`prop_oneof!`](crate::prop_oneof) macro).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Boxes one `prop_oneof!` arm (helper for the macro, which needs a
    /// coercion point with an inferable value type).
    pub fn union_option<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String-pattern strategies: a `&'static str` is interpreted as a
    /// small regex subset (literals, `[...]` classes with ranges and
    /// escapes, `\PC` for printable, and `{m}`/`{m,n}`/`*`/`+`/`?`
    /// quantifiers) and sampled into matching strings.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

/// Regex-subset pattern sampling backing the `&str` strategy.
pub mod string {
    use crate::test_runner::TestRng;

    /// Inclusive char ranges a position can draw from.
    struct CharClass {
        ranges: Vec<(char, char)>,
    }

    impl CharClass {
        fn literal(c: char) -> Self {
            Self {
                ranges: vec![(c, c)],
            }
        }

        /// ASCII printable; stands in for the real crate's `\PC`
        /// (any non-control character).
        fn printable() -> Self {
            Self {
                ranges: vec![(' ', '~')],
            }
        }

        fn sample(&self, rng: &mut TestRng) -> char {
            let total: u64 = self
                .ranges
                .iter()
                .map(|&(lo, hi)| u64::from(u32::from(hi)) - u64::from(u32::from(lo)) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in &self.ranges {
                let width = u64::from(u32::from(hi)) - u64::from(u32::from(lo)) + 1;
                if pick < width {
                    return char::from_u32(u32::from(lo) + pick as u32)
                        .expect("ranges only span valid scalar values");
                }
                pick -= width;
            }
            unreachable!("pick < total")
        }
    }

    struct Atom {
        class: CharClass,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let class = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // `a-z` is a range unless `-` is the last item.
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in {pattern:?}"
                    );
                    i += 1; // consume ']'
                    CharClass { ranges }
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "dangling escape in {pattern:?}");
                    if chars[i] == 'P' || chars[i] == 'p' {
                        // Only the printable class `\PC` is supported.
                        assert!(
                            i + 1 < chars.len() && chars[i + 1] == 'C',
                            "unsupported unicode class in {pattern:?}"
                        );
                        i += 2;
                        CharClass::printable()
                    } else {
                        let c = chars[i];
                        i += 1;
                        CharClass::literal(c)
                    }
                }
                '.' => {
                    i += 1;
                    CharClass::printable()
                }
                c => {
                    i += 1;
                    CharClass::literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        i += 1;
                        let mut nums = [String::new(), String::new()];
                        let mut which = 0;
                        let mut saw_comma = false;
                        while i < chars.len() && chars[i] != '}' {
                            if chars[i] == ',' {
                                which = 1;
                                saw_comma = true;
                            } else {
                                nums[which].push(chars[i]);
                            }
                            i += 1;
                        }
                        assert!(i < chars.len(), "unterminated quantifier in {pattern:?}");
                        i += 1; // consume '}'
                        let lo: usize = nums[0].parse().expect("quantifier lower bound");
                        let hi = if !saw_comma {
                            lo
                        } else if nums[1].is_empty() {
                            lo + 64
                        } else {
                            nums[1].parse().expect("quantifier upper bound")
                        };
                        (lo, hi)
                    }
                    '*' => {
                        i += 1;
                        (0, 32)
                    }
                    '+' => {
                        i += 1;
                        (1, 32)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { class, min, max });
        }
        atoms
    }

    /// Samples one string matching `pattern`.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` samples with a length drawn from
    /// `size` (an exact `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }

    /// Uniformly selects one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn` body runs against many sampled
/// bindings. Accepts an optional `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $config;
                $crate::test_runner::run_cases(
                    &__pt_config,
                    stringify!($name),
                    |__pt_rng| {
                        $(let $parm =
                            $crate::strategy::Strategy::sample(&($strategy), __pt_rng);)+
                        $body
                    },
                );
            }
        )*
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($parm in $strategy),+) $body
            )*
        }
    };
}

/// Uniform choice between the listed strategies (all must produce the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_option($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` here; the
/// runner reports the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = TestRng::for_case("ranges", 0);
        let s = 10u64..20;
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((10..20).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 19;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..500 {
            let ident = Strategy::sample(&"[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!(!ident.is_empty() && ident.len() <= 11);
            let mut chars = ident.chars();
            assert!(chars.next().expect("nonempty").is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let soup = Strategy::sample(&"\\PC{0,200}", &mut rng);
            assert!(soup.len() <= 200);
            assert!(soup.chars().all(|c| (' '..='~').contains(&c)));

            let escaped = Strategy::sample(&"[a-z\\\" .]{1,8}", &mut rng);
            assert!(escaped
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '"' || c == ' ' || c == '.'));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut rng = TestRng::for_case("oneof", 0);
        let s = prop_oneof![Just(1u32), Just(2u32), (10u32..12).prop_map(|v| v)];
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            match Strategy::sample(&s, &mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10 => seen[2] = true,
                11 => seen[3] = true,
                other => panic!("impossible sample {other}"),
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn collection_vec_respects_size_specs() {
        let mut rng = TestRng::for_case("vecs", 0);
        for _ in 0..200 {
            let exact = Strategy::sample(&crate::collection::vec(0u8..10, 7usize), &mut rng);
            assert_eq!(exact.len(), 7);
            let ranged = Strategy::sample(&crate::collection::vec(0u8..10, 1..4), &mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(
            a in 0u64..100,
            b in proptest::collection::vec(any::<bool>(), 0..5),
        ) {
            prop_assert!(a < 100);
            prop_assert!(b.len() < 5);
        }
    }
}
