//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace resolves `rand` to this in-tree implementation (a path
//! dependency in the root `Cargo.toml`'s `[workspace.dependencies]`
//! table). It provides the small
//! slice of the rand 0.8 API the workspace uses — [`rngs::StdRng`],
//! [`rngs::SmallRng`], [`Rng::gen`], [`Rng::gen_range`], and
//! [`SeedableRng::seed_from_u64`] — backed by the public-domain
//! xoshiro256** generator. It is deterministic and reproducible, which
//! is exactly what the simulation harnesses want, but it is **not**
//! cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the conventional seeding procedure for xoshiro generators).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled uniformly from a generator (the subset of
/// rand's `Standard` distribution the workspace relies on).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Returns a uniform integer in `[0, bound)` by rejection sampling, so
/// every value is exactly equally likely.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one uniform sample of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — a small, fast, well-tested generator.
    ///
    /// Stands in for both `StdRng` and `SmallRng`; unlike the real
    /// crate's ChaCha-based `StdRng` it is not cryptographically secure,
    /// which is irrelevant for the workspace's simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for Xoshiro256 {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// The workspace's standard generator.
    pub type StdRng = Xoshiro256;
    /// The workspace's small/fast generator (same engine).
    pub type SmallRng = Xoshiro256;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            seen_low |= v == 10;
            seen_high |= v == 19;
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
        assert!(seen_low && seen_high, "both endpoints must be reachable");
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
